//! A minimal, offline stand-in for `serde_json`: renders the serde
//! shim's [`Content`] tree as JSON. Provides `Value`, `to_value`,
//! `to_string_pretty`, and the object-literal form of `json!`.

use std::fmt;

pub use serde::Content as Value;

/// Serialization error (the shim's serialization is infallible, but the
/// `Result` signatures are kept so call sites match real serde_json).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_content())
}

/// Render a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_content(), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => push_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                render(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                push_escaped(k, out);
                out.push_str(": ");
                render(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Object-literal construction: `json!({ "key": value, ... })`.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $(($key.to_string(),
               $crate::to_value(&$value).expect("json! value"))),*
        ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_renders_nested_structures() {
        let v = json!({
            "name": "abl",
            "points": vec![1u64, 2],
            "ok": true,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"abl\""));
        assert!(s.contains("\"ok\": true"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string_pretty(&"a\"b\\c\n").unwrap();
        assert_eq!(s, r#""a\"b\\c\n""#);
    }
}
