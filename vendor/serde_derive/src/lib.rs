//! Hand-rolled `#[derive(Serialize)]` without syn/quote.
//!
//! Supports non-generic structs with named fields — the only shape this
//! workspace derives. The macro walks the raw token stream: skips
//! attributes and visibility, reads the struct name, then takes the
//! first identifier of each top-level comma-separated field group inside
//! the brace block as the field name.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        other => panic!("serde shim: #[derive(Serialize)] supports structs only, got {other:?}"),
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected struct name, got {other:?}"),
    };

    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim: generic structs are not supported")
            }
            Some(_) => continue,
            None => panic!("serde shim: struct {name} has no braced field block"),
        }
    };

    let mut entries = String::new();
    for field in split_fields(body.stream()) {
        if let Some(fname) = first_ident_before_colon(&field) {
            entries.push_str(&format!(
                "(\"{fname}\".to_string(), ::serde::Serialize::serialize_content(&self.{fname})),"
            ));
        }
    }

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize_content(&self) -> ::serde::Content {{\n\
                ::serde::Content::Map(vec![{entries}])\n\
            }}\n\
        }}"
    );
    out.parse().expect("serde shim: generated impl failed to parse")
}

/// Split a brace-block token stream into top-level comma-separated groups.
fn split_fields(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut fields = Vec::new();
    let mut current = Vec::new();
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !current.is_empty() {
                    fields.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(tt),
        }
    }
    if !current.is_empty() {
        fields.push(current);
    }
    fields
}

/// The field name: first identifier in the group that is directly
/// followed by `:` (skipping attributes and visibility).
fn first_ident_before_colon(tokens: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                if let Some(TokenTree::Punct(p)) = tokens.get(i + 1) {
                    if p.as_char() == ':' {
                        return Some(id.to_string());
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}
