//! A minimal, offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides `RngCore`, `Rng` (with `gen`, `gen_bool`, `gen_range`),
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` backed by
//! xoshiro256** seeded via splitmix64. Deterministic and dependency-free;
//! statistical quality is more than adequate for workload generation.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Produce the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let x: f64 = self.gen();
        x < p
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with uniform range sampling support.
pub trait SampleUniform: Copy {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform u64 in [0, span) by widening-multiply rejection-free mapping.
fn bounded_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift; bias is < 2^-64 per draw, irrelevant here.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded by
    /// splitmix64 expansion of a 64-bit seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(3..120i64);
            assert!((3..120).contains(&v));
            let w: u64 = rng.gen_range(1..=12);
            assert!((1..=12).contains(&w));
            let f: f64 = rng.gen_range(200.0..1200.0f64);
            assert!((200.0..1200.0).contains(&f));
            let c = (b'A' + rng.gen_range(0..8)) as char;
            assert!(('A'..='H').contains(&c));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
