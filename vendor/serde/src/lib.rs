//! A minimal, offline stand-in for `serde`.
//!
//! Instead of the full `Serializer` visitor machinery, serialization
//! produces a [`Content`] tree directly; `serde_json` in this workspace
//! renders that tree. `#[derive(Serialize)]` is provided by the
//! companion `serde_derive` shim and covers named-field structs, which
//! is all this workspace derives.

pub use serde_derive::Serialize;

/// A self-describing serialized value.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    fn serialize_content(&self) -> Content;
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::Float(*self as f64)
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_content(&self) -> Content {
        Content::Seq(vec![self.0.serialize_content(), self.1.serialize_content()])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u64.serialize_content(), Content::UInt(3));
        assert_eq!((-3i64).serialize_content(), Content::Int(-3));
        assert_eq!("x".serialize_content(), Content::Str("x".into()));
        assert_eq!(None::<u32>.serialize_content(), Content::Null);
        assert_eq!(
            vec![1u32, 2].serialize_content(),
            Content::Seq(vec![Content::UInt(1), Content::UInt(2)])
        );
    }
}
