//! A minimal, offline stand-in for `criterion`.
//!
//! Provides the group/bencher API surface this workspace's benches use
//! and times closures with `std::time::Instant`: a short warm-up, then
//! `sample_size` samples whose mean/min/max are printed per benchmark.
//! No plotting, statistics, or CLI; `cargo bench` output is plain text.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a parameter value, mirroring criterion's API.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Build an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs closures under measurement.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, called once per sample after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Like [`iter`](Self::iter) but drops the output outside the
    /// measured region.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        self.results.clear();
        let mut kept = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = std::hint::black_box(routine());
            self.results.push(start.elapsed());
            kept.push(out);
        }
        drop(kept);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    /// Advisory only — the shim runs fixed sample counts.
    #[allow(dead_code)]
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            // Keep the shim fast: cap samples so `cargo bench` finishes
            // even for expensive bodies; measurement_time is advisory.
            samples: self.sample_size.min(20),
            warm_up: self.warm_up.min(Duration::from_millis(500)),
            results: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.0, &bencher.results);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size.min(20),
            warm_up: self.warm_up.min(Duration::from_millis(500)),
            results: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.0, &bencher.results);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let thru = match self.throughput {
            Some(Throughput::Bytes(b)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:.1} MiB/s", b as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples){thru}",
            self.name,
            samples.len(),
        );
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(5),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Expose a set of benchmark functions as one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Prevent the optimizer from eliding a value (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Bytes(8));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &7u64, |b, &x| {
            b.iter_with_large_drop(|| vec![x; 16])
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_compiles_and_runs() {
        benches();
    }
}
