//! A minimal, offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` with parking_lot's panic-free,
//! guard-returning API (no `Result`, poisoning is ignored). Only the
//! surface this workspace uses is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with the parking_lot API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the parking_lot API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_some());
        let held = l.read();
        assert!(l.try_write().is_none(), "write must not succeed under a reader");
        drop(held);
    }
}
