//! A minimal, offline stand-in for `proptest`.
//!
//! Implements the random-generation subset of the API this workspace
//! uses: `Strategy` (with `prop_map`, `prop_recursive`, `boxed`),
//! `BoxedStrategy`, `Just`, `any`, `collection::vec`, regex-subset
//! string strategies, the `proptest!`/`prop_oneof!`/`prop_assert*!`
//! macros, and `ProptestConfig`. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! reports its case index and message directly.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::{Rng, RngCore, SeedableRng, StdRng};

/// Deterministic RNG handed to strategies while generating a case.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test name and case index (FNV-1a over the name,
    /// mixed with the case number) so every run is reproducible.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng(StdRng::seed_from_u64(h))
    }

    fn inner(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces a value from an RNG.
pub trait Strategy: 'static {
    type Value;

    /// Generate one value.
    fn gen_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Arc::new(move |rng| s.gen_one(rng)))
    }

    /// Map generated values through a function.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + Send + Sync,
        Self::Value: 'static,
        U: 'static,
        F: Fn(Self::Value) -> U + Send + Sync + 'static,
    {
        let s = self;
        BoxedStrategy(Arc::new(move |rng| f(s.gen_one(rng))))
    }

    /// Build recursive structures: `recurse` receives the
    /// strategy-so-far and returns a strategy for one more level of
    /// nesting. Depth is bounded by `depth`; `_desired_size` and
    /// `_expected_branch` are accepted for signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + Send + Sync,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Each level: mostly recurse, sometimes bottom out early so
            // shallow values stay common.
            cur = union_weighted(vec![(1, leaf.clone()), (2, recurse(cur).boxed())]);
        }
        cur
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T + Send + Sync>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn gen_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Pick among weighted alternative strategies.
pub fn union_weighted<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    BoxedStrategy(Arc::new(move |rng| {
        let mut pick = rng.inner().gen_range(0..total);
        for (w, s) in &arms {
            if pick < *w as u64 {
                return s.gen_one(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }))
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + 'static {
    fn arbitrary_one(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_one(rng: &mut TestRng) -> Self {
                rng.inner().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_one(rng: &mut TestRng) -> Self {
        rng.inner().next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (full range for integers).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    BoxedStrategy(Arc::new(|rng| T::arbitrary_one(rng)))
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Regex-subset string strategy: a `&'static str` pattern of literal
/// characters and character classes, each optionally repeated with
/// `{m}` or `{m,n}`. Classes support ranges (`a-z`), escapes, and one
/// `&&[^...]` subtraction clause — the forms this workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn gen_one(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = String::new();
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!alphabet.is_empty(), "empty character class in pattern {pattern:?}");
        // Optional repetition suffix.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                None => {
                    let n: usize = spec.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.inner().gen_range(lo..=hi);
        for _ in 0..count {
            let pick = rng.inner().gen_range(0..alphabet.len());
            out.push(alphabet[pick]);
        }
    }
    out
}

/// Parse a character class body starting just after `[`; returns the
/// expanded set and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut include: Vec<char> = Vec::new();
    let mut exclude: Vec<char> = Vec::new();
    let mut negate_into_exclude = false;
    loop {
        match chars.get(i) {
            None => panic!("unclosed [ in pattern {pattern:?}"),
            Some(']') => {
                i += 1;
                break;
            }
            Some('&') if chars.get(i + 1) == Some(&'&') && chars.get(i + 2) == Some(&'[') => {
                // `&&[^...]`: intersect with a negated class, i.e.
                // subtract its members.
                assert_eq!(chars.get(i + 3), Some(&'^'), "only &&[^...] subtraction supported");
                i += 4;
                negate_into_exclude = true;
            }
            Some(&c) => {
                let lit = if c == '\\' {
                    i += 2;
                    chars[i - 1]
                } else {
                    i += 1;
                    c
                };
                // Range like `a-z` (a `-` not at the class edge).
                let target = if negate_into_exclude { &mut exclude } else { &mut include };
                if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
                    let hi = if chars[i + 1] == '\\' { i += 3; chars[i - 1] } else { i += 2; chars[i - 1] };
                    for code in lit as u32..=hi as u32 {
                        if let Some(ch) = char::from_u32(code) {
                            target.push(ch);
                        }
                    }
                } else {
                    target.push(lit);
                }
                // A subtraction clause ends at its own `]`.
                if negate_into_exclude && chars.get(i) == Some(&']') {
                    i += 1;
                    negate_into_exclude = false;
                }
            }
        }
    }
    include.retain(|c| !exclude.contains(c));
    (include, i)
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident/$idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_one(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use rand::Rng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + Send + Sync,
        S::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng| {
            let n = rng.inner().gen_range(size.clone());
            (0..n).map(|_| element.gen_one(rng)).collect()
        }))
    }
}

/// Why a test case did not pass: a real failure or a `prop_assume!`
/// rejection (rejected cases are skipped, not failed).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
    reject: bool,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into(), reject: false }
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into(), reject: true }
    }

    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Runner configuration; only `cases` matters to the shim, the rest
/// exist so struct-update literals from real proptest code compile.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejections beyond this abort the test.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
    }
}

/// Run one property: generate `config.cases` cases, calling `case` with
/// a fresh deterministic RNG each time. Rejected cases are retried (up
/// to the global reject cap); failures panic with the case number.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rejects = 0u32;
    let mut case_idx = 0u32;
    let mut passed = 0u32;
    while passed < config.cases {
        let mut rng = TestRng::deterministic(name, case_idx);
        case_idx += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(e) if e.is_reject() => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest {name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(e) => panic!("proptest {name}: case #{} failed: {}", case_idx - 1, e),
        }
    }
}

/// The property-test entry macro. Supports an optional
/// `#![proptest_config(...)]` header followed by `fn name(arg in
/// strategy, ...) { body }` items (attributes, including `#[test]`, are
/// passed through).
#[macro_export]
macro_rules! proptest {
    (@items ($cfg:expr)) => {};
    (@items ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                |rng| {
                    $(let $arg = $crate::Strategy::gen_one(&($strat), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property body; failure fails the case (not a panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two values are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Assert two values differ inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: both sides are `{:?}` ({} == {})",
            l, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: both sides are `{:?}`: {}",
                l, format!($($fmt)+)
            )));
        }
    }};
}

/// Skip this case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Everything a property test file typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_patterns_respect_class_and_repetition() {
        let strat = "[a-z][a-z0-9_]{0,6}";
        let mut rng = TestRng::deterministic("pat", 0);
        for case in 0..200 {
            let mut rng2 = TestRng::deterministic("pat", case);
            let s = Strategy::gen_one(&strat, &mut rng2);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        // Subtraction form: printable ASCII minus quote and backslash.
        let tricky = "[ -~&&[^\"\\\\]]{0,8}";
        for _ in 0..200 {
            let s = Strategy::gen_one(&tricky, &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\'), "{s:?}");
        }
    }

    #[test]
    fn oneof_and_vec_compose() {
        let strat = prop_oneof![
            3 => (0u8..4, 10usize..20).prop_map(|(a, b)| (a as usize) + b),
            1 => Just(999usize),
        ];
        let lists = crate::collection::vec(strat, 1..5);
        let mut some_999 = false;
        for case in 0..100 {
            let mut rng = TestRng::deterministic("oneof", case);
            let v = Strategy::gen_one(&lists, &mut rng);
            assert!((1..5).contains(&v.len()));
            for x in v {
                assert!((10..24).contains(&x) || x == 999);
                some_999 |= x == 999;
            }
        }
        assert!(some_999, "weighted arm never chosen");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn harness_runs_and_asserts(x in 0u64..100, y in 0u64..100) {
            prop_assume!(x != 42);
            prop_assert!(x < 100);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x, x + y + 1);
        }
    }
}
