//! Full-stack integration: workload → LabBase → OStore storage, with
//! persistence, crash recovery, and LQL querying over the recovered
//! database.

use std::path::PathBuf;
use std::sync::Arc;

use labbase::LabBase;
use labflow_core::{BenchConfig, LabSim, ServerVersion};
use labflow_storage::{OStore, Options, StorageManager};
use labflow_workflow::genome;
use lql::{stdlib::labflow_program, Session};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lf-it-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn simulated_lab_survives_reopen_with_everything_intact() {
    let dir = scratch("reopen");
    let cfg = BenchConfig { base_clones: 12, buffer_pages: 96, ..BenchConfig::smoke() };

    // Build, drain, checkpoint, record ground truth.
    let store = ServerVersion::OStore.make_store(&dir, cfg.buffer_pages).unwrap();
    let db = LabBase::create(store).unwrap();
    let mut sim = LabSim::new(cfg.clone());
    sim.setup(&db).unwrap();
    sim.run_until_clones(&db, 12).unwrap();
    assert_eq!(sim.drain(&db, 100_000).unwrap(), 0);
    db.checkpoint().unwrap();

    let integrity = db.check_integrity().unwrap();
    assert!(integrity.is_healthy(), "pre-reopen: {:?}", integrity.problems);
    let clones = db.count_class("clone", false).unwrap();
    let tclones = db.count_class("tclone", false).unwrap();
    let census = db.state_census().unwrap();
    let sample: Vec<_> = sim.materials().iter().copied().take(40).collect();
    let truth: Vec<_> = sample
        .iter()
        .map(|&m| {
            (
                db.material(m).unwrap(),
                db.recent_all(m).unwrap(),
                db.history(m).unwrap(),
            )
        })
        .collect();
    drop(db);

    // Reopen from disk.
    let store = ServerVersion::OStore.open_store(&dir, cfg.buffer_pages).unwrap();
    let db = LabBase::open(store).unwrap();
    assert_eq!(db.count_class("clone", false).unwrap(), clones);
    assert_eq!(db.count_class("tclone", false).unwrap(), tclones);
    assert_eq!(db.state_census().unwrap(), census);
    let integrity = db.check_integrity().unwrap();
    assert!(integrity.is_healthy(), "post-reopen: {:?}", integrity.problems);
    for (&m, (info, recents, history)) in sample.iter().zip(&truth) {
        assert_eq!(&db.material(m).unwrap(), info);
        assert_eq!(&db.recent_all(m).unwrap(), recents);
        assert_eq!(&db.history(m).unwrap(), history);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_work_survives_a_crash_without_checkpoint() {
    let dir = scratch("crash");
    let committed;
    {
        let store: Arc<dyn StorageManager> =
            Arc::new(OStore::create(&dir, Options::default()).unwrap());
        let db = LabBase::create(store).unwrap();
        let t = db.begin().unwrap();
        db.define_material_class(t, "clone", None).unwrap();
        committed = db.create_material(t, "clone", "survivor", 5).unwrap();
        db.set_state(t, committed, "waiting_for_sequencing", 5).unwrap();
        db.commit(t).unwrap();
        // Uncommitted transaction that must vanish.
        let t2 = db.begin().unwrap();
        let _ghost = db.create_material(t2, "clone", "ghost", 6).unwrap();
        // Drop everything without commit or checkpoint: the "crash".
    }
    let store: Arc<dyn StorageManager> =
        Arc::new(OStore::open(&dir, Options::default()).unwrap());
    let db = LabBase::open(store).unwrap();
    assert_eq!(db.count_class("clone", false).unwrap(), 1);
    let m = db.find_material("survivor").unwrap().expect("committed material recovered");
    assert_eq!(m, committed);
    assert_eq!(db.state_of(m).unwrap().as_deref(), Some("waiting_for_sequencing"));
    assert!(db.find_material("ghost").unwrap().is_none(), "uncommitted work rolled back");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lql_queries_agree_with_programmatic_api_on_a_real_database() {
    let dir = scratch("lql");
    let cfg = BenchConfig { base_clones: 10, ..BenchConfig::smoke() };
    let store = ServerVersion::OStore.make_store(&dir, cfg.buffer_pages).unwrap();
    let db = LabBase::create(store).unwrap();
    let mut sim = LabSim::new(cfg);
    sim.setup(&db).unwrap();
    sim.run_until_clones(&db, 10).unwrap();
    sim.drain(&db, 100_000).unwrap();

    let program = labflow_program();
    let session = Session::new(&db, &program);

    // state/2 agrees with count_in_state.
    let api = db.count_in_state(genome::FINISHED).unwrap();
    let rows = session.query("state(M, finished)").unwrap();
    assert_eq!(rows.len(), api);
    let rows = session.query("count_in_state(clone, finished, N)").unwrap();
    assert_eq!(rows[0][0].1, lql::Term::Int(api as i64));

    // recent/3 agrees with db.recent for a sampled material.
    let m = sim.materials()[0];
    let name = db.material(m).unwrap().name;
    if let Some(r) = db.recent(m, "quality").unwrap() {
        let rows = session
            .query(&format!("material_name(M, \"{name}\"), recent(M, quality, Q)"))
            .unwrap();
        assert_eq!(rows.len(), 1);
        let q = rows[0].iter().find(|(v, _)| v == "Q").unwrap();
        let labbase::Value::Real(expect) = r.value else { panic!("quality is real") };
        assert_eq!(q.1, lql::Term::Real(expect));
    }

    // history_size agrees with history_len.
    let rows = session
        .query(&format!("material_name(M, \"{name}\"), history_size(M, N)"))
        .unwrap();
    let n = rows[0].iter().find(|(v, _)| v == "N").unwrap();
    assert_eq!(n.1, lql::Term::Int(db.history_len(m).unwrap() as i64));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paper_transition_drives_real_workload_materials() {
    // Run the paper's quoted `move/1` rule against simulator-produced
    // tclones waiting for sequencing.
    let dir = scratch("move");
    let cfg = BenchConfig { base_clones: 10, ..BenchConfig::smoke() };
    let store = ServerVersion::OStore.make_store(&dir, cfg.buffer_pages).unwrap();
    let db = LabBase::create(store).unwrap();
    let mut sim = LabSim::new(cfg);
    sim.setup(&db).unwrap();
    sim.run_until_clones(&db, 10).unwrap();

    let waiting = db.count_in_state(genome::WAITING_FOR_SEQUENCING).unwrap();
    let incorporable = db.count_in_state(genome::WAITING_FOR_INCORPORATION).unwrap();
    if waiting == 0 {
        // Pipeline happened to be empty at this instant; nothing to move.
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    let program = labflow_program();
    let txn = db.begin().unwrap();
    let session = Session::with_txn(&db, &program, txn);
    session.set_now(sim.clock() + 1);
    let moved = session.query("move(M)").unwrap();
    db.commit(txn).unwrap();
    assert_eq!(moved.len(), waiting, "every waiting tclone moves exactly once");
    assert_eq!(db.count_in_state(genome::WAITING_FOR_SEQUENCING).unwrap(), 0);
    assert_eq!(
        db.count_in_state(genome::WAITING_FOR_INCORPORATION).unwrap(),
        incorporable + waiting
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_readers_during_build_on_ostore() {
    let dir = scratch("conc");
    let cfg = BenchConfig { base_clones: 8, ..BenchConfig::smoke() };
    let store = ServerVersion::OStore.make_store(&dir, cfg.buffer_pages).unwrap();
    let db = Arc::new(LabBase::create(store).unwrap());
    let mut sim = LabSim::new(cfg);
    sim.setup(&db).unwrap();
    sim.run_until_clones(&db, 8).unwrap();
    let mats: Vec<_> = sim.materials().to_vec();

    // Readers hammer the database from other threads while the main
    // thread keeps mutating state — the OStore backend must serve both.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..3 {
        let db = db.clone();
        let mats = mats.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for &m in mats.iter().take(50) {
                    let _ = db.recent(m, "quality").unwrap();
                    let _ = db.state_of(m).unwrap();
                    reads += 2;
                }
            }
            reads
        }));
    }
    sim.drain(&db, 50_000).unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}
