//! End-to-end benchmark pipeline at smoke scale: every experiment of the
//! DESIGN.md index runs, renders, and shows the paper's qualitative
//! shapes where they are already visible at tiny scale.

use std::path::PathBuf;

use labflow_core::{experiments, report, runner, BenchConfig, ServerVersion};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lf-e2e-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn structural_experiments_render() {
    let cfg = BenchConfig::smoke();
    let dir = scratch("structural");
    for id in ["fig1-schema", "tab1-storage-schema", "figB-workflow-graph"] {
        let r = experiments::run(id, &cfg, &dir).unwrap();
        assert!(!r.text.is_empty());
    }
    // The workflow figure names the paper's entities.
    let r = experiments::run("figB-workflow-graph", &cfg, &dir).unwrap();
    for needle in ["determine_sequence", "assemble_sequence", "associate_tclone", "waiting_for_sequencing"] {
        assert!(r.text.contains(needle), "figB missing {needle}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_table_runs_on_all_versions_and_renders() {
    let cfg = BenchConfig::smoke();
    let dir = scratch("build");
    let results =
        runner::run_build_all(&ServerVersion::ALL, &cfg, &[0.5, 1.0], &dir).unwrap();
    assert_eq!(results.len(), 5);
    for r in &results {
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(row.steps > 0, "{} did work in {}", r.version, row.interval);
            assert!(row.elapsed_sec > 0.0);
        }
    }
    // Qualitative shapes visible even at smoke scale:
    let by_name = |name: &str| results.iter().find(|r| r.version == name).unwrap();
    // 1. -mm versions never fault.
    for mm in ["OStore-mm", "Texas-mm"] {
        assert!(by_name(mm).rows.iter().all(|r| r.sim_majflt == 0));
        assert!(by_name(mm).rows.iter().all(|r| r.size_bytes.is_none()));
    }
    // 2. Persistent versions have sizes, and Texas is fatter than OStore.
    let o_size = by_name("OStore").rows.last().unwrap().size_bytes.unwrap();
    let t_size = by_name("Texas").rows.last().unwrap().size_bytes.unwrap();
    assert!(t_size > o_size, "Texas {t_size} should exceed OStore {o_size}");

    let table = report::build_table(&results);
    assert!(table.contains("0.5X"));
    assert!(table.contains("elapsed sec"));
    assert!(table.contains("OStore-mm"));
    let fig = report::throughput_figure(&results);
    assert!(fig.contains('#'));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_mix_runs_and_mm_is_fault_free() {
    let cfg = BenchConfig::smoke();
    let dir = scratch("qmix");
    let mut all = Vec::new();
    for v in [ServerVersion::OStore, ServerVersion::Texas, ServerVersion::OStoreMm] {
        all.extend(runner::run_query_mix(v, &cfg, &dir).unwrap());
    }
    assert!(all.iter().filter(|t| t.version == "OStore").count() >= 8);
    for t in all.iter().filter(|t| t.version == "OStore-mm") {
        assert_eq!(t.sim_faults, 0, "-mm faulted in family {}", t.query);
    }
    // Every family answered something on at least one version.
    let table = report::query_table(&all);
    assert!(table.contains("recent lookup"));
    assert!(table.contains("LQL view mix"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evolution_experiment_shapes() {
    let cfg = BenchConfig::smoke();
    let dir = scratch("evo");
    let r = runner::run_evolution(ServerVersion::OStore, &cfg, &dir, 20).unwrap();
    assert!(r.max_versions > 1, "versions accumulated");
    // The paper's claim: evolution is a catalog operation. It must be
    // within an order of magnitude of a single step insert — i.e. not
    // scanning or rewriting instances (which would be 1000s of times
    // slower on this database).
    assert!(
        r.redefine_mean_us < r.record_step_mean_us * 50.0,
        "redefine {}µs vs record_step {}µs — looks like data migration",
        r.redefine_mean_us,
        r.record_step_mean_us
    );
    // Size growth from 50 redefinitions is bounded (catalog only).
    let growth = r.size_after.unwrap() as f64 / r.size_before.unwrap() as f64;
    assert!(growth < 2.0, "evolution must not rewrite the database (growth {growth:.2}x)");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clustering_ablation_orders_the_backends() {
    let cfg = BenchConfig { base_clones: 32, buffer_pages: 1024, ..BenchConfig::smoke() };
    let dir = scratch("clust");
    // Pool sized between "hot records fit" and "whole DB fits": the
    // backends with locality control keep the hot set dense and reach a
    // low steady state; plain Texas dilutes it across the heap.
    let points = runner::run_clustering(&cfg, &[64], 2_000, &dir).unwrap();
    let fpk = |name: &str| {
        points
            .iter()
            .find(|p| p.version == name && p.pool_pages == 64)
            .unwrap()
            .faults_per_k
    };
    let ostore = fpk("OStore");
    let texas = fpk("Texas");
    let texas_tc = fpk("Texas+TC");
    // The paper's headline: locality control wins. Texas must fault at
    // least as much as both clustered backends in steady state.
    assert!(
        texas >= ostore,
        "Texas ({texas:.1} f/k) should not beat OStore ({ostore:.1}) on hot tracking"
    );
    assert!(
        texas >= texas_tc,
        "client clustering should recover locality: Texas+TC {texas_tc:.1} vs Texas {texas:.1}"
    );
    let table = report::clustering_table(&points);
    assert!(table.contains("OStore"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiment_registry_rejects_unknown_and_lists_ids() {
    let cfg = BenchConfig::smoke();
    assert!(experiments::run("tab-imaginary", &cfg, &std::env::temp_dir()).is_err());
    assert!(experiments::ALL_IDS.contains(&"tab-build"));
    assert!(experiments::ALL_IDS.contains(&"abl-clustering"));
}

#[test]
fn concurrency_ablation_shapes() {
    let cfg = BenchConfig::smoke();
    let dir = scratch("conc-abl");
    let points = runner::run_concurrency(&cfg, &[0, 2], &dir).unwrap();
    // Single-user flavors must refuse readers; everyone builds with 0.
    for p in &points {
        match (p.version.as_str(), p.readers) {
            (_, 0) => assert!(p.supported && p.build_steps_per_sec > 0.0),
            ("Texas", _) | ("Texas+TC", _) | ("Texas-mm", _) => {
                assert!(!p.supported, "{} must be single-user", p.version)
            }
            _ => {
                assert!(p.supported, "{} supports concurrency", p.version);
                assert!(p.reader_ops_per_sec > 0.0, "readers made progress");
                assert!(p.build_steps_per_sec > 0.0, "build made progress");
            }
        }
    }
    let table = report::concurrency_table(&points);
    assert!(table.contains("single-user"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_ablation_shapes() {
    let cfg = BenchConfig::smoke();
    let dir = scratch("rec-abl");
    let points = runner::run_recovery(&cfg, &dir).unwrap();
    assert_eq!(points.len(), 3);
    let by = |name: &str| points.iter().find(|p| p.version == name).unwrap();
    // OStore replays its WAL: (almost) nothing lost, WAL debt non-zero.
    let o = by("OStore");
    assert!(o.wal_bytes_at_crash > 0);
    assert_eq!(o.materials_lost, 0, "WAL must recover all committed work");
    // Texas flavors recover to the checkpoint: they lose the tail.
    for name in ["Texas", "Texas+TC"] {
        let t = by(name);
        assert_eq!(t.wal_bytes_at_crash, 0, "{name} has no log");
        assert!(
            t.materials_lost > 0,
            "{name} must lose post-checkpoint work (lost {})",
            t.materials_lost
        );
        assert!(t.materials_recovered > 0);
    }
    let table = report::recovery_table(&points);
    assert!(table.contains("OStore"));
    std::fs::remove_dir_all(&dir).ok();
}
