//! Cross-backend equivalence: the same seeded workload must produce the
//! same *logical* database on every storage manager — the property that
//! makes LabFlow-1 a storage-manager comparison ("each workflow-data
//! manager uses virtually the same LabBase implementation").

use std::path::{Path, PathBuf};

use labbase::LabBase;
use labflow_core::{BenchConfig, LabSim, ServerVersion};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lf-xb-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One sampled material: name, state, step count, and attrs of its
/// newest step.
type SampledRow = (String, Option<String>, usize, Vec<(String, String)>);

/// A logical fingerprint of a built database: everything a user can
/// observe, nothing about physical placement.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    clones: u64,
    tclones: u64,
    census: Vec<(String, usize)>,
    steps: u64,
    sampled: Vec<SampledRow>,
}

fn build_and_fingerprint(version: ServerVersion, dir: &Path) -> Fingerprint {
    let cfg = BenchConfig { base_clones: 10, buffer_pages: 96, ..BenchConfig::smoke() };
    let store = version.make_store(dir, cfg.buffer_pages).unwrap();
    let db = LabBase::create(store).unwrap();
    let mut sim = LabSim::new(cfg);
    sim.setup(&db).unwrap();
    sim.run_until_clones(&db, 10).unwrap();
    sim.drain(&db, 100_000).unwrap();
    db.checkpoint().unwrap();

    let sampled = sim
        .materials()
        .iter()
        .take(60)
        .map(|&m| {
            let info = db.material(m).unwrap();
            let recents: Vec<(String, String)> = db
                .recent_all(m)
                .unwrap()
                .into_iter()
                .map(|(attr, r)| (attr, format!("{}@{}", r.value, r.valid_time)))
                .collect();
            (info.name, info.state, db.history_len(m).unwrap(), recents)
        })
        .collect();
    Fingerprint {
        clones: db.count_class("clone", false).unwrap(),
        tclones: db.count_class("tclone", false).unwrap(),
        census: db.state_census().unwrap(),
        steps: sim.counters().steps,
        sampled,
    }
}

#[test]
fn all_five_backends_produce_the_same_logical_database() {
    let base = scratch("equiv");
    let reference = build_and_fingerprint(ServerVersion::OStore, &base.join("ref"));
    assert!(reference.steps > 100, "workload actually ran");
    for version in [
        ServerVersion::Texas,
        ServerVersion::TexasTc,
        ServerVersion::OStoreMm,
        ServerVersion::TexasMm,
    ] {
        let dir = base.join(version.name().replace('+', "_"));
        let fp = build_and_fingerprint(version, &dir);
        assert_eq!(fp, reference, "backend {} diverged logically", version.name());
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn texas_databases_are_larger_than_ostore_on_the_same_workload() {
    // The paper's size row: OStore 16,629,760 vs Texas 24,600,576 bytes
    // (≈1.48×). The ratio, not the absolute numbers, is the shape.
    let base = scratch("sizes");
    let cfg = BenchConfig { base_clones: 12, buffer_pages: 128, ..BenchConfig::smoke() };

    let mut sizes = std::collections::HashMap::new();
    for version in ServerVersion::PERSISTENT {
        let dir = base.join(version.name().replace('+', "_"));
        std::fs::create_dir_all(&dir).unwrap();
        let store = version.make_store(&dir, cfg.buffer_pages).unwrap();
        let db = LabBase::create(store.clone()).unwrap();
        let mut sim = LabSim::new(cfg.clone());
        sim.setup(&db).unwrap();
        sim.run_until_clones(&db, 12).unwrap();
        db.checkpoint().unwrap();
        sizes.insert(version.name(), store.db_size_bytes().unwrap().unwrap());
    }
    let ostore = sizes["OStore"] as f64;
    let texas = sizes["Texas"] as f64;
    let texas_tc = sizes["Texas+TC"] as f64;
    let ratio = texas / ostore;
    assert!(
        (1.15..2.2).contains(&ratio),
        "expected Texas ≈1.5× OStore (paper shape), got {ratio:.2} ({sizes:?})"
    );
    assert!(
        texas_tc / ostore > 1.0,
        "Texas+TC pays the same per-object overhead as Texas"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn mm_versions_never_fault_and_report_no_size() {
    let base = scratch("mm");
    for version in [ServerVersion::OStoreMm, ServerVersion::TexasMm] {
        let dir = base.join(version.name());
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = BenchConfig { base_clones: 6, ..BenchConfig::smoke() };
        let store = version.make_store(&dir, cfg.buffer_pages).unwrap();
        let db = LabBase::create(store.clone()).unwrap();
        let mut sim = LabSim::new(cfg);
        sim.setup(&db).unwrap();
        sim.run_until_clones(&db, 6).unwrap();
        let stats = store.stats();
        assert_eq!(stats.faults, 0, "{}: -mm cannot fault", version.name());
        assert_eq!(stats.page_reads, 0);
        assert_eq!(store.db_size_bytes().unwrap(), None);
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn single_user_restriction_only_on_texas_flavors() {
    let base = scratch("single");
    for version in ServerVersion::ALL {
        let dir = base.join(version.name().replace('+', "_"));
        std::fs::create_dir_all(&dir).unwrap();
        let store = version.make_store(&dir, 64).unwrap();
        let t1 = store.begin().unwrap();
        let second = store.begin();
        match version {
            ServerVersion::Texas | ServerVersion::TexasTc | ServerVersion::TexasMm => {
                assert!(second.is_err(), "{} must be single-user", version.name());
            }
            _ => {
                let t2 = second.unwrap_or_else(|e| {
                    panic!("{} should allow concurrent txns: {e}", version.name())
                });
                store.commit(t2).unwrap();
            }
        }
        store.commit(t1).unwrap();
    }
    std::fs::remove_dir_all(&base).ok();
}
