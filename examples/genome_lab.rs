//! The full genome-laboratory scenario: run the Appendix-B workflow
//! simulation end-to-end on a chosen backend, then print the lab's
//! weekly report — the workload the paper's introduction motivates.
//!
//! ```sh
//! cargo run --example genome_lab -- [ostore|texas|texas+tc|ostore-mm|texas-mm] [clones]
//! ```

use labbase::LabBase;
use labflow_core::{BenchConfig, LabSim, ServerVersion};
use labflow_workflow::genome;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let version = args
        .first()
        .map(|s| ServerVersion::parse(s).ok_or(format!("unknown version '{s}'")))
        .transpose()?
        .unwrap_or(ServerVersion::OStore);
    let clones: u64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(40);

    println!("LabFlow-1 genome lab on {} — {clones} clones\n", version.name());

    let dir = std::env::temp_dir().join(format!("labflow-genomelab-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir)?;
    let cfg = BenchConfig { base_clones: clones as usize, ..BenchConfig::default() };
    let store = version.make_store(&dir, cfg.buffer_pages)?;
    let db = LabBase::create(store.clone())?;

    let mut sim = LabSim::new(cfg);
    sim.setup(&db)?;

    // Show the workflow we are about to run (the Appendix-B figure).
    println!("{}", sim.graph().render());

    // Run the lab until every clone is finished.
    let t0 = std::time::Instant::now();
    sim.run_until_clones(&db, clones)?;
    let unfinished = sim.drain(&db, 100_000)?;
    let elapsed = t0.elapsed();
    db.checkpoint()?;

    let c = sim.counters();
    println!("---- production summary ----");
    println!("simulated lab days : {}", c.ticks);
    println!("workflow steps     : {}", c.steps);
    println!("tracking queries   : {}", c.queries);
    println!("materials          : {} ({} clones injected)", c.materials, c.clones_injected);
    println!("schema evolutions  : {}", c.evolutions);
    println!("unfinished clones  : {unfinished}");
    println!("wall time          : {:.2}s ({:.0} steps/s)", elapsed.as_secs_f64(),
        c.steps as f64 / elapsed.as_secs_f64());

    // The lab's weekly report.
    println!("\n---- state census ----");
    for (state, n) in db.state_census()? {
        println!("{state:<28} {n}");
    }

    println!("\n---- finished clones (latest 5) ----");
    let finished = db.in_state(genome::FINISHED, 5)?;
    for m in finished {
        let info = db.material(m)?;
        let seq = db.recent(m, "sequence")?.expect("assembled sequence");
        let top = db.recent(m, "top_score")?.expect("blast score");
        let reads = db.history_len(m)?;
        println!(
            "{:<16} {:>5} events, top BLAST score {}, sequence {}",
            info.name, reads, top.value, seq.value
        );
    }

    // Run LabBase's fsck before trusting any numbers.
    let integrity = db.check_integrity()?;
    println!(
        "\n---- integrity ----\n{} materials, {} steps, {} history nodes checked: {}",
        integrity.materials,
        integrity.steps,
        integrity.history_nodes,
        if integrity.is_healthy() { "HEALTHY" } else { "PROBLEMS FOUND" }
    );
    for p in integrity.problems.iter().take(5) {
        println!("  problem: {p}");
    }

    println!("\n---- storage behaviour ----");
    let stats = db.stats();
    println!("object allocations : {}", stats.allocs);
    println!("object reads       : {}", stats.reads);
    println!("buffer faults      : {}", stats.faults);
    println!(
        "hit ratio          : {:.1}%",
        100.0 * stats.hits as f64 / (stats.hits + stats.faults).max(1) as f64
    );
    match store.db_size_bytes()? {
        Some(size) => println!("database size      : {} bytes", size),
        None => println!("database size      : — (main-memory version)"),
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
