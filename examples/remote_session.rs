//! Remote-session quickstart: start an in-process server over loopback,
//! run a workflow through the blocking client, and drain gracefully.
//!
//! ```sh
//! cargo run --example remote_session
//! ```
//!
//! Against a standalone server the client half is identical — replace
//! the in-process `Server::start` with the address of a running
//! `labflow-server` binary.

use std::sync::Arc;

use labbase::{AttrType, LabBase, Value};
use labflow_server::{Client, Server, ServerConfig, TenantQuotas};
use labflow_storage::{MemStore, StorageManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-memory database served on an ephemeral loopback port.
    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    let db = Arc::new(LabBase::create(store)?);
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            quotas: TenantQuotas::default(),
            ..ServerConfig::default()
        },
    )?;
    println!("serving on {}", server.local_addr());

    // Tenant 1 sets up a schema and records a sequencing run.
    let mut c = Client::connect(server.local_addr(), 1)?;
    c.begin()?;
    c.define_material_class("clone", None)?;
    c.define_step_class(
        "determine_sequence",
        &[("sequence", AttrType::Dna), ("quality", AttrType::Real)],
    )?;
    let clone = c.create_material("clone", "clone-001", 0)?;
    c.record_step(
        "determine_sequence",
        10,
        &[clone],
        vec![
            ("sequence".into(), Value::dna("ACGTACGT")?),
            ("quality".into(), Value::Real(0.98)),
        ],
    )?;
    c.set_state(clone, "sequenced", 11)?;
    c.commit()?;

    // Reads need no transaction; LQL runs server-side.
    let (quality, at, _step) = c.recent(clone, "quality")?.ok_or("no quality recorded")?;
    println!("clone-001 quality = {quality:?} (valid time {at})");
    for row in c.query("state(M, sequenced)")? {
        println!("sequenced: {row:?}");
    }

    // Admission counters show what the server admitted and shed.
    let admission = c.admission_stats()?;
    println!(
        "admitted {} requests, shed {}, {} B in / {} B out",
        admission.admitted,
        admission.shed_total(),
        admission.bytes_in,
        admission.bytes_out
    );

    drop(c);
    server.shutdown()?;
    assert_eq!(db.open_sessions(), 0);
    assert_eq!(db.store().open_snapshots(), 0);
    println!("drained cleanly: no open sessions, no pinned snapshots");
    Ok(())
}
