//! Quickstart: create a LabBase database on the ObjectStore-like
//! backend, define a tiny schema, track a material through two workflow
//! steps, and ask the questions a lab asks.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use labbase::{schema::attrs, AttrType, LabBase, Value};
use labflow_storage::{OStore, Options, StorageManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A storage manager. OStore is the ObjectStore-like backend:
    //    placement segments, lock-based concurrency, WAL + checkpoints.
    let dir = std::env::temp_dir().join(format!("labflow-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store: Arc<dyn StorageManager> = Arc::new(OStore::create(&dir, Options::default())?);

    // 2. LabBase on top: the workflow DBMS of the LabFlow-1 benchmark.
    let db = LabBase::create(store)?;

    // 3. A user-level schema. Step classes are *versioned data*, so the
    //    lab can redefine them at any time without touching old events.
    let txn = db.begin()?;
    db.define_material_class(txn, "clone", None)?;
    db.define_step_class(
        txn,
        "determine_sequence",
        attrs(&[("sequence", AttrType::Dna), ("quality", AttrType::Real)]),
    )?;

    // 4. A material moving through the workflow.
    let m = db.create_material(txn, "clone", "clone-000001", 0)?;
    db.set_state(txn, m, "waiting_for_sequencing", 0)?;

    // First sequencing run: poor quality.
    db.record_step(
        txn,
        "determine_sequence",
        10,
        &[m],
        vec![
            ("sequence".into(), Value::dna("ACGTTTGACA")?),
            ("quality".into(), Value::Real(0.41)),
        ],
    )?;
    // Retry at valid time 20: good quality.
    db.record_step(
        txn,
        "determine_sequence",
        20,
        &[m],
        vec![
            ("sequence".into(), Value::dna("ACGTTTGACACCGGTA")?),
            ("quality".into(), Value::Real(0.97)),
        ],
    )?;
    db.set_state(txn, m, "waiting_for_incorporation", 20)?;
    db.commit(txn)?;

    // 5. The questions a lab asks.
    let state = db.state_of(m)?;
    println!("state of {m}: {state:?}");

    let quality = db.recent(m, "quality")?.expect("has quality");
    println!(
        "most-recent quality: {} (valid time {}, step {})",
        quality.value, quality.valid_time, quality.step
    );

    let then = db.as_of(m, "quality", 15)?.expect("had a value at t=15");
    println!("quality as of t=15: {} (recorded at t={})", then.1, then.0);

    println!("history (newest first):");
    for entry in db.history(m)? {
        let step = db.step(entry.step)?;
        println!("  t={:<3} {} v{} {:?}", entry.valid_time, step.class, step.version, step.attrs);
    }

    // 6. Durability: checkpoint, then show the storage-level stats.
    db.checkpoint()?;
    let stats = db.stats();
    println!(
        "\nstorage: {} allocs, {} reads, {} buffer faults, {} checkpoints",
        stats.allocs, stats.reads, stats.faults, stats.checkpoints
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
