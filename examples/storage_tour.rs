//! A tour of the storage-manager substrate: the five server versions of
//! the paper's Section 10, their placement behaviour, durability
//! contracts, and fault accounting — without LabBase on top.
//!
//! ```sh
//! cargo run --example storage_tour
//! ```

use std::sync::Arc;

use labflow_storage::{
    ClusterHint, MemStore, OStore, Options, SegmentId, StorageManager, Texas, TexasTc,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("labflow-tour-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base)?;
    // A deliberately tiny pool so locality differences are visible.
    let opts = Options { buffer_pages: 16, ..Options::default() };

    let stores: Vec<Arc<dyn StorageManager>> = vec![
        Arc::new(OStore::create(&base.join("ostore"), opts.clone())?),
        Arc::new(TexasTc::create(&base.join("texas_tc"), opts.clone())?),
        Arc::new(Texas::create(&base.join("texas"), opts.clone())?),
        Arc::new(MemStore::ostore_mm()),
        Arc::new(MemStore::texas_mm()),
    ];

    println!("== capabilities ==");
    println!(
        "{:<12}{:>12}{:>12}{:>12}",
        "version", "persistent", "concurrent", "segments"
    );
    for store in &stores {
        println!(
            "{:<12}{:>12}{:>12}{:>12}",
            store.name(),
            store.is_persistent(),
            store.supports_concurrency(),
            store.segments().len()
        );
    }

    // The experiment in miniature: interleave small hot records (segment
    // 1) with big cold payloads (segment 3), then read the hot ones cold.
    println!("\n== locality in miniature ==");
    println!("interleave 200 hot 40B records with 200 cold 1KB payloads,");
    println!("then read all the hot records after dropping the cache:\n");
    for store in &stores {
        let txn = store.begin()?;
        let mut hot = Vec::new();
        for i in 0..200u32 {
            hot.push(store.allocate(txn, SegmentId(1), ClusterHint::NONE, &i.to_le_bytes())?);
            store.allocate(txn, SegmentId(3), ClusterHint::NONE, &[0xCD; 1024])?;
        }
        store.commit(txn)?;
        store.drop_caches()?;
        let before = store.stats();
        for &oid in &hot {
            store.read(oid)?;
        }
        let faults = store.stats().delta(&before).faults;
        let size = store
            .db_size_bytes()?
            .map(|b| format!("{b} B"))
            .unwrap_or_else(|| "—".into());
        println!(
            "{:<12} {:>4} faults to read 200 hot records   (db size {size})",
            store.name(),
            faults
        );
    }
    println!("\nOStore and Texas+TC keep the hot records on ~2 pages; plain");
    println!("Texas scatters them among the cold payloads — the paper's point.");

    // Durability contracts.
    println!("\n== durability ==");
    let oid_committed;
    let oid_tail;
    {
        let store = OStore::create(&base.join("crash"), opts.clone())?;
        let t = store.begin()?;
        oid_committed = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"committed")?;
        store.commit(t)?;
        let t = store.begin()?;
        oid_tail = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"uncommitted")?;
        // crash: no commit, no checkpoint
    }
    let store = OStore::open(&base.join("crash"), opts.clone())?;
    println!(
        "OStore after crash: committed object {} -> {:?}, uncommitted {} -> exists = {}",
        oid_committed,
        String::from_utf8_lossy(&store.read(oid_committed)?),
        oid_tail,
        store.exists(oid_tail)
    );

    {
        let store = Texas::create(&base.join("crash_tex"), opts.clone())?;
        let t = store.begin()?;
        let kept = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"checkpointed")?;
        store.commit(t)?;
        store.checkpoint()?;
        let t = store.begin()?;
        let lost = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"post-checkpoint")?;
        store.commit(t)?;
        println!(
            "Texas before crash: {} and {} both live; crashing without checkpoint…",
            kept, lost
        );
        // crash
        drop(store);
        let store = Texas::open(&base.join("crash_tex"), opts)?;
        println!(
            "Texas after crash : {} -> {:?}, {} -> exists = {} (checkpoint-only durability)",
            kept,
            String::from_utf8_lossy(&store.read(kept)?),
            lost,
            store.exists(lost)
        );
    }

    std::fs::remove_dir_all(&base).ok();
    Ok(())
}
