//! An interactive LQL shell over a freshly simulated lab database —
//! the deductive query language of paper Sections 6 and 8.
//!
//! ```sh
//! cargo run --example lql_repl            # interactive
//! echo 'state(M, finished).' | cargo run --example lql_repl
//! ```
//!
//! Try:
//! ```text
//! state(M, waiting_for_sequencing).
//! material_name(M, N), recent(M, quality, Q), Q >= 0.9.
//! count_in_state(clone, finished, N).
//! material_name(M, N), sequences_of(M, Set).
//! ```

use std::io::{BufRead, Write};

use labbase::LabBase;
use labflow_core::{BenchConfig, LabSim, ServerVersion};
use lql::{stdlib::labflow_program, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a small lab database to query.
    eprintln!("building a small lab database (20 clones)…");
    let cfg = BenchConfig { base_clones: 20, ..BenchConfig::smoke() };
    let store =
        ServerVersion::OStoreMm.make_store(&std::env::temp_dir().join("unused"), 64)?;
    let db = LabBase::create(store)?;
    let mut sim = LabSim::new(cfg);
    sim.setup(&db)?;
    sim.run_until_clones(&db, 20)?;
    sim.drain(&db, 100_000)?;
    let c = sim.counters();
    eprintln!(
        "ready: {} materials, {} events. Queries end with '.'; 'halt.' quits.\n",
        c.materials, c.steps
    );

    let program = labflow_program();
    let session = Session::new(&db, &program);

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            write!(out, "?- ")?;
        } else {
            write!(out, "   ")?;
        }
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        buffer.push_str(&line);
        let trimmed = buffer.trim();
        if trimmed.is_empty() {
            buffer.clear();
            continue;
        }
        if !trimmed.ends_with('.') {
            continue; // keep reading a multi-line query
        }
        let query = trimmed.to_string();
        buffer.clear();
        if query == "halt." || query == "quit." {
            break;
        }
        match session.query_limit(&query, 25) {
            Ok(rows) if rows.is_empty() => println!("false."),
            Ok(rows) => {
                for (i, row) in rows.iter().enumerate() {
                    if row.is_empty() {
                        println!("true.");
                        continue;
                    }
                    let bindings: Vec<String> =
                        row.iter().map(|(v, t)| format!("{v} = {t}")).collect();
                    println!("{}{}", bindings.join(", "), if i + 1 < rows.len() { " ;" } else { "." });
                }
                if rows.len() == 25 {
                    println!("… (answer limit reached)");
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
