//! Schema evolution the LabFlow-1 way: redefine a step class while the
//! event stream keeps flowing, and show that old step instances keep the
//! attribute set of the version that created them — no migration, no
//! reorganization (paper Sections 3 and 5.1).
//!
//! ```sh
//! cargo run --example schema_evolution
//! ```

use std::sync::Arc;

use labbase::{schema::attrs, AttrType, LabBase, Value};
use labflow_storage::{MemStore, StorageManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    let db = LabBase::create(store)?;

    let txn = db.begin()?;
    db.define_material_class(txn, "tclone", None)?;

    // Version 1 of the sequencing protocol: manual gels.
    db.define_step_class(
        txn,
        "determine_sequence",
        attrs(&[("sequence", AttrType::Dna), ("gel_lane", AttrType::Int)]),
    )?;
    let m = db.create_material(txn, "tclone", "tclone-1", 0)?;
    let s1 = db.record_step(
        txn,
        "determine_sequence",
        10,
        &[m],
        vec![
            ("sequence".into(), Value::dna("ACGTAC")?),
            ("gel_lane".into(), Value::Int(7)),
        ],
    )?;

    // The lab buys sequencing machines: lanes are gone, machines and
    // quality scores arrive. Redefine the class — one catalog update.
    let v2 = db.redefine_step_class(
        txn,
        "determine_sequence",
        attrs(&[
            ("sequence", AttrType::Dna),
            ("machine", AttrType::Str),
            ("quality", AttrType::Real),
        ]),
    )?;
    println!("redefined determine_sequence -> version {v2}");

    // New events use the new attribute set...
    let s2 = db.record_step(
        txn,
        "determine_sequence",
        20,
        &[m],
        vec![
            ("sequence".into(), Value::dna("ACGTACGGTT")?),
            ("machine".into(), "ABI-377".into()),
            ("quality".into(), Value::Real(0.93)),
        ],
    )?;

    // ...and the old attribute set is now rejected:
    let err = db
        .record_step(
            txn,
            "determine_sequence",
            30,
            &[m],
            vec![("gel_lane".into(), Value::Int(3))],
        )
        .unwrap_err();
    println!("recording with the old schema now fails: {err}");
    db.commit(txn)?;

    // But the old instance is untouched: it decodes under ITS version.
    for (label, step) in [("old", s1), ("new", s2)] {
        let info = db.step(step)?;
        let schema: Vec<String> =
            db.step_schema(step)?.into_iter().map(|a| format!("{}:{}", a.name, a.ty)).collect();
        println!(
            "\n{label} instance {step}: class {} v{}\n  schema : {}\n  attrs  : {:?}",
            info.class,
            info.version,
            schema.join(", "),
            info.attrs
        );
    }

    // The most-recent view spans versions transparently: `sequence`
    // resolves to the v2 event, `gel_lane` still resolves to the v1 one.
    let seq = db.recent(m, "sequence")?.unwrap();
    let lane = db.recent(m, "gel_lane")?.unwrap();
    println!(
        "\nmost-recent sequence : {} (from v{} step)",
        seq.value,
        db.step(seq.step)?.version
    );
    println!(
        "most-recent gel_lane : {} (from v{} step — the attribute lives on in history)",
        lane.value,
        db.step(lane.step)?.version
    );

    // Version bookkeeping.
    db.with_catalog(|c| {
        let sc = c.step_class("determine_sequence").expect("exists");
        println!("\ncatalog: determine_sequence has {} versions", sc.versions.len());
        for v in &sc.versions {
            let names: Vec<&str> = v.attrs.iter().map(|a| a.name.as_str()).collect();
            println!("  v{}: {}", v.version, names.join(", "));
        }
    });
    Ok(())
}
