// Seeded lock-discipline violations for the analyzer's self-test.
//
// Not compiled by cargo (see panic_sites.rs). The lock-order pass keys
// on `lock_order::ranked(..)` / `lock_order::acquire(..)` call shapes,
// which work in any file regardless of the rank table's crate scoping.

struct Fixture;

impl Fixture {
    /// Direct rank inversion: WAL writer (50) held while taking the
    /// buffer pool (40).
    fn inverted(&self) {
        let _w = lock_order::ranked(lock_order::WAL_WRITER, || self.writer.lock());
        let _p = lock_order::ranked(lock_order::BUFFER_POOL, || self.pool.lock());
    }

    /// A guard held across a blocking call.
    fn held_across_sleep(&self) {
        let _g = lock_order::ranked(lock_order::LOCK_SHARD, || self.m.lock());
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    /// Cross-function inversion: holds the WAL log-writer request queue
    /// (55) while calling a helper that takes the WAL writer (50).
    fn outer(&self) {
        let _g = lock_order::ranked(lock_order::WAL_QUEUE, || self.queue.lock());
        self.inner_acquire();
    }

    fn inner_acquire(&self) {
        let _w = lock_order::ranked(lock_order::WAL_WRITER, || self.writer.lock());
    }

    /// The log-writer's cardinal sin: forcing the log (WAL writer, 50)
    /// while still holding its request queue (55). The writer loop
    /// claims under the queue, *releases it*, and only then forces —
    /// nesting them would park every committer behind the disk.
    fn wal_force_under_queue_inverted(&self) {
        let _q = lock_order::ranked(lock_order::WAL_QUEUE, || self.queue.lock());
        let _w = lock_order::ranked(lock_order::WAL_WRITER, || self.writer.lock());
    }

    /// Heap-shard inversion: a segment placement lock (32) held while
    /// taking an object-table shard (30) — the mistake the sharded heap's
    /// protocols are written to avoid (table shard first, then segment).
    fn heap_shards_inverted(&self) {
        let _s = lock_order::ranked(lock_order::HEAP_SEGMENT, || self.place.lock());
        let _t = lock_order::ranked(lock_order::HEAP_TABLE, || self.table.lock());
    }

    /// Heap quiesce inversion: taking the heap's global shard (28) while
    /// already inside a segment (32) would deadlock against the
    /// checkpoint quiesce.
    fn heap_global_inverted(&self) {
        let _s = lock_order::ranked(lock_order::HEAP_SEGMENT, || self.place.lock());
        let _g = lock_order::ranked(lock_order::HEAP_GLOBAL, || self.global.read());
    }

    /// Epoch inversion: the heap's version-reclamation epoch state (29)
    /// taken while holding an object-table shard (30). Reclamation must
    /// collect condemned versions under the table shard, release it, and
    /// only then push them onto the epoch list.
    fn epoch_under_table_inverted(&self) {
        let _t = lock_order::ranked(lock_order::HEAP_TABLE, || self.table.lock());
        let _e = lock_order::ranked(lock_order::HEAP_EPOCH, || self.epoch_state.lock());
    }

    /// Snapshot-registry inversion: the commit-visibility flip (12)
    /// taken while holding the open-snapshot registry (14). Commit flips
    /// visibility first and consults the registry's low-water mark after.
    fn vis_under_snaps_inverted(&self) {
        let _s = lock_order::ranked(lock_order::ENGINE_SNAPSHOTS, || self.snaps.lock());
        let _v = lock_order::ranked(lock_order::ENGINE_COMMIT_VIS, || self.vis.lock());
    }

    /// Correctly ordered MVCC nesting: visibility flip, then snapshot
    /// registry, then epoch state — must NOT be flagged.
    fn mvcc_well_ordered(&self) {
        let _v = lock_order::ranked(lock_order::ENGINE_COMMIT_VIS, || self.vis.lock());
        let _s = lock_order::ranked(lock_order::ENGINE_SNAPSHOTS, || self.snaps.lock());
        let _e = lock_order::ranked(lock_order::HEAP_EPOCH, || self.epoch_state.lock());
    }

    /// Correctly ordered nesting: must NOT be flagged.
    fn well_ordered(&self) {
        let _g = lock_order::ranked(lock_order::HEAP_GLOBAL, || self.global.read());
        let _t = lock_order::ranked(lock_order::HEAP_TABLE, || self.table.lock());
        let _p = lock_order::ranked(lock_order::BUFFER_POOL, || self.pool.lock());
    }

    /// Server inversion: the tenant registry (70) taken while holding
    /// the connection table (72). Admission decisions never run under
    /// the connection table; the accept loop registers first, admits
    /// later.
    fn srv_tenants_under_conns_inverted(&self) {
        let _c = lock_order::ranked(lock_order::SRV_CONNS, || self.conns.lock());
        let _t = lock_order::ranked(lock_order::SRV_TENANTS, || self.tenants.lock());
    }

    /// Server drain inversion: the connection table (72) taken while
    /// holding the drain latch (74). Drain flips its flag, releases,
    /// and only then walks connections.
    fn srv_conns_under_drain_inverted(&self) {
        let _d = lock_order::ranked(lock_order::SRV_DRAIN, || self.drain.lock());
        let _c = lock_order::ranked(lock_order::SRV_CONNS, || self.conns.lock());
    }

    /// Cross-layer inversion: a storage lock (engine active-transaction
    /// table, 10) acquired while holding a server latch (70). Server
    /// latches rank above the whole storage engine precisely so that
    /// holding one across any database call is flagged.
    fn srv_storage_under_tenants_inverted(&self) {
        let _t = lock_order::ranked(lock_order::SRV_TENANTS, || self.tenants.lock());
        let _a = lock_order::ranked(lock_order::ENGINE_ACTIVE, || self.active.lock());
    }

    /// Correctly ordered server nesting — tenants, connections, drain —
    /// must NOT be flagged.
    fn srv_well_ordered(&self) {
        let _t = lock_order::ranked(lock_order::SRV_TENANTS, || self.tenants.lock());
        let _c = lock_order::ranked(lock_order::SRV_CONNS, || self.conns.lock());
        let _d = lock_order::ranked(lock_order::SRV_DRAIN, || self.drain.lock());
    }

    /// Replication inversion: the follower state lock (78) held while
    /// taking an engine lock (10) — i.e. held across
    /// `replica_apply_commit`. The follower's ingest is three-phase
    /// (check under lock, apply unlocked, advance under lock) exactly to
    /// avoid this.
    fn repl_follower_across_apply_inverted(&self) {
        let _f = lock_order::ranked(lock_order::REPL_FOLLOWER, || self.state.lock());
        let _a = lock_order::ranked(lock_order::ENGINE_ACTIVE, || self.active.lock());
    }

    /// Replication inversion: the ack table (76) taken while holding
    /// the follower state lock (78). Acks are reported after ingest
    /// returns, never from under it.
    fn repl_acks_under_follower_inverted(&self) {
        let _f = lock_order::ranked(lock_order::REPL_FOLLOWER, || self.state.lock());
        let _a = lock_order::ranked(lock_order::REPL_ACKS, || self.acks.lock());
    }

    /// Correctly ordered replication nesting — ack table, then follower
    /// state — must NOT be flagged.
    fn repl_well_ordered(&self) {
        let _a = lock_order::ranked(lock_order::REPL_ACKS, || self.acks.lock());
        let _f = lock_order::ranked(lock_order::REPL_FOLLOWER, || self.state.lock());
    }

    /// Waived inversion: the allow marker suppresses the finding.
    fn waived(&self) {
        let _p = lock_order::ranked(lock_order::BUFFER_POOL, || self.pool.lock());
        // analyzer: allow(lock_order, "fixture: demonstrates the escape hatch")
        let _t = lock_order::ranked(lock_order::HEAP_TABLE, || self.table.lock());
    }
}
