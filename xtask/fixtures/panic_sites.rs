// Seeded panic-freedom violations for the analyzer's self-test.
//
// This directory is not part of any crate, so cargo never compiles it;
// it exists so `cargo xtask analyze --root xtask/fixtures` (run in CI)
// demonstrably fails, and so the analyzer's unit tests can assert each
// pass flags exactly what it should.

fn flagged_unwrap(v: Option<u8>) -> u8 {
    v.unwrap()
}

fn flagged_expect(v: Option<u8>) -> u8 {
    v.expect("boom")
}

fn flagged_macros(x: u8) -> u8 {
    if x > 250 {
        panic!("x too big");
    }
    match x {
        0 => todo!(),
        1 => unimplemented!(),
        _ => unreachable!(),
    }
}

fn waived(v: Option<u8>) -> u8 {
    // analyzer: allow(panic, "fixture: demonstrates the escape hatch")
    v.unwrap()
}

fn indexed(buf: &[u8]) -> u8 {
    // Counted against the fixture index budget of zero.
    buf[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_not_linted() {
        let v: Option<u8> = Some(1);
        v.unwrap();
    }
}
