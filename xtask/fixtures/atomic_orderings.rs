// Seeded atomic-ordering violations for the analyzer's self-test.
//
// Not compiled by cargo (see panic_sites.rs). Fixture files all live
// in one synthetic crate, so per-crate receiver aggregation works the
// same way it does in the workspace.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

struct Fixture {
    // Pointer-typed receiver: any Relaxed access to it is flagged.
    head: AtomicPtr<u8>,
    // Integer atomic accessed with mixed orderings below.
    seq: AtomicU64,
    // Deliberately-Relaxed statistics counter: never flagged.
    hits: AtomicU64,
}

impl Fixture {
    // Flagged: Relaxed load of a pointer-typed atomic — the pointee's
    // initialisation is not ordered before this read.
    fn flagged_ptr_load(&self) -> *mut u8 {
        self.head.load(Ordering::Relaxed)
    }

    // Flagged: Relaxed store on `seq`, which is read with Acquire in
    // `reader` — the lone Relaxed site opts out of the protocol.
    fn flagged_mixed_store(&self) {
        self.seq.store(1, Ordering::Relaxed);
    }

    fn reader(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    // Clean: an all-Relaxed counter is a deliberate choice, not a mix.
    fn clean_counter(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    // Waived: a justified marker silences the site.
    fn waived(&self) -> u64 {
        // analyzer: allow(ordering, "monotonic hint only; the slow path re-reads under the lock")
        self.seq.load(Ordering::Relaxed)
    }
}
