// Seeded unsafe-budget violations for the analyzer's self-test.
//
// Not compiled by cargo (see panic_sites.rs). Fixture mode has no
// unsafe budgets, so every site below without an allow marker must be
// flagged — that is what `cargo xtask analyze --root xtask/fixtures`
// (run in CI, expected to fail) and the unit tests assert.

// Flagged: a bare unsafe block outside the budgeted crates.
fn flagged_block(p: *const u8) -> u8 {
    unsafe { *p }
}

// Flagged: unsafe impls count one site each.
unsafe impl Send for Fixture {}
unsafe impl Sync for Fixture {}

// Flagged: so does an unsafe fn declaration.
unsafe fn flagged_fn() {}

// Waived: a marker with a safety argument is accepted and the site no
// longer counts.
fn waived_block(p: *const u8) -> u8 {
    // analyzer: allow(unsafe, "pointer is derived from a live Box two lines up")
    unsafe { *p }
}

// Not sites: the keyword inside strings, comments, and lint-attribute
// identifiers. (An `unsafe` in a comment: unsafe { nope }.)
fn not_a_site() -> &'static str {
    "unsafe { also not a site }"
}

struct Fixture;
