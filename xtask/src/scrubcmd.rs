//! `cargo xtask scrub --dir PATH` — offline integrity audit of a store
//! image on the real filesystem.
//!
//! Thin CLI over [`labflow_storage::scrub_store`]: verifies the meta
//! file's whole-file checksum, every data page against its header and
//! LSN floor, and every WAL frame against its position-bound checksum,
//! then prints the report. Exit 0 = clean, 1 = unquarantined damage
//! found, 2 = the image is too damaged to audit (or unreadable).

use std::path::Path;

use labflow_storage::{scrub_store, RealVfs};

/// Build a small crashed-and-recovered store at `dir`, wiping whatever
/// was there. CI uses this (`--demo`) to hand the scrubber a real
/// on-disk image that has been through the full recovery path —
/// checkpointed work, WAL-replayed work, and a re-checkpoint at open.
pub fn build_demo(dir: &Path) -> Result<(), String> {
    use labflow_storage::{ClusterHint, OStore, Options, SegmentId, StorageManager};
    let fail = |what: &str, e: &dyn std::fmt::Display| format!("demo image: {what}: {e}");
    if dir.exists() {
        std::fs::remove_dir_all(dir).map_err(|e| fail("wiping dir", &e))?;
    }
    std::fs::create_dir_all(dir).map_err(|e| fail("creating dir", &e))?;
    {
        let store = OStore::create(dir, Options::default()).map_err(|e| fail("create", &e))?;
        let txn = store.begin().map_err(|e| fail("begin", &e))?;
        let mut oids = Vec::new();
        for i in 0..400u32 {
            let data = vec![(i % 251) as u8; 24 + (i % 100) as usize];
            oids.push(
                store
                    .allocate(txn, SegmentId((i % 4) as u8), ClusterHint::NONE, &data)
                    .map_err(|e| fail("allocate", &e))?,
            );
        }
        store.commit(txn).map_err(|e| fail("commit", &e))?;
        store.checkpoint().map_err(|e| fail("checkpoint", &e))?;
        // Post-checkpoint work only the log knows about, then a "crash":
        // drop without checkpointing, so the reopen has frames to replay.
        let txn = store.begin().map_err(|e| fail("begin", &e))?;
        for (i, oid) in oids.iter().enumerate().take(100) {
            store.update(txn, *oid, &[0xAB, i as u8]).map_err(|e| fail("update", &e))?;
        }
        store.commit(txn).map_err(|e| fail("commit", &e))?;
    }
    drop(OStore::open(dir, Options::default()).map_err(|e| fail("recovery", &e))?);
    Ok(())
}

pub fn run(dir: &Path) -> i32 {
    match scrub_store(&RealVfs::arc(), dir) {
        Ok(report) => {
            println!(
                "scrub {}: epoch {}, {} pages ({} verified, {} fresh, {} quarantined), \
                 {} wal frames",
                dir.display(),
                report.epoch,
                report.pages,
                report.ok,
                report.fresh,
                report.quarantined,
                report.wal_frames,
            );
            if report.clean() {
                println!("scrub: clean");
                0
            } else {
                eprintln!("scrub: UNQUARANTINED DAMAGE on pages {:?}", report.corrupt);
                1
            }
        }
        Err(e) => {
            eprintln!("scrub {}: cannot audit image: {e}", dir.display());
            2
        }
    }
}
