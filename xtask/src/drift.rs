//! Rank-table drift check.
//!
//! The lock-rank table exists twice: the runtime half in
//! `crates/storage/src/lock_order.rs` (debug assertions on every
//! acquisition) and the static half in `xtask/src/ranks.rs` (what the
//! lock-order pass checks against). They drift silently — a constant
//! added to the runtime table but not here means the analyzer rejects
//! the new lock's sites as unknown, and a rank changed on one side
//! only means the two checkers enforce different orders.
//!
//! This pass parses the `pub const NAME: LockRank = LockRank { rank: N,
//! .. }` declarations out of the runtime table's source text (the
//! shared lexer drops literal values, so this reads the raw text) and
//! diffs them against [`ranks::RANK_CONSTS`] in both directions.

use std::path::Path;

use crate::ranks;
use crate::Finding;

const RUNTIME_TABLE: &str = "crates/storage/src/lock_order.rs";

/// Diff the runtime rank table against the analyzer's. Workspace mode
/// only — fixtures have no runtime table.
pub fn analyze(root: &Path) -> Vec<Finding> {
    let path = root.join(RUNTIME_TABLE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return vec![Finding {
                file: RUNTIME_TABLE.to_string(),
                line: 0,
                pass: "rank-drift",
                msg: format!("cannot read the runtime rank table: {e}"),
            }]
        }
    };
    diff(&parse_lock_order(&text))
}

/// Extract `(name, rank, line)` for every `pub const NAME: LockRank`
/// declaration, tolerating rustfmt wrapping the initializer onto
/// following lines.
fn parse_lock_order(text: &str) -> Vec<(String, u16, u32)> {
    let mut out = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = text[search..].find("pub const ") {
        let at = search + rel;
        search = at + "pub const ".len();
        let line = 1 + text[..at].bytes().filter(|b| *b == b'\n').count() as u32;
        let rest = &text[search..];
        let Some((name, after)) = rest.split_once(':') else { continue };
        let name = name.trim().to_string();
        // Only LockRank constants; the window keeps a `LockRank` later
        // in the file from matching this declaration.
        let window = &after[..after.len().min(200)];
        if !window.trim_start().starts_with("LockRank") {
            continue;
        }
        let Some(rank_at) = window.find("rank:") else { continue };
        let digits: String = window[rank_at + "rank:".len()..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(rank) = digits.parse::<u16>() {
            out.push((name, rank, line));
        }
    }
    out
}

fn diff(runtime: &[(String, u16, u32)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, rank, line) in runtime {
        match ranks::rank_of_const(name) {
            None => findings.push(Finding {
                file: RUNTIME_TABLE.to_string(),
                line: *line,
                pass: "rank-drift",
                msg: format!(
                    "`{name}` (rank {rank}) exists in the runtime table but not in \
                     xtask/src/ranks.rs — the lock-order pass cannot place its \
                     acquisition sites; add it to RANK_CONSTS"
                ),
            }),
            Some(r) if r != *rank => findings.push(Finding {
                file: RUNTIME_TABLE.to_string(),
                line: *line,
                pass: "rank-drift",
                msg: format!(
                    "`{name}` is rank {rank} in the runtime table but rank {r} in \
                     xtask/src/ranks.rs — the two checkers enforce different orders"
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, rank, _) in ranks::RANK_CONSTS {
        if !runtime.iter().any(|(n, _, _)| n == name) {
            findings.push(Finding {
                file: RUNTIME_TABLE.to_string(),
                line: 0,
                pass: "rank-drift",
                msg: format!(
                    "`{name}` (rank {rank}) exists in xtask/src/ranks.rs but not in \
                     the runtime table — remove it, or restore the runtime constant"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full runtime table rendered from RANK_CONSTS itself — the
    /// in-sync baseline.
    fn rendered() -> Vec<(String, u16, u32)> {
        ranks::RANK_CONSTS
            .iter()
            .enumerate()
            .map(|(i, (n, r, _))| (n.to_string(), *r, i as u32 + 1))
            .collect()
    }

    #[test]
    fn in_sync_tables_are_clean() {
        assert!(diff(&rendered()).is_empty());
    }

    #[test]
    fn missing_on_either_side_is_flagged() {
        let mut t = rendered();
        t.pop();
        let f = diff(&t);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("exists in xtask/src/ranks.rs"));
        t.push(("BRAND_NEW_LOCK".to_string(), 99, 7));
        let f = diff(&t);
        assert_eq!(f.len(), 2, "one side each");
    }

    #[test]
    fn rank_mismatch_is_flagged() {
        let mut t = rendered();
        t[0].1 += 1;
        let f = diff(&t);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("different orders"));
    }

    #[test]
    fn parser_reads_single_and_wrapped_declarations() {
        let src = "pub const A: LockRank = LockRank { rank: 10, name: \"a\" };\n\
                   pub const WRAPPED: LockRank =\n\
                   \x20   LockRank { rank: 55, name: \"w\" };\n\
                   pub const NOT_A_RANK: u16 = 3;\n";
        let parsed = parse_lock_order(src);
        assert_eq!(
            parsed,
            vec![("A".to_string(), 10, 1), ("WRAPPED".to_string(), 55, 2)]
        );
    }

    #[test]
    fn live_tables_are_in_sync() {
        // The real cross-check, run against the working tree when the
        // tests execute from the workspace.
        let root = crate::default_root();
        if root.join(RUNTIME_TABLE).is_file() {
            let f = analyze(&root);
            assert!(f.is_empty(), "rank tables drifted: {}", f[0].msg);
        }
    }
}
