//! The declared lock-rank table and acquisition-site rules.
//!
//! The runtime half of this table lives in
//! `crates/storage/src/lock_order.rs`; the constants here MUST stay in
//! sync with it (the analyzer cross-checks names it sees in
//! `lock_order::ranked(..)` / `lock_order::acquire(..)` calls against
//! this list and fails on unknown names, so drift is caught).
//!
//! Ranks are a total order: a thread may only acquire a lock whose rank
//! is strictly greater than every lock it already holds. LabBase's cache
//! locks rank below all storage locks because the state-index build path
//! holds `build_lock` across storage reads.

/// `(constant name in lock_order, rank, human-readable lock name)`.
pub const RANK_CONSTS: &[(&str, u16, &str)] = &[
    ("ENGINE_ACTIVE", 10, "engine active-transaction table"),
    ("ENGINE_COMMIT_VIS", 12, "engine commit-visibility flip"),
    ("ENGINE_SNAPSHOTS", 14, "engine open-snapshot registry"),
    ("LOCK_SHARD", 20, "lock-manager shard"),
    ("LOCK_HELD", 25, "lock-manager held-locks map"),
    ("HEAP_GLOBAL", 28, "heap global shard (quiesce / segment roster)"),
    ("HEAP_EPOCH", 29, "heap version-reclamation epoch state"),
    ("HEAP_TABLE", 30, "heap object-table shard"),
    ("HEAP_SEGMENT", 32, "heap segment placement state"),
    ("BUFFER_POOL", 40, "buffer-pool frame table"),
    ("PAGE_FILE", 45, "page file handle"),
    ("WAL_WRITER", 50, "WAL append buffer"),
    ("WAL_QUEUE", 55, "WAL log-writer request queue"),
    ("SIM_VFS", 60, "simulated disk state"),
    // Network front end (crates/server): leaf latches ranked above every
    // storage lock, so holding one across a database call is itself an
    // inversion.
    ("SRV_TENANTS", 70, "server tenant registry"),
    ("SRV_CONNS", 72, "server connection table"),
    ("SRV_DRAIN", 74, "server drain latch"),
    // Replication (crates/server ack table, crates/repl follower state):
    // leaf latches like the server's — never held across a storage call.
    // The follower state lock outranks everything precisely so that
    // holding it across `replica_apply_commit` (which acquires engine
    // locks at ranks 10–55) is a caught inversion.
    ("REPL_ACKS", 76, "replication ack table"),
    ("REPL_FOLLOWER", 78, "replication follower state"),
];

// LabBase cache locks are not runtime-instrumented (labbase has no
// dependency on storage's lock_order); they participate in the static
// order only. All rank below ENGINE_ACTIVE.
pub const LAB_STATE_BUILD: u16 = 1;
pub const LAB_CATALOG: u16 = 2;
pub const LAB_SETS: u16 = 3;
pub const LAB_NAME_INDEX: u16 = 4;
pub const LAB_STATE_SHARD: u16 = 5;
pub const LAB_STATELESS: u16 = 6;

/// Resolve a `lock_order::<CONST>` name to its rank.
pub fn rank_of_const(name: &str) -> Option<u16> {
    RANK_CONSTS.iter().find(|(n, _, _)| *n == name).map(|(_, r, _)| *r)
}

/// Human-readable name for a rank (for diagnostics).
pub fn name_of_rank(rank: u16) -> String {
    if let Some((_, _, n)) = RANK_CONSTS.iter().find(|(_, r, _)| *r == rank) {
        return (*n).to_string();
    }
    match rank {
        LAB_STATE_BUILD => "labbase state-index build lock".to_string(),
        LAB_CATALOG => "labbase catalog cache".to_string(),
        LAB_SETS => "labbase sets directory cache".to_string(),
        LAB_NAME_INDEX => "labbase name index".to_string(),
        LAB_STATE_SHARD => "labbase state-index shard".to_string(),
        LAB_STATELESS => "labbase stateless set".to_string(),
        r => format!("rank {r}"),
    }
}

/// How an acquisition site is recognised.
pub enum RuleKind {
    /// A zero-argument method whose name alone identifies the lock
    /// (rank-wrapping helpers like `pool_lock()`).
    Helper(&'static str),
    /// `recv.method()` where `recv` is the lock field's name and
    /// `method` is a zero-argument `lock`/`read`/`write`.
    Receiver { recv: &'static str, methods: &'static [&'static str] },
}

/// An acquisition-site rule, scoped to a crate directory name (the
/// component after `crates/`; empty = any file).
pub struct LockRule {
    pub crate_dir: &'static str,
    pub kind: RuleKind,
    pub rank: u16,
}

/// The declared acquisition-site table.
///
/// Storage locks that use the explicit-token pattern (`lock_order::
/// acquire` alongside a raw guard handed to a condvar — `Shard::raw_lock`
/// in lock.rs, `queue` in wal.rs) are intentionally ABSENT here: the
/// token call is the static marker, and a receiver rule would double-
/// count the same lock as two nested acquisitions.
pub fn rules() -> Vec<LockRule> {
    use RuleKind::*;
    vec![
        // -- storage: rank-wrapping helpers ------------------------------
        // The heap's oid-keyed shard helpers (`table_read(oid)`,
        // `table_write(oid)`) and `seg_lock(&g, idx)` take arguments, so
        // they resolve through the name-based call graph rather than a
        // Helper rule; only the zero-arg global-shard helpers are listed.
        LockRule { crate_dir: "storage", kind: Helper("global_read"), rank: 28 },
        LockRule { crate_dir: "storage", kind: Helper("global_write"), rank: 28 },
        LockRule { crate_dir: "storage", kind: Helper("table_read"), rank: 30 },
        LockRule { crate_dir: "storage", kind: Helper("table_write"), rank: 30 },
        LockRule { crate_dir: "storage", kind: Helper("pool_lock"), rank: 40 },
        LockRule { crate_dir: "storage", kind: Helper("writer_lock"), rank: 50 },
        LockRule { crate_dir: "storage", kind: Helper("sim_lock"), rank: 60 },
        // Engine's active-table accessor and Shard::lock are helpers too.
        LockRule { crate_dir: "storage", kind: Helper("active"), rank: 10 },
        // MVCC additions: the commit-visibility flip, the open-snapshot
        // registry, and the heap's version-reclamation epoch state.
        LockRule { crate_dir: "storage", kind: Helper("vis_lock"), rank: 12 },
        LockRule { crate_dir: "storage", kind: Helper("snaps_lock"), rank: 14 },
        LockRule { crate_dir: "storage", kind: Helper("epoch_lock"), rank: 29 },
        LockRule {
            crate_dir: "storage",
            kind: Receiver { recv: "shard", methods: &["lock"] },
            rank: 20,
        },
        // The page file's handle mutex (not runtime-instrumented: it is
        // the innermost lock and is only ever acquired last).
        LockRule {
            crate_dir: "storage",
            kind: Receiver { recv: "file", methods: &["lock"] },
            rank: 45,
        },
        // -- labbase: cache locks (static order only) ---------------------
        LockRule {
            crate_dir: "labbase",
            kind: Receiver { recv: "build_lock", methods: &["lock"] },
            rank: LAB_STATE_BUILD,
        },
        LockRule {
            crate_dir: "labbase",
            kind: Receiver { recv: "catalog", methods: &["read", "write"] },
            rank: LAB_CATALOG,
        },
        LockRule {
            crate_dir: "labbase",
            kind: Receiver { recv: "sets", methods: &["read", "write"] },
            rank: LAB_SETS,
        },
        LockRule {
            crate_dir: "labbase",
            kind: Receiver { recv: "name_index", methods: &["read", "write"] },
            rank: LAB_NAME_INDEX,
        },
        LockRule {
            crate_dir: "labbase",
            kind: Receiver { recv: "shards", methods: &["read", "write"] },
            rank: LAB_STATE_SHARD,
        },
        LockRule {
            crate_dir: "labbase",
            kind: Receiver { recv: "shard", methods: &["read", "write"] },
            rank: LAB_STATE_SHARD,
        },
        LockRule {
            crate_dir: "labbase",
            kind: Receiver { recv: "stateless", methods: &["read", "write"] },
            rank: LAB_STATELESS,
        },
    ]
}

/// Function names that block (or force the WAL): holding any guard
/// across one of these is a violation unless the guard IS the thing
/// being waited on / synced (receiver-root and first-argument
/// exemptions in the checker), or an `allow(blocking)` marker applies.
pub const BLOCKING_FNS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "sleep",
    "sync_data",
    "sync_all",
    "flush",
    "force",
    "group_commit",
    "join",
    "recv",
    "recv_timeout",
    "park",
];
