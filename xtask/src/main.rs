//! `labflow-analyzer` — workspace static analysis.
//!
//! Run as `cargo xtask analyze [--root DIR]` (the alias lives in
//! `.cargo/config.toml`). Six passes over every non-test source file:
//!
//! * **panic-freedom** (`panics.rs`): no `.unwrap()` / `.expect()` /
//!   `panic!`-family macros in the server crates; slice indexing is
//!   held to a per-crate ratcheted budget.
//! * **lock discipline** (`locks.rs`): every lock acquisition site is
//!   placed in the declared rank table (`ranks.rs`), nesting must
//!   strictly increase rank, the observed acquisition graph must be
//!   acyclic, and no guard may be held across a blocking call.
//! * **unsafe budget** (`unsafety.rs`): `unsafe` stays confined to the
//!   crates in `UNSAFE_BUDGETS` (ratcheted, like indexing); any site
//!   elsewhere needs an `allow(unsafe, "..")` safety argument.
//! * **atomic orderings** (`atomics.rs`): no `Relaxed` on
//!   pointer-typed atomics, and no lone `Relaxed` access to an atomic
//!   a crate otherwise accesses with stronger orderings.
//! * **rank drift** (`drift.rs`): the runtime rank table in
//!   `crates/storage/src/lock_order.rs` and the analyzer's `ranks.rs`
//!   must agree constant-for-constant, rank-for-rank.
//! * **allow audit** (`audit.rs`): every `allow(..)` marker is
//!   well-formed, names a known kind, carries a justification, and
//!   still sits next to the construct it waives.
//!
//! Exit code 0 = clean; 1 = findings (printed `file:line: [pass] msg`).
//! With `--root` pointing outside a cargo workspace (e.g. the seeded
//! fixtures in `xtask/fixtures/`), every `.rs` file underneath is
//! analysed and the indexing budget is zero.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

mod atomics;
mod audit;
mod crashtest;
mod drift;
mod failover;
mod failover_smoke;
mod lexer;
mod locks;
mod modelcheck;
mod panics;
mod ranks;
mod scrubcmd;
mod server_smoke;
mod unsafety;

/// One analysed source file.
pub struct SourceFile {
    /// Path relative to the analysis root (for reporting).
    pub rel: String,
    /// The crate directory name (component after `crates/`), or
    /// `"fixtures"` outside a workspace.
    pub crate_dir: String,
    /// Token stream with test-only regions stripped.
    pub tokens: Vec<lexer::Token>,
    /// Line-comment side table (for allow markers).
    pub comments: HashMap<u32, String>,
}

/// One reported violation.
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub pass: &'static str,
    pub msg: String,
}

/// Crates the panic-freedom lint applies to (the server path; the
/// workload driver and query shell may still panic on bad input).
const PANIC_CRATES: &[&str] = &["storage", "labbase", "workflow", "core", "mrv", "server", "repl"];

/// Slice-indexing ratchet: the per-crate count of unwaived index
/// expressions may not exceed these budgets. Lower freely; raising one
/// means a new unchecked index went in and needs a reviewer's eyes.
const INDEX_BUDGETS: &[(&str, u32)] = &[
    ("storage", 45),
    ("labbase", 16),
    ("workflow", 0),
    ("core", 18),
    ("server", 0),
    ("repl", 0),
];

/// Unsafe-code ratchet: the only crates allowed any `unsafe` at all,
/// and how many sites each may have. Everything else is
/// `#![forbid(unsafe_code)]` territory — a site outside these crates
/// needs an `// analyzer: allow(unsafe, "safety argument")` marker.
/// `labflow-mrv` is the workspace's designated unsafe island (the
/// lock-free read path); the model-checker harness itself needs none.
const UNSAFE_BUDGETS: &[(&str, u32)] = &[("mrv", 13)];

const USAGE: &str = "usage: cargo xtask analyze [--root DIR]\n       cargo xtask modelcheck\n       cargo xtask crashtest [--seeds N] [--first-seed S] [--corrupt]\n       cargo xtask failover [--seeds N] [--first-seed S]\n       cargo xtask failover-smoke [--dir PATH]\n       cargo xtask scrub --dir PATH [--demo]\n       cargo xtask server-smoke [--dir PATH]";

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<String> = None;
    let mut seeds: u64 = 64;
    let mut first_seed: u64 = 0;
    let mut corrupt = false;
    let mut demo = false;
    let mut dir: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--seeds" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => seeds = n,
                None => {
                    eprintln!("--seeds needs a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--first-seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => first_seed = n,
                None => {
                    eprintln!("--first-seed needs an integer argument");
                    std::process::exit(2);
                }
            },
            "--corrupt" => corrupt = true,
            "--demo" => demo = true,
            "--dir" => match args.next() {
                Some(d) => dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--dir needs a path argument");
                    std::process::exit(2);
                }
            },
            "analyze" | "crashtest" | "failover" | "failover-smoke" | "modelcheck" | "scrub"
            | "server-smoke"
                if cmd.is_none() =>
            {
                cmd = Some(a)
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if cmd.as_deref() == Some("scrub") {
        let Some(dir) = dir else {
            eprintln!("scrub needs --dir PATH\n{USAGE}");
            std::process::exit(2);
        };
        if demo {
            if let Err(e) = scrubcmd::build_demo(&dir) {
                eprintln!("scrub: {e}");
                std::process::exit(2);
            }
        }
        std::process::exit(scrubcmd::run(&dir));
    }
    if cmd.as_deref() == Some("server-smoke") {
        std::process::exit(server_smoke::run(dir.as_deref()));
    }
    if cmd.as_deref() == Some("failover-smoke") {
        std::process::exit(failover_smoke::run(dir.as_deref()));
    }
    if cmd.as_deref() == Some("crashtest") {
        let failures = crashtest::run(first_seed, seeds, corrupt);
        if failures > 0 {
            eprintln!("crashtest: {failures} of {seeds} seeds violated the durability contract");
            std::process::exit(1);
        }
        return;
    }
    if cmd.as_deref() == Some("failover") {
        let failures = failover::run(first_seed, seeds);
        if failures > 0 {
            eprintln!("failover: {failures} of {seeds} seeds violated the replication contract");
            std::process::exit(1);
        }
        return;
    }
    if cmd.as_deref() == Some("modelcheck") {
        std::process::exit(modelcheck::run(&root.unwrap_or_else(default_root)));
    }
    if cmd.as_deref() != Some("analyze") {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let root = root.unwrap_or_else(default_root);

    match run(&root) {
        Ok(0) => {}
        Ok(n) => {
            eprintln!("analyze: {n} finding{} — failing", if n == 1 { "" } else { "s" });
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("analyze: {e}");
            std::process::exit(2);
        }
    }
}

/// The workspace root when no `--root` was given: the alias runs from
/// anywhere in the workspace, and this crate's manifest dir is
/// `<root>/xtask`.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(d) => PathBuf::from(d).parent().map(Path::to_path_buf).unwrap_or_default(),
        None => PathBuf::from("."),
    }
}

fn run(root: &Path) -> std::io::Result<usize> {
    let workspace_mode = root.join("crates").is_dir();
    let files = load_files(root, workspace_mode)?;
    if files.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no .rs files under {}", root.display()),
        ));
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut index_counts: HashMap<String, u32> = HashMap::new();
    let mut unsafe_counts: HashMap<String, u32> = HashMap::new();

    for file in &files {
        let linted = !workspace_mode || PANIC_CRATES.contains(&file.crate_dir.as_str());
        if linted {
            let (f, idx) = panics::scan(file);
            findings.extend(f);
            *index_counts.entry(file.crate_dir.clone()).or_default() += idx;
        }
        let budgeted =
            workspace_mode && UNSAFE_BUDGETS.iter().any(|(k, _)| *k == file.crate_dir);
        let (f, n) = unsafety::scan(file, budgeted);
        findings.extend(f);
        if budgeted {
            *unsafe_counts.entry(file.crate_dir.clone()).or_default() += n;
        }
    }

    // Ratchet check.
    let budget_of = |krate: &str| -> u32 {
        if !workspace_mode {
            return 0; // fixtures: deny-all
        }
        INDEX_BUDGETS.iter().find(|(k, _)| *k == krate).map(|(_, b)| *b).unwrap_or(0)
    };
    let mut crates: Vec<&String> = index_counts.keys().collect();
    crates.sort();
    for krate in crates {
        let count = index_counts[krate];
        let budget = budget_of(krate);
        if count > budget {
            findings.push(Finding {
                file: format!("crates/{krate}"),
                line: 0,
                pass: "index-budget",
                msg: format!(
                    "{count} slice-index expressions exceed the budget of {budget} — \
                     prefer .get()/typed errors, waive a site with \
                     `// analyzer: allow(index, \"..\")`, or raise the budget in \
                     xtask/src/main.rs with review"
                ),
            });
        } else if count < budget {
            eprintln!(
                "analyze: note: crate `{krate}` uses {count}/{budget} of its index \
                 budget — consider ratcheting the budget down in xtask/src/main.rs"
            );
        }
    }

    // Unsafe ratchet (budgeted crates only; unbudgeted sites were
    // already flagged per file above).
    for (krate, budget) in UNSAFE_BUDGETS {
        if !workspace_mode {
            break;
        }
        let count = unsafe_counts.get(*krate).copied().unwrap_or(0);
        if count > *budget {
            findings.push(Finding {
                file: format!("crates/{krate}"),
                line: 0,
                pass: "unsafe-budget",
                msg: format!(
                    "{count} unsafe sites exceed the budget of {budget} — every new \
                     site needs a reviewer's eyes on its safety argument; raise the \
                     budget in xtask/src/main.rs only with review"
                ),
            });
        } else if count < *budget {
            eprintln!(
                "analyze: note: crate `{krate}` uses {count}/{budget} of its unsafe \
                 budget — consider ratcheting the budget down in xtask/src/main.rs"
            );
        }
    }

    findings.extend(locks::analyze(&files));
    findings.extend(atomics::analyze(&files));
    findings.extend(audit::analyze(&files));
    if workspace_mode {
        findings.extend(drift::analyze(root));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for f in &findings {
        if f.line > 0 {
            println!("{}:{}: [{}] {}", f.file, f.line, f.pass, f.msg);
        } else {
            println!("{}: [{}] {}", f.file, f.pass, f.msg);
        }
    }
    Ok(findings.len())
}

/// Collect and lex the files to analyse. Workspace mode reads
/// `crates/*/src/**/*.rs`; fixture mode reads every `.rs` under root.
fn load_files(root: &Path, workspace_mode: bool) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<(PathBuf, String)> = Vec::new(); // (path, crate_dir)
    if workspace_mode {
        let crates = root.join("crates");
        let mut dirs: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let krate = dir.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            let mut found = Vec::new();
            walk(&src, &mut found)?;
            paths.extend(found.into_iter().map(|p| (p, krate.clone())));
        }
    } else {
        let mut found = Vec::new();
        walk(root, &mut found)?;
        paths.extend(found.into_iter().map(|p| (p, "fixtures".to_string())));
    }

    let mut files = Vec::new();
    for (path, crate_dir) in paths {
        let src = std::fs::read_to_string(&path)?;
        let lexed = lexer::lex(&src);
        let rel = path
            .strip_prefix(root)
            .map(|p| p.display().to_string())
            .unwrap_or_else(|_| path.display().to_string());
        files.push(SourceFile {
            rel,
            crate_dir,
            tokens: lexer::strip_test_regions(lexed.tokens),
            comments: lexed.comments,
        });
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
