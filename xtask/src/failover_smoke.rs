//! Process-level failover smoke test (`cargo xtask failover-smoke`).
//!
//! The `failover` harness tortures the replication pipeline under a
//! *simulated* machine; this test runs the real binaries and kills a
//! real process:
//!
//! 1. build and spawn `labflow-server` as the primary with
//!    `--ack-quorum 2`, and two `labflow-replica` processes following
//!    it over loopback TCP;
//! 2. run a client workload against the primary, recording every
//!    transaction whose commit returned `Ok` in a ledger — with a
//!    quorum of two, an acknowledged commit is durably applied on both
//!    replicas before the response leaves the primary;
//! 3. open one more transaction, write through it, and SIGKILL the
//!    primary with the transaction still open;
//! 4. promote replica A through the wire (`ReplPromote`) and verify
//!    committed-exactly on the promoted store: every ledgered material
//!    is present in its final state, the mid-kill transaction's
//!    material does not exist, and a fresh transaction commits — the
//!    replica really is a primary now;
//! 5. drain both replicas gracefully and scrub both store images
//!    offline: zero unquarantined damage.
//!
//! Commits the primary answered with the typed quorum-lag error (code
//! `EC_REPL`: locally durable, acks missing) are tracked separately —
//! they may legitimately be present or absent after the failover, and
//! the state counts are checked against that window.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use labbase::{AttrType, Value};
use labflow_server::{proto, Client, ClientError};
use labflow_storage::{scrub_store, RealVfs};

const CLIENTS: usize = 2;
const TXNS_PER_CLIENT: usize = 8;
const TXN_ATTEMPTS: usize = 10;
const START_TIMEOUT: Duration = Duration::from_secs(60);
const EXIT_TIMEOUT: Duration = Duration::from_secs(30);

/// Kills the spawned process on drop so a failing assertion never
/// leaks a listener.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn workspace_root() -> PathBuf {
    match Path::new(env!("CARGO_MANIFEST_DIR")).parent() {
        Some(p) => p.to_path_buf(),
        None => PathBuf::from("."),
    }
}

/// Build the server and replica binaries; return their paths.
fn binaries(root: &Path) -> Result<(PathBuf, PathBuf), String> {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let status = Command::new(cargo)
        .current_dir(root)
        .args(["build", "-q", "-p", "labflow-server", "-p", "labflow-repl", "--bins"])
        .status()
        .map_err(|e| format!("run cargo build: {e}"))?;
    if !status.success() {
        return Err("cargo build of the server and replica binaries failed".into());
    }
    let target = match std::env::var_os("CARGO_TARGET_DIR") {
        Some(t) => PathBuf::from(t),
        None => root.join("target"),
    };
    let debug = target.join("debug");
    let bin = |name: &str| {
        let p = debug.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
        if p.exists() {
            Ok(p)
        } else {
            Err(format!("built binary not found at {}", p.display()))
        }
    };
    Ok((bin("labflow-server")?, bin("labflow-replica")?))
}

/// Spawn a process and parse its bound address from the
/// `<banner_prefix><addr>` stdout line.
fn spawn_node(bin: &Path, args: &[&str], banner_prefix: &'static str) -> Result<(Reaped, String), String> {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = match child.stdout.take() {
        Some(s) => s,
        None => {
            let _ = child.kill();
            return Err("process stdout not captured".into());
        }
    };
    let mut child = Reaped(child);
    let reader = std::thread::spawn(move || {
        let mut lines = std::io::BufReader::new(stdout).lines();
        loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix(banner_prefix) {
                        return Some(addr.trim().to_string());
                    }
                }
                Some(Err(_)) | None => return None,
            }
        }
    });
    let start = Instant::now();
    loop {
        if reader.is_finished() {
            return match reader.join() {
                Ok(Some(addr)) => Ok((child, addr)),
                _ => Err(format!("process exited before printing '{banner_prefix}<addr>'")),
            };
        }
        if start.elapsed() > START_TIMEOUT {
            let _ = child.0.kill();
            return Err(format!("no '{banner_prefix}<addr>' banner within {START_TIMEOUT:?}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn transient(e: &ClientError) -> bool {
    matches!(e, ClientError::Retry { .. } | ClientError::Overloaded { .. })
}

/// The typed quorum-lag response: the commit is locally durable on the
/// primary but its follower acks did not arrive in time.
fn quorum_lagged(e: &ClientError) -> bool {
    matches!(e, ClientError::Server { code, .. } if *code == proto::EC_REPL)
}

/// What one workload client observed: names whose commit was
/// quorum-acked, and names the primary reported as quorum-lagged.
#[derive(Default)]
struct Ledger {
    acked: Vec<String>,
    lagged: Vec<String>,
}

/// Commit one workload transaction (create, step, state). `Ok` means
/// the commit was acknowledged under the ack quorum.
fn commit_material(c: &mut Client, ledger: &mut Ledger, name: &str, t: i64) -> Result<(), String> {
    let mut last = String::new();
    for attempt in 0..TXN_ATTEMPTS {
        let result = (|| -> Result<(), ClientError> {
            c.begin()?;
            let m = c.create_material("sample", name, t)?;
            c.record_step(
                "measure",
                t + 1,
                &[m],
                vec![("reading".into(), Value::Real(t as f64))],
            )?;
            c.set_state(m, "done", t + 2)?;
            c.commit()
        })();
        match result {
            Ok(()) => {
                ledger.acked.push(name.to_string());
                return Ok(());
            }
            Err(e) if quorum_lagged(&e) => {
                // Landed on the primary, ack quorum unknown: the
                // failover may or may not carry it.
                ledger.lagged.push(name.to_string());
                return Ok(());
            }
            Err(e) => {
                let _ = c.abort();
                if !transient(&e) {
                    return Err(format!("transaction for {name}: {e}"));
                }
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(10 * (attempt as u64 + 1)));
            }
        }
    }
    Err(format!("transaction for {name} did not commit after {TXN_ATTEMPTS} attempts (last: {last})"))
}

fn client_workload(addr: &str, client: usize) -> Result<Ledger, String> {
    let mut c = Client::connect(addr, client as u32 + 1)
        .map_err(|e| format!("client {client} connect: {e}"))?;
    let mut ledger = Ledger::default();
    for txn in 0..TXNS_PER_CLIENT {
        let name = format!("failover-c{client}-m{txn}");
        commit_material(&mut c, &mut ledger, &name, (client * 1000 + txn * 10) as i64)
            .map_err(|e| format!("client {client}: {e}"))?;
    }
    Ok(ledger)
}

/// Verify committed-exactly on the promoted replica, then prove it is
/// writable.
fn verify_promoted(addr: &str, ledger: &Ledger) -> Result<(), String> {
    let mut c = Client::connect(addr, 99).map_err(|e| format!("verify connect: {e}"))?;
    for name in &ledger.acked {
        let m = c
            .find_material(name)
            .map_err(|e| format!("find {name}: {e}"))?
            .ok_or_else(|| format!("quorum-acked material {name} lost across the failover"))?;
        match c.state_of(m).map_err(|e| format!("state of {name}: {e}"))? {
            Some(ref s) if s == "done" => {}
            other => return Err(format!("material {name} failed over in state {other:?}")),
        }
    }
    if let Some(m) = c
        .find_material("failover-ghost-mid-kill")
        .map_err(|e| format!("find ghost: {e}"))?
    {
        return Err(format!("mid-kill transaction's material survived promotion as oid {m}"));
    }
    let done = c.count_in_state("done").map_err(|e| format!("count_in_state: {e}"))?;
    let (lo, hi) = (
        ledger.acked.len() as u64,
        (ledger.acked.len() + ledger.lagged.len()) as u64,
    );
    if done < lo || done > hi {
        return Err(format!(
            "count_in_state(done) = {done} after failover; quorum-acked {lo}, \
             quorum-lagged window up to {hi}"
        ));
    }
    // The promoted replica must accept writes: it is the primary now.
    c.begin().map_err(|e| format!("post-promotion begin: {e}"))?;
    let m = c
        .create_material("sample", "failover-after-promotion", 900)
        .map_err(|e| format!("post-promotion create: {e}"))?;
    c.set_state(m, "done", 901).map_err(|e| format!("post-promotion set_state: {e}"))?;
    c.commit().map_err(|e| format!("post-promotion commit: {e}"))?;
    if c.find_material("failover-after-promotion")
        .map_err(|e| format!("post-promotion read-back: {e}"))?
        .is_none()
    {
        return Err("post-promotion material not readable".into());
    }
    Ok(())
}

/// Drain a replica via the wire and require a clean exit.
fn drain(mut node: Reaped, addr: &str, what: &str) -> Result<(), String> {
    let mut c = Client::connect(addr, 0).map_err(|e| format!("{what} shutdown connect: {e}"))?;
    c.shutdown_server().map_err(|e| format!("{what} shutdown request: {e}"))?;
    drop(c);
    let start = Instant::now();
    loop {
        match node.0.try_wait() {
            Ok(Some(status)) if status.success() => return Ok(()),
            Ok(Some(status)) => return Err(format!("{what} exited uncleanly after drain: {status}")),
            Ok(None) if start.elapsed() > EXIT_TIMEOUT => {
                return Err(format!("{what} did not exit after the Shutdown request"));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(100)),
            Err(e) => return Err(format!("wait for {what} exit: {e}")),
        }
    }
}

fn scrub_clean(dir: &Path, what: &str) -> Result<(), String> {
    let report = scrub_store(&RealVfs::arc(), dir)
        .map_err(|e| format!("scrub of the {what} image: {e}"))?;
    if !report.clean() {
        return Err(format!(
            "scrub of the {what} image found unquarantined damage on pages {:?}",
            report.corrupt
        ));
    }
    println!(
        "failover-smoke: {what} image scrub clean ({} pages, {} wal frames)",
        report.pages, report.wal_frames
    );
    Ok(())
}

fn run_inner(dir: &Path) -> Result<(), String> {
    let root = workspace_root();
    let (server_bin, replica_bin) = binaries(&root)?;
    let pdir = dir.join("primary");
    let adir = dir.join("replica-a");
    let bdir = dir.join("replica-b");

    // ---- Cluster up: primary with a quorum of 2, two replicas.
    let (mut primary, paddr) = spawn_node(
        &server_bin,
        &[
            "--dir",
            &pdir.display().to_string(),
            "--addr",
            "127.0.0.1:0",
            "--ack-quorum",
            "2",
            "--ack-timeout-ms",
            "10000",
        ],
        "labflow-server listening on ",
    )?;
    println!("failover-smoke: primary on {paddr} (pid {})", primary.0.id());
    let spawn_replica = |dir: &Path, id: &str| {
        spawn_node(
            &replica_bin,
            &["--dir", &dir.display().to_string(), "--follow", &paddr, "--addr", "127.0.0.1:0", "--follower-id", id],
            "labflow-replica listening on ",
        )
    };
    let (replica_a, aaddr) = spawn_replica(&adir, "1")?;
    let (replica_b, baddr) = spawn_replica(&bdir, "2")?;
    println!("failover-smoke: replicas on {aaddr} and {baddr}");

    let mut admin = Client::connect(paddr.as_str(), 7).map_err(|e| format!("admin connect: {e}"))?;
    admin.begin().map_err(|e| format!("schema begin: {e}"))?;
    admin
        .define_material_class("sample", None)
        .map_err(|e| format!("define material class: {e}"))?;
    admin
        .define_step_class("measure", &[("reading", AttrType::Real)])
        .map_err(|e| format!("define step class: {e}"))?;
    match admin.commit() {
        Ok(()) => {}
        // Quorum-lagged schema means a replica is still seeding; the
        // commit itself is durable and shipped, so carry on.
        Err(e) if quorum_lagged(&e) => {}
        Err(e) => return Err(format!("schema commit: {e}")),
    }

    // ---- Quorum-acked workload.
    let ledger: Ledger = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let addr = paddr.as_str();
                scope.spawn(move || client_workload(addr, i))
            })
            .collect();
        let mut all = Ledger::default();
        let mut errors = Vec::new();
        for h in handles {
            match h.join() {
                Ok(Ok(l)) => {
                    all.acked.extend(l.acked);
                    all.lagged.extend(l.lagged);
                }
                Ok(Err(e)) => errors.push(e),
                Err(_) => errors.push("workload thread panicked".into()),
            }
        }
        if errors.is_empty() {
            Ok(all)
        } else {
            Err(errors.join("; "))
        }
    })?;
    println!(
        "failover-smoke: {} commits quorum-acked, {} quorum-lagged",
        ledger.acked.len(),
        ledger.lagged.len()
    );

    // ---- Kill the primary with a transaction open.
    admin.begin().map_err(|e| format!("ghost begin: {e}"))?;
    let ghost = admin
        .create_material("sample", "failover-ghost-mid-kill", 7)
        .map_err(|e| format!("ghost create: {e}"))?;
    admin.set_state(ghost, "done", 8).map_err(|e| format!("ghost set_state: {e}"))?;
    primary.0.kill().map_err(|e| format!("kill primary: {e}"))?;
    let _ = primary.0.wait();
    drop(primary);
    drop(admin);
    println!("failover-smoke: primary killed mid-transaction; promoting replica A");

    // ---- Promote replica A and verify committed-exactly.
    let mut c = Client::connect(aaddr.as_str(), 1).map_err(|e| format!("promote connect: {e}"))?;
    c.repl_promote().map_err(|e| format!("promote: {e}"))?;
    drop(c);
    verify_promoted(&aaddr, &ledger)?;
    println!("failover-smoke: committed-exactly verified on the promoted replica");

    // ---- Drain both replicas, then audit the images offline.
    drain(replica_a, &aaddr, "replica A")?;
    drain(replica_b, &baddr, "replica B")?;
    scrub_clean(&adir, "promoted")?;
    scrub_clean(&bdir, "surviving follower")?;
    Ok(())
}

/// Entry point. With `--dir` the cluster directories are reused (and
/// kept); otherwise a scratch directory under `target/` is created and
/// removed on success. Returns a process exit code.
pub fn run(dir: Option<&Path>) -> i32 {
    let scratch;
    let (dir, ephemeral) = match dir {
        Some(d) => (d, false),
        None => {
            scratch = workspace_root()
                .join("target")
                .join(format!("failover-smoke-{}", std::process::id()));
            (scratch.as_path(), true)
        }
    };
    let _ = std::fs::remove_dir_all(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failover-smoke: creating {}: {e}", dir.display());
        return 1;
    }
    let outcome = run_inner(dir);
    if ephemeral && outcome.is_ok() {
        let _ = std::fs::remove_dir_all(dir);
    }
    match outcome {
        Ok(()) => {
            println!("failover-smoke: PASS");
            0
        }
        Err(why) => {
            eprintln!("failover-smoke: FAIL: {why}");
            1
        }
    }
}
