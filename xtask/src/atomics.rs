//! Atomic-ordering lint.
//!
//! Memory-ordering bugs don't crash in tests — they surface years
//! later on weaker hardware. This pass flags the two `Relaxed` shapes
//! that are almost never right in this codebase:
//!
//! * **relaxed pointer**: `Ordering::Relaxed` on a pointer-typed
//!   atomic (`AtomicPtr`). A Relaxed pointer load carries no
//!   publication ordering, so the pointee's initialisation is not
//!   guaranteed visible to the loading thread.
//! * **mixed orderings**: a `Relaxed` access to an atomic that the
//!   same crate elsewhere accesses with Acquire/Release/AcqRel/SeqCst.
//!   A deliberately-Relaxed counter is all-Relaxed; one stray Relaxed
//!   among stronger accesses usually means a site quietly opted out of
//!   the protocol's synchronisation.
//!
//! Surviving sites carry `// analyzer: allow(ordering, "why this
//! Relaxed access is safe")`. The pass is token-level, not type-aware:
//! the *receiver* of `expr.load(..)` is the last identifier before the
//! dot (walking back over `?`, `[..]`, and `(..)` groups), aggregated
//! per crate by name; pointer-typed names come from declaration
//! patterns (`name: ..AtomicPtr..` and `name = AtomicPtr::new`). That
//! is deliberately coarse — same-named fields in one crate merge — but
//! every real mixed-ordering bug this was built against (see the
//! `relaxed_scan` fixture in `crates/modelcheck/tests/protocol.rs`,
//! which the interleaving explorer catches dynamically) is in reach of
//! exactly this shape.

use std::collections::{HashMap, HashSet};

use crate::lexer::allowed;
use crate::{Finding, SourceFile};

/// Methods whose argument list carries an `Ordering`.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One `Ordering::X` observed inside an atomic method call.
struct Use {
    file: usize,
    line: u32,
    krate: String,
    receiver: String,
    method: String,
    ordering: &'static str,
}

pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let mut uses: Vec<Use> = Vec::new();
    // (crate, receiver-name) pairs declared with a pointer-typed atomic.
    let mut ptr_typed: HashSet<(String, String)> = HashSet::new();

    for (fi, file) in files.iter().enumerate() {
        collect_ptr_decls(file, &mut ptr_typed);
        collect_uses(fi, file, &mut uses);
    }

    // Orderings seen per (crate, receiver), across every file of the crate.
    let mut seen: HashMap<(String, String), HashSet<&'static str>> = HashMap::new();
    for u in &uses {
        seen.entry((u.krate.clone(), u.receiver.clone())).or_default().insert(u.ordering);
    }

    let mut findings = Vec::new();
    for u in &uses {
        if u.ordering != "Relaxed" {
            continue;
        }
        let file = &files[u.file];
        if allowed(&file.comments, u.line, "ordering") {
            continue;
        }
        let key = (u.krate.clone(), u.receiver.clone());
        if ptr_typed.contains(&key) {
            findings.push(Finding {
                file: file.rel.clone(),
                line: u.line,
                pass: "atomic-ordering",
                msg: format!(
                    "Relaxed `{}` on pointer-typed atomic `{}` — a Relaxed pointer \
                     access carries no publication ordering for the pointee; use \
                     Acquire/Release/SeqCst, or waive with \
                     `// analyzer: allow(ordering, \"..\")`",
                    u.method, u.receiver
                ),
            });
            continue;
        }
        let stronger: Vec<&str> = ORDERINGS
            .iter()
            .copied()
            .filter(|o| *o != "Relaxed" && seen[&key].contains(o))
            .collect();
        if !stronger.is_empty() {
            findings.push(Finding {
                file: file.rel.clone(),
                line: u.line,
                pass: "atomic-ordering",
                msg: format!(
                    "Relaxed `{}` on `{}`, which this crate also accesses with {} — \
                     one Relaxed access among stronger ones usually opts out of the \
                     protocol's synchronisation; align the orderings or justify with \
                     `// analyzer: allow(ordering, \"..\")`",
                    u.method,
                    u.receiver,
                    stronger.join("/")
                ),
            });
        }
    }
    findings
}

/// Record receiver names declared with a pointer-typed atomic:
/// `name: ..AtomicPtr..` (field / binding annotation, scanning forward
/// a bounded window that stops at list/expression boundaries) and
/// `name = AtomicPtr::new(..)`.
fn collect_ptr_decls(file: &SourceFile, out: &mut HashSet<(String, String)>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else { continue };
        if crate::locks::is_keyword(name) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if next.is_punct(':') {
            // `name: Box<[AtomicPtr<T>]>` — bounded forward scan.
            for t in toks.iter().skip(i + 2).take(16) {
                if [',', ')', ';', '=', '{', '}'].iter().any(|c| t.is_punct(*c)) {
                    break;
                }
                if t.is_ident("AtomicPtr") {
                    out.insert((file.crate_dir.clone(), name.to_string()));
                    break;
                }
            }
        } else if next.is_punct('=') && toks.get(i + 2).is_some_and(|t| t.is_ident("AtomicPtr")) {
            out.insert((file.crate_dir.clone(), name.to_string()));
        }
    }
}

/// Record every `Ordering::X` inside the argument list of an atomic
/// method call, attributed to the call's receiver.
fn collect_uses(fi: usize, file: &SourceFile, out: &mut Vec<Use>) {
    let toks = &file.tokens;
    for i in 1..toks.len() {
        let Some(method) = toks[i].ident() else { continue };
        if !ATOMIC_METHODS.contains(&method)
            || !toks[i - 1].is_punct('.')
            || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let Some(receiver) = receiver_of(toks, i - 2) else { continue };
        // Walk the balanced argument list for `Ordering :: X`.
        let mut depth = 1u32;
        let mut k = i + 2;
        while k < toks.len() && depth > 0 {
            let t = &toks[k];
            if ['(', '[', '{'].iter().any(|c| t.is_punct(*c)) {
                depth += 1;
            } else if [')', ']', '}'].iter().any(|c| t.is_punct(*c)) {
                depth -= 1;
            } else if t.is_ident("Ordering") {
                let mut j = k + 1;
                while toks.get(j).is_some_and(|t| t.is_punct(':')) {
                    j += 1;
                }
                if let Some(ord) = toks
                    .get(j)
                    .and_then(|t| t.ident())
                    .and_then(|o| ORDERINGS.iter().find(|c| **c == o))
                {
                    out.push(Use {
                        file: fi,
                        line: toks[j].line,
                        krate: file.crate_dir.clone(),
                        receiver: receiver.clone(),
                        method: method.to_string(),
                        ordering: ord,
                    });
                    k = j;
                }
            }
            k += 1;
        }
    }
}

/// The last identifier before the method's dot, walking back over `?`
/// and balanced `(..)` / `[..]` groups, so `table.slots[i].swap(..)`
/// attributes to `slots` and `self.epoch.load(..)` to `epoch`.
/// Chains through accessors stop at the nearest call (`..get(i)?.load`
/// attributes to `get`) — coarse, but stable and crate-local.
fn receiver_of(toks: &[crate::lexer::Token], mut j: usize) -> Option<String> {
    loop {
        let t = toks.get(j)?;
        if t.is_punct('?') {
            j = j.checked_sub(1)?;
        } else if t.is_punct(')') || t.is_punct(']') {
            let mut depth = 1u32;
            while depth > 0 {
                j = j.checked_sub(1)?;
                let t = toks.get(j)?;
                if t.is_punct(')') || t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('(') || t.is_punct('[') {
                    depth -= 1;
                }
            }
            j = j.checked_sub(1)?;
        } else {
            return t.ident().filter(|s| !crate::locks::is_keyword(s)).map(str::to_string);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn file(src: &str, krate: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        SourceFile {
            rel: format!("{krate}/test.rs"),
            crate_dir: krate.to_string(),
            tokens: lexer::strip_test_regions(lexed.tokens),
            comments: lexed.comments,
        }
    }

    #[test]
    fn mixed_orderings_flag_the_relaxed_site_only() {
        let f = file(
            "fn f(a: &AtomicU64) {\n\
             a.store(1, Ordering::Release);\n\
             let x = a.load(Ordering::Relaxed);\n\
             }\n",
            "k",
        );
        let findings = analyze(&[f]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].msg.contains("Release"));
    }

    #[test]
    fn all_relaxed_counter_is_clean() {
        let f = file(
            "fn f(c: &AtomicU64) {\n\
             c.fetch_add(1, Ordering::Relaxed);\n\
             let x = c.load(Ordering::Relaxed);\n\
             }\n",
            "k",
        );
        assert!(analyze(&[f]).is_empty());
    }

    #[test]
    fn relaxed_on_atomic_ptr_is_flagged_without_a_mix() {
        let f = file(
            "struct S { head: AtomicPtr<Node> }\n\
             fn f(s: &S) {\n\
             let p = s.head.load(Ordering::Relaxed);\n\
             }\n",
            "k",
        );
        let findings = analyze(&[f]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].msg.contains("pointer-typed"));
    }

    #[test]
    fn allow_marker_waives_a_site() {
        let f = file(
            "fn f(a: &AtomicU64) {\n\
             a.store(1, Ordering::SeqCst);\n\
             // analyzer: allow(ordering, \"own-slot read; racing writers re-check\")\n\
             let x = a.load(Ordering::Relaxed);\n\
             }\n",
            "k",
        );
        assert!(analyze(&[f]).is_empty());
    }

    #[test]
    fn aggregation_spans_files_within_a_crate_but_not_across_crates() {
        let f1 = file("fn f(a: &AtomicU64) { a.store(1, Ordering::Release); }\n", "k1");
        let f2 = file("fn g(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n", "k1");
        let f3 = file("fn h(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n", "k2");
        let findings = analyze(&[f1, f2, f3]);
        assert_eq!(findings.len(), 1, "k1's mix fires; k2's all-Relaxed `a` does not");
        assert_eq!(findings[0].file, "k1/test.rs");
    }

    #[test]
    fn receiver_walks_back_over_index_and_call_groups() {
        let f = file(
            "fn f(t: &T) {\n\
             t.slots[i].swap(p, Ordering::SeqCst);\n\
             t.slots[j].load(Ordering::Relaxed);\n\
             }\n",
            "k",
        );
        let findings = analyze(&[f]);
        assert_eq!(findings.len(), 1, "slots mixes SeqCst and Relaxed through `[..]`");
        assert!(findings[0].msg.contains("`slots`"));
    }

    #[test]
    fn ordering_outside_a_call_is_not_a_use() {
        let f = file(
            "const DEFAULT: Ordering = Ordering::Relaxed;\n\
             fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n",
            "k",
        );
        assert!(analyze(&[f]).is_empty());
    }

    #[test]
    fn full_path_ordering_is_recognised() {
        let f = file(
            "fn f(a: &AtomicU64) {\n\
             a.store(1, std::sync::atomic::Ordering::Release);\n\
             a.load(std::sync::atomic::Ordering::Relaxed);\n\
             }\n",
            "k",
        );
        assert_eq!(analyze(&[f]).len(), 1);
    }
}
