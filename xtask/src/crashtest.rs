//! Crash-recovery torture harness (`cargo xtask crashtest --seeds N`).
//!
//! Per seed: build an OStore on a seeded [`SimVfs`], run a multi-client
//! workload against it, pull the plug at a seed-chosen file operation
//! (with background-writeback and torn-write simulation armed), recover,
//! and check the durability contract:
//!
//! * every transaction whose commit returned `Ok` is fully present;
//! * no effect of any other transaction survives — except that the one
//!   transaction per client whose commit *errored* (outcome unknown at
//!   the client) may be present atomically, all-or-nothing;
//! * no object outside the clients' ledgers exists (nothing resurrects);
//! * recovery is deterministic (two recoveries of copies of the same
//!   crashed image agree) and idempotent (re-opening the already-
//!   recovered store changes nothing).
//!
//! Clients work on disjoint object sets, so each client's slice of the
//! recovered store must match its own ledger exactly; lock conflicts
//! never abort a transaction, which keeps the ledger bookkeeping honest.
//!
//! With `--corrupt`, each seed additionally injects one storage fault
//! (class chosen by `seed % 3`): a **misdirected write** mid-workload, a
//! **durable bit flip** applied to one store file after the power loss,
//! or a **volatile namespace** (creates/renames lose a seeded suffix at
//! power loss unless directory-synced). The contract widens from "the
//! ledger survives" to "nothing is silently wrong": recovery must either
//! refuse the image with a typed corruption error, or open it with every
//! casualty quarantined (reads fail typed) and every readable object
//! byte-exact against a ledger image — and the recovered image must then
//! pass an offline scrub with zero unquarantined damage. The one
//! irreducible case — rot in the log's final frame, indistinguishable
//! from a crash tear — counts only if replay *reported* discarding those
//! bytes.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use labflow_storage::{
    scrub_store, ClusterHint, Engine, FaultPlan, OStore, Options, Oid, SegmentId, SimVfs,
    StorageError, StorageManager, Vfs,
};

const CLIENTS: usize = 4;
/// Snapshot-reader threads running alongside the writers. They pin
/// snapshots while the machine dies, so recovery is always exercised
/// with reader-pinned versions in flight (and with snapshots that were
/// never released, which must not matter after a reboot).
const READERS: usize = 2;
const TXNS_PER_CLIENT: usize = 48;
const CHECKPOINT_EVERY: usize = 12;
/// Window (in file operations after setup) within which the crash and
/// the transient fault land. Sized so most seeds die mid-workload and
/// the rest exercise the clean-completion path.
const CRASH_WINDOW: u64 = 400;

/// Tiny deterministic RNG (xorshift64*), one per client, so the workload
/// depends only on the seed — never on thread interleaving.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// How a client's final transaction ended.
enum LastTxn {
    /// All transactions resolved (committed, aborted, or rolled back by
    /// an error before any commit attempt): the store must show exactly
    /// the confirmed state.
    Resolved,
    /// The last commit call returned an error, so the client cannot know
    /// whether it is durable: the store may show the confirmed state or
    /// this after-image, but nothing in between.
    Unknown(HashMap<u64, Vec<u8>>),
}

/// One client's view of what it did: object payloads after the last
/// reported (`Ok`) commit, plus every oid it was ever handed.
struct Ledger {
    client: usize,
    confirmed: HashMap<u64, Vec<u8>>,
    owned_ever: Vec<u64>,
    last: LastTxn,
}

fn payload(client: usize, txn: usize, op: usize, rng: &mut Rng) -> Vec<u8> {
    let mut p = vec![client as u8, (txn & 0xff) as u8, op as u8];
    let filler = 32 + (rng.next() % 96) as usize;
    p.extend((0..filler).map(|i| (rng.next() as u8) ^ (i as u8)));
    p
}

/// One client's workload: transactions of a few allocate/update/free
/// operations over its own objects, some deliberately aborted, stopping
/// at the first error (the simulated machine is dying or dead).
fn client_loop(store: &Engine, client: usize, seed: u64) -> Ledger {
    let mut rng = Rng::new(seed.wrapping_mul(CLIENTS as u64 + 1).wrapping_add(client as u64));
    let mut ledger = Ledger {
        client,
        confirmed: HashMap::new(),
        owned_ever: Vec::new(),
        last: LastTxn::Resolved,
    };
    let seg = SegmentId((client % 4) as u8);
    for txn_no in 0..TXNS_PER_CLIENT {
        let deliberate_abort = rng.next().is_multiple_of(5) && txn_no > 0;
        let t = match store.begin() {
            Ok(t) => t,
            Err(_) => return ledger, // dying: nothing started
        };
        let mut after = ledger.confirmed.clone();
        let ops = 2 + (rng.next() % 4) as usize;
        for op_no in 0..ops {
            let live: Vec<u64> = after.keys().copied().collect();
            let choice = rng.next() % 10;
            let result = if choice < 5 || live.is_empty() {
                let data = payload(client, txn_no, op_no, &mut rng);
                store.allocate(t, seg, ClusterHint::NONE, &data).map(|oid| {
                    ledger.owned_ever.push(oid.raw());
                    after.insert(oid.raw(), data);
                })
            } else if choice < 8 {
                let oid = live[(rng.next() as usize) % live.len()];
                let data = payload(client, txn_no, op_no, &mut rng);
                store.update(t, Oid::from_raw(oid), &data).map(|()| {
                    after.insert(oid, data);
                })
            } else {
                let oid = live[(rng.next() as usize) % live.len()];
                store.free(t, Oid::from_raw(oid)).map(|()| {
                    after.remove(&oid);
                })
            };
            if result.is_err() {
                // The transaction never reached commit: whatever the
                // engine did, recovery must roll it back.
                let _ = store.abort(t);
                return ledger;
            }
        }
        if deliberate_abort {
            if store.abort(t).is_err() {
                return ledger; // still a loser: confirmed state expected
            }
            continue;
        }
        match store.commit(t) {
            Ok(()) => {
                ledger.confirmed = after;
            }
            Err(_) => {
                // The force may or may not have reached the platter.
                ledger.last = LastTxn::Unknown(after);
                return ledger;
            }
        }
        if client == 0 && txn_no % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1 {
            // Checkpoints race the crash too; a failed one (power loss
            // mid-checkpoint, or a wounded engine) is part of the test.
            let _ = store.checkpoint();
        }
    }
    ledger
}

/// One snapshot reader: repeatedly pin a snapshot, read a handful of
/// live objects through it twice (with the whole batch between the two
/// passes), and demand byte-identical answers — concurrent writers and
/// version GC must never move a pinned version. Read *errors* are
/// tolerated (the simulated machine may be dying), with one exception:
/// an object that resolved in the snapshot and then turned into
/// `UnknownObject` within the same snapshot means a pinned version was
/// reclaimed.
fn reader_loop(store: &Engine, seed: u64, stop: &AtomicBool) -> Result<(), String> {
    let mut rng = Rng::new(seed ^ 0x5eed_5eed_5eed_5eed);
    while !stop.load(Ordering::Relaxed) {
        let snap = match store.begin_snapshot() {
            Ok(s) => s,
            Err(_) => break, // dying machine: nothing left to observe
        };
        let live = store.live_oids();
        if !live.is_empty() {
            let picks: Vec<Oid> = (0..4.min(live.len()))
                .map(|_| live[(rng.next() as usize) % live.len()])
                .collect();
            let first: Vec<Option<Vec<u8>>> =
                picks.iter().map(|&oid| store.read_at(&snap, oid).ok()).collect();
            for (i, &oid) in picks.iter().enumerate() {
                if first[i].is_none() {
                    continue;
                }
                match store.read_at(&snap, oid) {
                    Ok(again) if Some(&again) == first[i].as_ref() => {}
                    Ok(_) => {
                        store.release_snapshot(snap);
                        return Err(format!(
                            "oid {} changed bytes within one pinned snapshot",
                            oid.raw()
                        ));
                    }
                    Err(StorageError::UnknownObject(_)) => {
                        store.release_snapshot(snap);
                        return Err(format!(
                            "oid {} vanished from a pinned snapshot (version reclaimed?)",
                            oid.raw()
                        ));
                    }
                    Err(_) => {} // I/O death throes: not a contract breach
                }
            }
        }
        // Half the iterations deliberately leak the snapshot: a crash
        // can always land before release, and recovery must not care.
        if rng.next().is_multiple_of(2) {
            store.release_snapshot(snap);
        }
    }
    Ok(())
}

/// Readable objects (oid → payload) plus the oids whose reads failed
/// with a *typed* corruption error (quarantined casualties).
type DumpResult = (HashMap<u64, Vec<u8>>, HashSet<u64>);

/// Read every live object out of a recovered store. Any read failure
/// that is not a typed corruption error is a harness failure.
fn dump(store: &Engine) -> Result<DumpResult, String> {
    let mut readable = HashMap::new();
    let mut damaged: HashSet<u64> = store.damaged_oids().iter().map(|o| o.raw()).collect();
    for oid in store.live_oids() {
        match store.read(oid) {
            Ok(data) => {
                readable.insert(oid.raw(), data);
            }
            Err(e) if e.is_corruption() => {
                damaged.insert(oid.raw());
            }
            Err(e) => {
                return Err(format!("live oid {} unreadable after recovery: {e}", oid.raw()))
            }
        }
    }
    Ok((readable, damaged))
}

/// Whether the recovered store is consistent with `image` for one
/// client: every object the image expects is either readable with the
/// exact payload or a typed casualty — never silently missing or
/// silently wrong — and nothing the image lacks is readable. With an
/// empty `damaged` set this degrades to exact equality on the client's
/// slice (the strict no-fault contract).
fn matches_image(
    owned: &[u64],
    image: &HashMap<u64, Vec<u8>>,
    readable: &HashMap<u64, Vec<u8>>,
    damaged: &HashSet<u64>,
) -> bool {
    for (oid, want) in image {
        match readable.get(oid) {
            Some(got) if got == want => {}
            Some(_) => return false,            // silently wrong bytes
            None if damaged.contains(oid) => {} // typed casualty
            None => return false,               // silently missing
        }
    }
    owned.iter().all(|oid| image.contains_key(oid) || !readable.contains_key(oid))
}

/// Check one client's slice of the recovered store against its ledger.
fn check_client(
    ledger: &Ledger,
    readable: &HashMap<u64, Vec<u8>>,
    damaged: &HashSet<u64>,
) -> Result<(), String> {
    if matches_image(&ledger.owned_ever, &ledger.confirmed, readable, damaged) {
        return Ok(());
    }
    if let LastTxn::Unknown(after) = &ledger.last {
        if matches_image(&ledger.owned_ever, after, readable, damaged) {
            return Ok(());
        }
        return Err(format!(
            "client {}: recovered state matches neither the confirmed image \
             ({} objects) nor the unknown-outcome image ({} objects)",
            ledger.client,
            ledger.confirmed.len(),
            after.len(),
        ));
    }
    let mut detail = String::new();
    if std::env::var_os("CRASHTEST_DEBUG").is_some() {
        for oid in &ledger.owned_ever {
            let (want, got) = (ledger.confirmed.get(oid), readable.get(oid));
            if want == got {
                continue;
            }
            match got {
                Some(data) => detail.push_str(&format!(
                    "\n  extra/changed oid {oid}: payload tag client={} txn={} op={}",
                    data.first().copied().unwrap_or(255),
                    data.get(1).copied().unwrap_or(255),
                    data.get(2).copied().unwrap_or(255),
                )),
                None if damaged.contains(oid) => {}
                None => detail.push_str(&format!("\n  missing oid {oid}")),
            }
        }
    }
    Err(format!(
        "client {}: recovered state diverges from the confirmed image \
         (expected {} objects, {} readable, {} typed casualties){detail}",
        ledger.client,
        ledger.confirmed.len(),
        readable.len(),
        damaged.len(),
    ))
}

fn opts() -> Options {
    Options {
        // Small pool: evictions (and dirty-page steals) happen a lot.
        buffer_pages: 24,
        sync_commit: true,
        lock_timeout: Duration::from_millis(200),
        group_commit_window: None,
    }
}

/// Diagnostic aid: print the durable log of a failing seed.
fn dump_wal(sim: &SimVfs, dir: &Path) {
    use labflow_storage::wal_testing::{Wal, WalRecord};
    let vfs: Arc<dyn Vfs> = Arc::new(sim.clone_durable());
    if let Ok(replayed) = Wal::replay(&vfs, &dir.join("wal.log")) {
        for r in &replayed.records {
            let line = match r {
                WalRecord::Reset(e) => format!("Reset({e})"),
                WalRecord::Begin(t) => format!("Begin({t})"),
                WalRecord::Commit(t) => format!("Commit({t})"),
                WalRecord::Abort(t) => format!("Abort({t})"),
                WalRecord::Alloc { txn, oid, .. } => format!("Alloc(txn {txn}, oid {})", oid.raw()),
                WalRecord::Update { txn, oid, .. } => {
                    format!("Update(txn {txn}, oid {})", oid.raw())
                }
                WalRecord::Free { txn, oid, .. } => format!("Free(txn {txn}, oid {})", oid.raw()),
            };
            eprintln!("  wal: {line}");
        }
    }
}

/// What one finished seed looked like.
struct SeedOutcome {
    /// The planned crash fired mid-workload.
    crashed: bool,
    /// Corrupt mode only: recovery (or replay of the pre-recovery
    /// image) refused the damage with a typed report rather than
    /// repairing around it — detection without repair, a legitimate
    /// outcome that still counts as "never silently absorbed".
    detected: bool,
}

/// Replay the pre-recovery durable log and report whether it *declared*
/// a discarded tail. Rot in the log's final frame is indistinguishable
/// from a crash tear, so losing those bytes is acceptable exactly when
/// replay reports the loss instead of absorbing it.
fn wal_reported_truncation(sim: &SimVfs, dir: &Path) -> bool {
    use labflow_storage::wal_testing::Wal;
    let vfs: Arc<dyn Vfs> = Arc::new(sim.clone_durable());
    Wal::replay(&vfs, &dir.join("wal.log")).is_ok_and(|r| r.bytes_truncated > 0)
}

/// Run one seed end to end. Returns how it went, or a human-readable
/// violation if the durability contract broke.
fn run_seed(seed: u64, corrupt: bool) -> Result<SeedOutcome, String> {
    let sim = SimVfs::new(seed);
    let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
    let dir = PathBuf::from("/crash/store");
    let store = OStore::create_with(vfs, &dir, opts())
        .map_err(|e| format!("create failed before any fault was armed: {e}"))?;

    // Arm the plug-pull (and one transient error) somewhere in the
    // workload's operation stream, plus — in corrupt mode — one wider
    // fault whose class rotates with the seed.
    let mut rng = Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let ops0 = sim.op_count();
    let mut plan = FaultPlan {
        crash_at_op: Some(ops0 + rng.next() % CRASH_WINDOW),
        fail_ops: vec![ops0 + rng.next() % CRASH_WINDOW],
        writeback: true,
        ..FaultPlan::default()
    };
    let class = if corrupt { Some(seed % 3) } else { None };
    match class {
        Some(0) => plan.misdirect_ops = vec![ops0 + rng.next() % CRASH_WINDOW],
        Some(2) => plan.volatile_namespace = true,
        _ => {}
    }
    sim.set_plan(plan);

    let stop_readers = AtomicBool::new(false);
    let (ledgers, reader_results): (Vec<Ledger>, Vec<Result<(), String>>) =
        std::thread::scope(|scope| {
            let store = &store;
            let stop = &stop_readers;
            let readers: Vec<_> = (0..READERS)
                .map(|r| {
                    scope.spawn(move || reader_loop(store, seed.wrapping_add(r as u64), stop))
                })
                .collect();
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| scope.spawn(move || client_loop(store, c, seed)))
                .collect();
            let ledgers = handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| panic!("client thread panicked")))
                .collect();
            stop.store(true, Ordering::Relaxed);
            let reader_results = readers
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| panic!("reader thread panicked")))
                .collect();
            (ledgers, reader_results)
        });
    drop(store);
    for r in reader_results {
        r.map_err(|why| format!("snapshot reader: {why}"))?;
    }

    // Pull the plug (a no-op reboot if the workload outran the window),
    // then recover from copies of the same dead disk.
    let crashed = sim.crashed();
    if std::env::var_os("CRASHTEST_DEBUG").is_some() {
        eprintln!("  seed {seed}: {} file ops used, crashed={crashed}", sim.op_count() - ops0);
    }
    sim.power_loss();

    // Class 1: at-rest rot — flip one durable bit in a seed-chosen
    // store file after the machine is already dead.
    let mut rot_target: Option<&str> = None;
    if class == Some(1) {
        let targets = ["data.pg", "store.meta", "wal.log"];
        let t = targets[(rng.next() as usize) % targets.len()];
        if sim.flip_durable_bit(&dir.join(t)).is_some() {
            rot_target = Some(t);
        }
    }

    let image = sim.clone_durable();
    let twin = sim.clone_durable();

    let (readable, damaged) = {
        let vfs: Arc<dyn Vfs> = Arc::new(image.clone());
        match OStore::open_with(vfs, &dir, opts()) {
            Ok(store) => dump(&store)?,
            Err(e) if corrupt && e.is_corruption() => {
                return Ok(SeedOutcome { crashed, detected: true });
            }
            Err(e) => return Err(format!("recovery failed: {e}")),
        }
    };
    if !corrupt && !damaged.is_empty() {
        return Err(format!(
            "{} objects quarantined after recovery with no fault injected",
            damaged.len()
        ));
    }
    for ledger in &ledgers {
        if let Err(why) = check_client(ledger, &readable, &damaged) {
            if rot_target == Some("wal.log") && wal_reported_truncation(&sim, &dir) {
                // The flip landed where only a reported-and-discarded
                // log tail explains the divergence (see module docs).
                return Ok(SeedOutcome { crashed, detected: true });
            }
            if std::env::var_os("CRASHTEST_DEBUG").is_some() {
                dump_wal(&sim, &dir);
            }
            return Err(why);
        }
    }
    let known: HashSet<u64> = ledgers.iter().flat_map(|l| l.owned_ever.iter().copied()).collect();
    for oid in readable.keys() {
        if !known.contains(oid) {
            return Err(format!("object {oid} exists after recovery but no client made it"));
        }
    }

    // Determinism: an independent recovery of the same crashed image
    // must land on the same logical state — same readable bytes, same
    // typed casualties.
    {
        let vfs: Arc<dyn Vfs> = Arc::new(twin);
        let store = OStore::open_with(vfs, &dir, opts())
            .map_err(|e| format!("twin recovery failed: {e}"))?;
        if dump(&store)? != (readable.clone(), damaged.clone()) {
            return Err("recovery is nondeterministic: twin image disagrees".into());
        }
    }
    // Idempotence: the recovered-and-checkpointed store reopens to the
    // same state.
    {
        let vfs: Arc<dyn Vfs> = Arc::new(image.clone());
        let store = OStore::open_with(vfs, &dir, opts())
            .map_err(|e| format!("re-recovery failed: {e}"))?;
        if dump(&store)? != (readable, damaged) {
            return Err("recovery is not idempotent: second open diverges".into());
        }
    }
    // The recovered image must audit clean: every surviving byte
    // verifiable, every casualty quarantined — nothing silently wrong.
    {
        let vfs: Arc<dyn Vfs> = Arc::new(image);
        let report = scrub_store(&vfs, &dir).map_err(|e| format!("post-recovery scrub: {e}"))?;
        if !report.clean() {
            return Err(format!(
                "post-recovery scrub found unquarantined damage: pages {:?}",
                report.corrupt
            ));
        }
    }
    Ok(SeedOutcome { crashed, detected: false })
}

/// Entry point: runs `seeds` seeds, printing progress; returns the
/// number of failing seeds.
pub fn run(first_seed: u64, seeds: u64, corrupt: bool) -> u64 {
    let mut failures = 0;
    let mut crashed = 0;
    let mut detected = 0;
    for seed in first_seed..first_seed + seeds {
        match run_seed(seed, corrupt) {
            Ok(outcome) => {
                crashed += u64::from(outcome.crashed);
                detected += u64::from(outcome.detected);
            }
            Err(why) => {
                failures += 1;
                eprintln!("crashtest: seed {seed} FAILED: {why}");
            }
        }
    }
    if failures == 0 && corrupt {
        println!(
            "crashtest --corrupt: {seeds} seeds passed ({crashed} died mid-workload; \
             {detected} refused the image with a typed report, \
             {} recovered and scrubbed clean)",
            seeds - detected
        );
    } else if failures == 0 {
        println!(
            "crashtest: {seeds} seeds passed \
             ({crashed} died mid-workload, {} outran the crash window)",
            seeds - crashed
        );
    }
    failures
}
