//! Crash-recovery torture harness (`cargo xtask crashtest --seeds N`).
//!
//! Per seed: build an OStore on a seeded [`SimVfs`], run a multi-client
//! workload against it, pull the plug at a seed-chosen file operation
//! (with background-writeback and torn-write simulation armed), recover,
//! and check the durability contract:
//!
//! * every transaction whose commit returned `Ok` is fully present;
//! * no effect of any other transaction survives — except that the one
//!   transaction per client whose commit *errored* (outcome unknown at
//!   the client) may be present atomically, all-or-nothing;
//! * no object outside the clients' ledgers exists (nothing resurrects);
//! * recovery is deterministic (two recoveries of copies of the same
//!   crashed image agree) and idempotent (re-opening the already-
//!   recovered store changes nothing).
//!
//! Clients work on disjoint object sets, so each client's slice of the
//! recovered store must match its own ledger exactly; lock conflicts
//! never abort a transaction, which keeps the ledger bookkeeping honest.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use labflow_storage::{
    ClusterHint, Engine, FaultPlan, OStore, Options, Oid, SegmentId, SimVfs, StorageManager, Vfs,
};

const CLIENTS: usize = 4;
const TXNS_PER_CLIENT: usize = 48;
const CHECKPOINT_EVERY: usize = 12;
/// Window (in file operations after setup) within which the crash and
/// the transient fault land. Sized so most seeds die mid-workload and
/// the rest exercise the clean-completion path.
const CRASH_WINDOW: u64 = 400;

/// Tiny deterministic RNG (xorshift64*), one per client, so the workload
/// depends only on the seed — never on thread interleaving.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// How a client's final transaction ended.
enum LastTxn {
    /// All transactions resolved (committed, aborted, or rolled back by
    /// an error before any commit attempt): the store must show exactly
    /// the confirmed state.
    Resolved,
    /// The last commit call returned an error, so the client cannot know
    /// whether it is durable: the store may show the confirmed state or
    /// this after-image, but nothing in between.
    Unknown(HashMap<u64, Vec<u8>>),
}

/// One client's view of what it did: object payloads after the last
/// reported (`Ok`) commit, plus every oid it was ever handed.
struct Ledger {
    client: usize,
    confirmed: HashMap<u64, Vec<u8>>,
    owned_ever: Vec<u64>,
    last: LastTxn,
}

fn payload(client: usize, txn: usize, op: usize, rng: &mut Rng) -> Vec<u8> {
    let mut p = vec![client as u8, (txn & 0xff) as u8, op as u8];
    let filler = 32 + (rng.next() % 96) as usize;
    p.extend((0..filler).map(|i| (rng.next() as u8) ^ (i as u8)));
    p
}

/// One client's workload: transactions of a few allocate/update/free
/// operations over its own objects, some deliberately aborted, stopping
/// at the first error (the simulated machine is dying or dead).
fn client_loop(store: &Engine, client: usize, seed: u64) -> Ledger {
    let mut rng = Rng::new(seed.wrapping_mul(CLIENTS as u64 + 1).wrapping_add(client as u64));
    let mut ledger = Ledger {
        client,
        confirmed: HashMap::new(),
        owned_ever: Vec::new(),
        last: LastTxn::Resolved,
    };
    let seg = SegmentId((client % 4) as u8);
    for txn_no in 0..TXNS_PER_CLIENT {
        let deliberate_abort = rng.next().is_multiple_of(5) && txn_no > 0;
        let t = match store.begin() {
            Ok(t) => t,
            Err(_) => return ledger, // dying: nothing started
        };
        let mut after = ledger.confirmed.clone();
        let ops = 2 + (rng.next() % 4) as usize;
        for op_no in 0..ops {
            let live: Vec<u64> = after.keys().copied().collect();
            let choice = rng.next() % 10;
            let result = if choice < 5 || live.is_empty() {
                let data = payload(client, txn_no, op_no, &mut rng);
                store.allocate(t, seg, ClusterHint::NONE, &data).map(|oid| {
                    ledger.owned_ever.push(oid.raw());
                    after.insert(oid.raw(), data);
                })
            } else if choice < 8 {
                let oid = live[(rng.next() as usize) % live.len()];
                let data = payload(client, txn_no, op_no, &mut rng);
                store.update(t, Oid::from_raw(oid), &data).map(|()| {
                    after.insert(oid, data);
                })
            } else {
                let oid = live[(rng.next() as usize) % live.len()];
                store.free(t, Oid::from_raw(oid)).map(|()| {
                    after.remove(&oid);
                })
            };
            if result.is_err() {
                // The transaction never reached commit: whatever the
                // engine did, recovery must roll it back.
                let _ = store.abort(t);
                return ledger;
            }
        }
        if deliberate_abort {
            if store.abort(t).is_err() {
                return ledger; // still a loser: confirmed state expected
            }
            continue;
        }
        match store.commit(t) {
            Ok(()) => {
                ledger.confirmed = after;
            }
            Err(_) => {
                // The force may or may not have reached the platter.
                ledger.last = LastTxn::Unknown(after);
                return ledger;
            }
        }
        if client == 0 && txn_no % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1 {
            // Checkpoints race the crash too; a failed one (power loss
            // mid-checkpoint, or a wounded engine) is part of the test.
            let _ = store.checkpoint();
        }
    }
    ledger
}

/// Read every live object out of a recovered store as an oid → payload
/// map.
fn dump(store: &Engine) -> Result<HashMap<u64, Vec<u8>>, String> {
    let mut out = HashMap::new();
    for oid in store.live_oids() {
        let data = store
            .read(oid)
            .map_err(|e| format!("live oid {} unreadable after recovery: {e}", oid.raw()))?;
        out.insert(oid.raw(), data);
    }
    Ok(out)
}

/// Check one client's slice of the recovered store against its ledger.
fn check_client(ledger: &Ledger, recovered: &HashMap<u64, Vec<u8>>) -> Result<(), String> {
    let mine: HashMap<u64, Vec<u8>> = ledger
        .owned_ever
        .iter()
        .filter_map(|oid| recovered.get(oid).map(|d| (*oid, d.clone())))
        .collect();
    if mine == ledger.confirmed {
        return Ok(());
    }
    if let LastTxn::Unknown(after) = &ledger.last {
        if mine == *after {
            return Ok(());
        }
        return Err(format!(
            "client {}: recovered state matches neither the confirmed image \
             ({} objects) nor the unknown-outcome image ({} objects); got {} objects",
            ledger.client,
            ledger.confirmed.len(),
            after.len(),
            mine.len()
        ));
    }
    let mut detail = String::new();
    if std::env::var_os("CRASHTEST_DEBUG").is_some() {
        for (oid, data) in &mine {
            if ledger.confirmed.get(oid) != Some(data) {
                detail.push_str(&format!(
                    "\n  extra/changed oid {oid}: payload tag client={} txn={} op={}",
                    data.first().copied().unwrap_or(255),
                    data.get(1).copied().unwrap_or(255),
                    data.get(2).copied().unwrap_or(255),
                ));
            }
        }
        for oid in ledger.confirmed.keys() {
            if !mine.contains_key(oid) {
                detail.push_str(&format!("\n  missing oid {oid}"));
            }
        }
    }
    Err(format!(
        "client {}: recovered state diverges from the confirmed image \
         (expected {} objects, got {}){detail}",
        ledger.client,
        ledger.confirmed.len(),
        mine.len()
    ))
}

fn opts() -> Options {
    Options {
        // Small pool: evictions (and dirty-page steals) happen a lot.
        buffer_pages: 24,
        sync_commit: true,
        lock_timeout: Duration::from_millis(200),
        group_commit_window: None,
    }
}

/// Diagnostic aid: print the durable log of a failing seed.
fn dump_wal(sim: &SimVfs, dir: &Path) {
    use labflow_storage::wal_testing::{Wal, WalRecord};
    let vfs: Arc<dyn Vfs> = Arc::new(sim.clone_durable());
    if let Ok(replayed) = Wal::replay(&vfs, &dir.join("wal.log")) {
        for r in &replayed.records {
            let line = match r {
                WalRecord::Reset(e) => format!("Reset({e})"),
                WalRecord::Begin(t) => format!("Begin({t})"),
                WalRecord::Commit(t) => format!("Commit({t})"),
                WalRecord::Abort(t) => format!("Abort({t})"),
                WalRecord::Alloc { txn, oid, .. } => format!("Alloc(txn {txn}, oid {})", oid.raw()),
                WalRecord::Update { txn, oid, .. } => {
                    format!("Update(txn {txn}, oid {})", oid.raw())
                }
                WalRecord::Free { txn, oid, .. } => format!("Free(txn {txn}, oid {})", oid.raw()),
            };
            eprintln!("  wal: {line}");
        }
    }
}

/// Run one seed end to end. Returns whether the planned crash actually
/// fired mid-workload, or a human-readable violation if the durability
/// contract broke.
fn run_seed(seed: u64) -> Result<bool, String> {
    let sim = SimVfs::new(seed);
    let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
    let dir = PathBuf::from("/crash/store");
    let store = OStore::create_with(vfs, &dir, opts())
        .map_err(|e| format!("create failed before any fault was armed: {e}"))?;

    // Arm the plug-pull (and one transient error) somewhere in the
    // workload's operation stream.
    let mut rng = Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let ops0 = sim.op_count();
    sim.set_plan(FaultPlan {
        crash_at_op: Some(ops0 + rng.next() % CRASH_WINDOW),
        fail_ops: vec![ops0 + rng.next() % CRASH_WINDOW],
        writeback: true,
    });

    let ledgers: Vec<Ledger> = std::thread::scope(|scope| {
        let store = &store;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| scope.spawn(move || client_loop(store, c, seed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| panic!("client thread panicked")))
            .collect()
    });
    drop(store);

    // Pull the plug (a no-op reboot if the workload outran the window),
    // then recover from copies of the same dead disk.
    let crashed = sim.crashed();
    if std::env::var_os("CRASHTEST_DEBUG").is_some() {
        eprintln!("  seed {seed}: {} file ops used, crashed={crashed}", sim.op_count() - ops0);
    }
    sim.power_loss();
    let image = sim.clone_durable();
    let twin = sim.clone_durable();

    let recovered = {
        let vfs: Arc<dyn Vfs> = Arc::new(image.clone());
        let store = OStore::open_with(vfs, &dir, opts())
            .map_err(|e| format!("recovery failed: {e}"))?;
        dump(&store)?
    };
    for ledger in &ledgers {
        if let Err(why) = check_client(ledger, &recovered) {
            if std::env::var_os("CRASHTEST_DEBUG").is_some() {
                dump_wal(&sim, &dir);
            }
            return Err(why);
        }
    }
    let known: std::collections::HashSet<u64> =
        ledgers.iter().flat_map(|l| l.owned_ever.iter().copied()).collect();
    for oid in recovered.keys() {
        if !known.contains(oid) {
            return Err(format!("object {oid} exists after recovery but no client made it"));
        }
    }

    // Determinism: an independent recovery of the same crashed image
    // must land on the same logical state.
    {
        let vfs: Arc<dyn Vfs> = Arc::new(twin);
        let store = OStore::open_with(vfs, &dir, opts())
            .map_err(|e| format!("twin recovery failed: {e}"))?;
        if dump(&store)? != recovered {
            return Err("recovery is nondeterministic: twin image disagrees".into());
        }
    }
    // Idempotence: the recovered-and-checkpointed store reopens to the
    // same state.
    {
        let vfs: Arc<dyn Vfs> = Arc::new(image);
        let store = OStore::open_with(vfs, &dir, opts())
            .map_err(|e| format!("re-recovery failed: {e}"))?;
        if dump(&store)? != recovered {
            return Err("recovery is not idempotent: second open diverges".into());
        }
    }
    Ok(crashed)
}

/// Entry point: runs `seeds` seeds, printing progress; returns the
/// number of failing seeds.
pub fn run(first_seed: u64, seeds: u64) -> u64 {
    let mut failures = 0;
    let mut crashed = 0;
    for seed in first_seed..first_seed + seeds {
        match run_seed(seed) {
            Ok(true) => crashed += 1,
            Ok(false) => {}
            Err(why) => {
                failures += 1;
                eprintln!("crashtest: seed {seed} FAILED: {why}");
            }
        }
    }
    if failures == 0 {
        println!(
            "crashtest: {seeds} seeds passed \
             ({crashed} died mid-workload, {} outran the crash window)",
            seeds - failures - crashed
        );
    }
    failures
}
