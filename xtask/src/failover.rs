//! Replication failover torture harness (`cargo xtask failover --seeds N`).
//!
//! Per seed: a primary OStore and two follower stores, each on its own
//! seeded [`SimVfs`] (three independent machines). A single-writer
//! workload commits transactions on the primary with `sync_commit`;
//! between transactions, the WAL tail is shipped to each follower with
//! seed-chosen probability, so the followers lag by different amounts.
//! Along the way the harness bit-flips some shipped chunks and demands
//! the typed `Corrupt` refusal followed by a clean re-request — the
//! self-healing path. The primary's plug is pulled at a seed-chosen
//! file operation (so some seeds die mid-group-commit, some between
//! transactions, and some outrun the window entirely); then:
//!
//! * the follower with the highest durable offset is **promoted**
//!   (epoch raised past anything the dead primary could stamp);
//! * every commit acked at quorum 1 — i.e. shipped to at least one
//!   follower — must be present **byte-exact** on the promoted store;
//! * the promoted store's durable image must agree with its live state
//!   (a reboot of the follower loses nothing it acked) and pass an
//!   offline scrub with zero unquarantined damage;
//! * the promoted store must accept local writes;
//! * the dead primary is rebooted as a **zombie** and its log is offered
//!   to the surviving follower, whose raised fence must refuse it with
//!   the typed `Fenced` error — never replay it.
//!
//! The workload never checkpoints the primary: a checkpoint truncates
//! the WAL and rewinds the stream (typed `Rewound`, follower re-seeds),
//! which is the pipeline's documented limitation, not a torture target.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use labflow_repl::{Follower, ReplError};
use labflow_storage::{
    scrub_store, ClusterHint, FaultPlan, Engine, OStore, Options, Oid, SegmentId, SimVfs, StorageManager,
    Vfs,
};

const TXNS: usize = 48;
/// Window (in primary file operations after setup) within which the
/// plug-pull lands. Sized so most seeds die mid-workload.
const CRASH_WINDOW: u64 = 260;
const CHUNK_CAP: usize = 1 << 14;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// One follower "machine": its own simulated disk, the store on it, and
/// the replication wrapper.
struct Node {
    sim: SimVfs,
    dir: PathBuf,
    store: Arc<Engine>,
    follower: Follower,
}

impl Node {
    fn create(seed: u64, from: u64) -> Result<Node, String> {
        let sim = SimVfs::new(seed);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let dir = PathBuf::from("/repl/follower");
        let store = Arc::new(
            OStore::create_with(vfs, &dir, opts())
                .map_err(|e| format!("create follower store: {e}"))?,
        );
        let as_manager: Arc<dyn StorageManager> = Arc::clone(&store) as _;
        Ok(Node { sim, dir, store, follower: Follower::new(as_manager, from) })
    }
}

fn opts() -> Options {
    Options {
        buffer_pages: 24,
        sync_commit: true,
        lock_timeout: Duration::from_millis(200),
        group_commit_window: None,
    }
}

/// Counters for the end-of-run summary.
#[derive(Default)]
struct Tally {
    crashed: u64,
    healed: u64,
    fenced: u64,
}

/// Ship the primary's WAL tail to `node`, optionally bit-flipping the
/// first chunk to exercise the refuse-then-heal path. Returns false if
/// the primary died mid-stream (its reads fail once crashed).
fn ship(
    pri: &Engine,
    node: &Node,
    corrupt_first: bool,
    rng: &mut Rng,
    tally: &mut Tally,
) -> Result<bool, String> {
    let epoch = pri.store_epoch();
    let mut first = true;
    loop {
        let from = node.follower.durable_lsn();
        let chunk = match pri.wal_stream_from(from, CHUNK_CAP) {
            Ok(c) => c,
            Err(_) => return Ok(false), // primary dead (or dying)
        };
        if chunk.bytes.is_empty() {
            return Ok(true);
        }
        if corrupt_first && first {
            first = false;
            let mut torn = chunk.bytes.clone();
            let at = (rng.next() as usize) % torn.len();
            if let Some(b) = torn.get_mut(at) {
                *b ^= 1 << (rng.next() % 8);
            }
            match node.follower.ingest(epoch, chunk.start, &torn) {
                Err(ReplError::Corrupt(_)) => {}
                Ok(_) => {
                    // A flip can land in a payload byte the frame CRC
                    // still catches — it cannot land anywhere a CRC
                    // doesn't cover, so Ok means silent acceptance.
                    return Err("bit-flipped chunk was applied without a typed refusal".into());
                }
                Err(other) => {
                    return Err(format!("bit-flipped chunk: expected Corrupt, got {other}"))
                }
            }
            if node.follower.durable_lsn() != from {
                return Err("refused chunk advanced the stream position".into());
            }
            tally.healed += 1;
            // Fall through: re-request (same offset) with intact bytes.
        }
        node.follower
            .ingest(epoch, chunk.start, &chunk.bytes)
            .map_err(|e| format!("intact chunk refused: {e}"))?;
    }
}

/// Read every live object out of a store.
fn dump(store: &Engine) -> Result<HashMap<u64, Vec<u8>>, String> {
    let mut out = HashMap::new();
    for oid in store.live_oids() {
        let data = store
            .read(oid)
            .map_err(|e| format!("live oid {} unreadable: {e}", oid.raw()))?;
        out.insert(oid.raw(), data);
    }
    Ok(out)
}

fn payload(txn: usize, op: usize, rng: &mut Rng) -> Vec<u8> {
    let mut p = vec![(txn & 0xff) as u8, op as u8];
    let filler = 16 + (rng.next() % 80) as usize;
    p.extend((0..filler).map(|i| (rng.next() as u8) ^ (i as u8)));
    p
}

/// Run one seed end to end; `Err` is a human-readable contract breach.
fn run_seed(seed: u64, tally: &mut Tally) -> Result<(), String> {
    let pri_sim = SimVfs::new(seed);
    let pri_vfs: Arc<dyn Vfs> = Arc::new(pri_sim.clone());
    let pri_dir = PathBuf::from("/repl/primary");
    let pri = OStore::create_with(pri_vfs, &pri_dir, opts())
        .map_err(|e| format!("create primary: {e}"))?;
    let from = pri
        .replication_lsn()
        .map_err(|e| format!("primary replication_lsn: {e}"))?;

    let nodes = [Node::create(seed ^ 0xf01d, from)?, Node::create(seed ^ 0xf11e, from)?];

    // Arm the plug-pull on the PRIMARY only; the followers' disks stay
    // healthy (follower crash-durability is covered by the storage
    // crate's replication tests).
    let mut rng = Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let ops0 = pri_sim.op_count();
    pri_sim.set_plan(FaultPlan {
        crash_at_op: Some(ops0 + rng.next() % CRASH_WINDOW),
        writeback: true,
        ..FaultPlan::default()
    });

    // Single-writer workload. After each commit, record the flushed
    // offset (the commit is durable below it, sync_commit forces the
    // log) and the full expected object state, then ship to each
    // follower with seeded probability so their lags diverge.
    let seg = SegmentId(0);
    let mut confirmed: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut commits: Vec<(u64, HashMap<u64, Vec<u8>>)> = Vec::new();
    let mut corrupt_budget = 2u32; // seeded chunk damage, at most twice a seed
    'workload: for txn_no in 0..TXNS {
        let t = match pri.begin() {
            Ok(t) => t,
            Err(_) => break 'workload, // dying
        };
        let mut after = confirmed.clone();
        let ops = 2 + (rng.next() % 4) as usize;
        for op_no in 0..ops {
            let live: Vec<u64> = after.keys().copied().collect();
            let choice = rng.next() % 10;
            let result = if choice < 6 || live.is_empty() {
                let data = payload(txn_no, op_no, &mut rng);
                pri.allocate(t, seg, ClusterHint::NONE, &data).map(|oid| {
                    after.insert(oid.raw(), data);
                })
            } else if choice < 8 {
                let oid = live[(rng.next() as usize) % live.len()];
                let data = payload(txn_no, op_no, &mut rng);
                pri.update(t, Oid::from_raw(oid), &data).map(|()| {
                    after.insert(oid, data);
                })
            } else {
                let oid = live[(rng.next() as usize) % live.len()];
                pri.free(t, Oid::from_raw(oid)).map(|()| {
                    after.remove(&oid);
                })
            };
            if result.is_err() {
                let _ = pri.abort(t);
                break 'workload;
            }
        }
        if rng.next().is_multiple_of(6) && txn_no > 0 {
            if pri.abort(t).is_err() {
                break 'workload;
            }
            continue;
        }
        match pri.commit(t) {
            Ok(()) => {
                confirmed = after;
                let lsn = match pri.replication_lsn() {
                    Ok(l) => l,
                    Err(_) => break 'workload,
                };
                commits.push((lsn, confirmed.clone()));
            }
            Err(_) => break 'workload, // mid-group-commit death: outcome unknown
        }
        for node in &nodes {
            if rng.next() % 10 < 7 {
                let corrupt = corrupt_budget > 0 && rng.next().is_multiple_of(5);
                if corrupt {
                    corrupt_budget -= 1;
                }
                if !ship(&pri, node, corrupt, &mut rng, tally)? {
                    break 'workload;
                }
            }
        }
    }
    tally.crashed += u64::from(pri_sim.crashed());
    let old_epoch = pri.store_epoch();
    drop(pri);

    // Promote the follower with the highest durable offset; quorum 1
    // means every commit *either* follower acked must survive, and the
    // max-offset follower dominates: its log position covers them all.
    let (winner, survivor) = if nodes[0].follower.durable_lsn() >= nodes[1].follower.durable_lsn()
    {
        (&nodes[0], &nodes[1])
    } else {
        (&nodes[1], &nodes[0])
    };
    let cut = winner.follower.durable_lsn();
    let acked: Vec<&(u64, HashMap<u64, Vec<u8>>)> =
        commits.iter().filter(|(lsn, _)| *lsn <= cut).collect();
    let expected: HashMap<u64, Vec<u8>> =
        acked.last().map(|(_, state)| state.clone()).unwrap_or_default();

    // Before promotion: the winner's live state must hold every
    // quorum-acked commit byte-exact...
    let live = dump(&winner.store)?;
    if live != expected {
        return Err(format!(
            "promoted follower diverges from the acked prefix: {} acked commits, \
             expected {} objects, found {}",
            acked.len(),
            expected.len(),
            live.len()
        ));
    }
    // ...and its DURABLE image must agree with its live state: a
    // follower reboot loses nothing it acked. Zero divergence, then a
    // clean scrub.
    {
        let twin_vfs: Arc<dyn Vfs> = Arc::new(winner.sim.clone_durable());
        let twin = OStore::open_with(Arc::clone(&twin_vfs), &winner.dir, opts())
            .map_err(|e| format!("durable twin of the follower failed to open: {e}"))?;
        let twin_state = dump(&twin)?;
        if twin_state != live {
            return Err(format!(
                "follower durable twin diverges from live state \
                 ({} live objects, {} durable)",
                live.len(),
                twin_state.len()
            ));
        }
        drop(twin);
        let report = scrub_store(&twin_vfs, &winner.dir)
            .map_err(|e| format!("follower scrub: {e}"))?;
        if !report.clean() {
            return Err(format!(
                "follower scrub found unquarantined damage: pages {:?}",
                report.corrupt
            ));
        }
    }

    // Promote, fence the survivor, and confirm the winner takes writes.
    let new_epoch = winner
        .follower
        .promote()
        .map_err(|e| format!("promotion failed: {e}"))?;
    if new_epoch <= old_epoch {
        return Err(format!(
            "promotion epoch {new_epoch} does not dominate the dead primary's {old_epoch}"
        ));
    }
    survivor.follower.raise_fence(new_epoch);
    {
        let t = winner.store.begin().map_err(|e| format!("post-promotion begin: {e}"))?;
        winner
            .store
            .allocate(t, seg, ClusterHint::NONE, b"promoted")
            .map_err(|e| format!("post-promotion allocate: {e}"))?;
        winner.store.commit(t).map_err(|e| format!("post-promotion commit: {e}"))?;
    }

    // Zombie: reboot the dead primary and offer its log (stamped with
    // its pre-promotion epoch lineage) to the fenced survivor.
    pri_sim.power_loss();
    let zombie_vfs: Arc<dyn Vfs> = Arc::new(pri_sim.clone());
    let zombie = OStore::open_with(zombie_vfs, &pri_dir, opts())
        .map_err(|e| format!("zombie reboot failed: {e}"))?;
    let zt = zombie.begin().map_err(|e| format!("zombie begin: {e}"))?;
    zombie
        .allocate(zt, seg, ClusterHint::NONE, b"zombie write")
        .map_err(|e| format!("zombie allocate: {e}"))?;
    zombie.commit(zt).map_err(|e| format!("zombie commit: {e}"))?;
    let zombie_epoch = zombie.store_epoch();
    if zombie_epoch >= new_epoch {
        return Err(format!(
            "zombie epoch {zombie_epoch} caught up with the promotion epoch {new_epoch}; \
             the fence margin is too small"
        ));
    }
    let chunk = zombie
        .wal_stream_from(0, CHUNK_CAP)
        .map_err(|e| format!("zombie stream: {e}"))?;
    match survivor.follower.ingest(zombie_epoch, chunk.start, &chunk.bytes) {
        Err(ReplError::Fenced { got, fence }) => {
            if got != zombie_epoch || fence < new_epoch {
                return Err(format!(
                    "fence refusal carries wrong epochs: got {got}, fence {fence}"
                ));
            }
            tally.fenced += 1;
        }
        Ok(_) => return Err("survivor replayed a fenced zombie's log".into()),
        Err(other) => {
            return Err(format!("zombie chunk: expected the typed Fenced refusal, got {other}"))
        }
    }
    Ok(())
}

/// Entry point: runs `seeds` seeds; returns the number of failures.
pub fn run(first_seed: u64, seeds: u64) -> u64 {
    let mut failures = 0;
    let mut tally = Tally::default();
    for seed in first_seed..first_seed + seeds {
        if let Err(why) = run_seed(seed, &mut tally) {
            failures += 1;
            eprintln!("failover: seed {seed} FAILED: {why}");
        }
    }
    if failures == 0 {
        println!(
            "failover: {seeds} seeds passed ({} primaries died mid-workload, \
             {} corrupt chunks refused and healed, {} zombie logs fenced)",
            tally.crashed, tally.healed, tally.fenced
        );
    }
    failures
}
