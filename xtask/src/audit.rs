//! Allow-marker audit.
//!
//! `// analyzer: allow(kind, "reason")` markers are the analyzer's
//! escape hatch, so they get their own pass:
//!
//! * **malformed**: a marker missing its closing paren, naming no
//!   kind, or carrying no quoted justification. These silently fail to
//!   waive anything (`lexer::allowed` ignores them), which surfaces as
//!   a confusing downstream finding — flag the marker itself instead.
//! * **unknown kind**: not one of the kinds a pass actually consults.
//!   Usually a typo (`allow(panics, ..)`), which also silently waives
//!   nothing.
//! * **stale**: a well-formed marker with no waivable construct on its
//!   own line or the next — the code it excused was refactored away
//!   and the marker (plus its justification) now misleads readers.
//!   Detection is token-based per kind (an `unsafe` marker wants an
//!   `unsafe` token nearby, an `ordering` marker a `Relaxed`, ..); a
//!   marker whose two lines carry no tokens at all (e.g. inside a
//!   stripped `#[cfg(test)]` region) is skipped, not flagged.
//!
//! The pass also prints a per-crate marker census to stderr, so a
//! review can see at a glance where the waivers concentrate.

use std::collections::HashMap;

use crate::ranks;
use crate::{Finding, SourceFile};

/// Every kind some pass actually consults via `lexer::allowed`.
const KNOWN_KINDS: &[&str] =
    &["panic", "index", "blocking", "lock_order", "ordering", "unsafe"];

/// Idents whose presence near a marker of the given kind shows the
/// marker still waives something.
fn triggers(kind: &str) -> &'static [&'static str] {
    match kind {
        "panic" => &["unwrap", "expect", "panic", "unreachable", "todo", "unimplemented"],
        "unsafe" => &["unsafe"],
        "ordering" => &["Relaxed"],
        "blocking" => ranks::BLOCKING_FNS,
        // Acquisition shapes are varied (helpers, receivers, tokens);
        // accept any lock-ish call.
        "lock_order" => &["ranked", "acquire", "lock", "read", "write"],
        _ => &[],
    }
}

pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // crate -> kind -> count, for the census.
    let mut census: HashMap<&str, HashMap<String, u32>> = HashMap::new();

    for file in files {
        let mut lines: Vec<&u32> = file.comments.keys().collect();
        lines.sort();
        for &line in lines {
            let text = &file.comments[&line];
            let Some(pos) = text.find("analyzer: allow(") else { continue };
            let rest = &text[pos + "analyzer: allow(".len()..];
            let Some(end) = rest.find(')') else {
                findings.push(malformed(file, line, "the marker never closes its paren"));
                continue;
            };
            let args = &rest[..end];
            let mut parts = args.splitn(2, ',');
            let kind = parts.next().map(str::trim).unwrap_or_default();
            let reason = parts.next();
            if kind.is_empty() {
                findings.push(malformed(file, line, "the marker names no kind"));
                continue;
            }
            if !reason.is_some_and(|r| r.contains('"')) {
                findings.push(malformed(
                    file,
                    line,
                    "a quoted justification is mandatory — a bare kind waives nothing",
                ));
                continue;
            }
            if !KNOWN_KINDS.contains(&kind) {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line,
                    pass: "allow-audit",
                    msg: format!(
                        "unknown allow kind `{kind}` — no pass consults it, so the \
                         marker waives nothing (known: {})",
                        KNOWN_KINDS.join(", ")
                    ),
                });
                continue;
            }
            *census
                .entry(file.crate_dir.as_str())
                .or_default()
                .entry(kind.to_string())
                .or_default() += 1;
            // Staleness: the marker waives `line` and `line + 1`.
            let near: Vec<&crate::lexer::Token> = file
                .tokens
                .iter()
                .filter(|t| t.line == line || t.line == line + 1)
                .collect();
            if near.is_empty() {
                continue; // stripped test region or detached comment block
            }
            let live = near
                .iter()
                .any(|t| t.ident().is_some_and(|s| triggers(kind).contains(&s)))
                // `index` waives slice indexing: any bracket will do.
                || (kind == "index" && near.iter().any(|t| t.is_punct('[')));
            if !live {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line,
                    pass: "allow-audit",
                    msg: format!(
                        "stale `allow({kind})` — no matching construct on this line \
                         or the next; the waived code was refactored away, delete \
                         the marker"
                    ),
                });
            }
        }
    }

    if !census.is_empty() {
        let mut crates: Vec<&&str> = census.keys().collect();
        crates.sort();
        for krate in crates {
            let per = &census[*krate];
            let mut kinds: Vec<&String> = per.keys().collect();
            kinds.sort();
            let detail: Vec<String> =
                kinds.iter().map(|k| format!("{k} {}", per[*k])).collect();
            let total: u32 = per.values().sum();
            eprintln!(
                "analyze: note: crate `{krate}` carries {total} allow marker{}: {}",
                if total == 1 { "" } else { "s" },
                detail.join(", ")
            );
        }
    }
    findings
}

fn malformed(file: &SourceFile, line: u32, why: &str) -> Finding {
    Finding {
        file: file.rel.clone(),
        line,
        pass: "allow-audit",
        msg: format!("malformed allow marker — {why}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn file(src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        SourceFile {
            rel: "test.rs".to_string(),
            crate_dir: "fixtures".to_string(),
            tokens: lexer::strip_test_regions(lexed.tokens),
            comments: lexed.comments,
        }
    }

    #[test]
    fn well_formed_live_markers_are_clean() {
        let f = file(
            "// analyzer: allow(panic, \"checked above\")\n\
             let x = v.unwrap();\n\
             // analyzer: allow(unsafe, \"caller contract\") — trailing prose\n\
             unsafe { g() }\n",
        );
        assert!(analyze(&[f]).is_empty());
    }

    #[test]
    fn missing_reason_and_unknown_kind_are_flagged() {
        let f = file(
            "// analyzer: allow(panic)\n\
             let x = v.unwrap();\n\
             // analyzer: allow(panics, \"typo in the kind\")\n\
             let y = w.unwrap();\n",
        );
        let findings = analyze(&[f]);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].msg.contains("justification is mandatory"));
        assert!(findings[1].msg.contains("unknown allow kind `panics`"));
    }

    #[test]
    fn stale_marker_is_flagged() {
        let f = file(
            "// analyzer: allow(panic, \"this unwrap was deleted long ago\")\n\
             let x = safe_helper();\n",
        );
        let findings = analyze(&[f]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].msg.contains("stale `allow(panic)`"));
    }

    #[test]
    fn marker_in_stripped_test_region_is_not_stale() {
        let f = file(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             // analyzer: allow(panic, \"tests may panic\")\n\
             fn t() { v.unwrap(); }\n\
             }\n",
        );
        assert!(analyze(&[f]).is_empty());
    }

    #[test]
    fn index_marker_accepts_a_bracket() {
        let f = file(
            "// analyzer: allow(index, \"len checked\")\n\
             let x = v[0];\n",
        );
        assert!(analyze(&[f]).is_empty());
    }
}
