//! `cargo xtask modelcheck` — run the deterministic interleaving
//! explorer over `labflow-mrv`.
//!
//! Rebuilds the MRV crate with `--cfg labflow_model`, which reroutes
//! every atomic, its internal mutex, and every raw-pointer transition
//! through the `labflow-modelcheck` runtime, then runs the scenarios in
//! `crates/mrv/tests/model.rs`: each one explores *every* interleaving
//! within its preemption bound and fails on any use-after-reclaim,
//! double free, leak, deadlock, or assertion violation, printing the
//! offending schedule. The instrumented build goes to a dedicated
//! `target/modelcheck` dir so it never invalidates the normal cache.

use std::path::Path;
use std::process::Command;

/// Exit code: 0 clean, 1 scenario violations, 2 couldn't run.
pub fn run(root: &Path) -> i32 {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("--cfg labflow_model");
    let status = Command::new(&cargo)
        .current_dir(root)
        .env("RUSTFLAGS", rustflags)
        .env("CARGO_TARGET_DIR", root.join("target").join("modelcheck"))
        .args([
            "test",
            "--package",
            "labflow-mrv",
            "--test",
            "model",
            "--",
            "--test-threads=1",
            "--nocapture",
        ])
        .status();
    match status {
        Ok(s) if s.success() => {
            println!("modelcheck: every scenario explored exhaustively, zero violations");
            0
        }
        Ok(_) => {
            eprintln!("modelcheck: a scenario reported violations (see the trace above)");
            1
        }
        Err(e) => {
            eprintln!("modelcheck: failed to launch cargo: {e}");
            2
        }
    }
}
