//! Lock-discipline checker.
//!
//! Builds a static lock-acquisition-order graph and checks it against
//! the declared rank table (`ranks.rs`):
//!
//! 1. **Acquisition sites** are recognised three ways: explicit
//!    `lock_order::ranked(..)` / `lock_order::acquire(..)` calls (the
//!    rank constant names the lock), declared helper/receiver rules from
//!    the rank table, and — unranked, for the blocking rule only — any
//!    zero-argument `.lock()` / `.read()` / `.write()`.
//! 2. **Guard liveness** is approximated per function: a `let`-bound
//!    guard lives to the end of its block or an explicit `drop(name)`;
//!    a temporary lives to the end of its statement. Acquiring a lock
//!    while another is live adds an order edge.
//! 3. **Cross-function nesting** is found by a call-graph fixpoint over
//!    functions whose names are unique in the analysed set: holding a
//!    guard across a call adds edges to everything the callee
//!    (transitively) acquires. Common names (`read`, `new`, ...) are
//!    skipped — conservative, but never wrong about order.
//! 4. Every edge must strictly increase rank, and the observed graph
//!    must be acyclic. Holding any real guard across a blocking call
//!    (condvar wait, sleep, fsync, WAL force) is an error unless the
//!    guard is itself the thing being waited on or synced.

use std::collections::{BTreeSet, HashMap};

use crate::lexer::{allowed, Tok, Token};
use crate::ranks::{self, RuleKind};
use crate::{Finding, SourceFile};

#[derive(Clone)]
struct Guard {
    name: Option<String>,
    rank: Option<u16>,
    /// `lock_order::acquire` rank tokens order-check but are exempt from
    /// the blocking rule (holding one across a wait for the same lock is
    /// exactly the explicit-token pattern).
    is_token: bool,
    depth: i32,
    temp: bool,
    /// Token index of the acquisition, for same-chain exemption.
    tok_idx: usize,
}

struct CallSite {
    callee: String,
    /// Ranks held at the call (named + temporary, including tokens).
    held: Vec<u16>,
    line: u32,
    file_idx: usize,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Edge {
    from: u16,
    to: u16,
}

struct FnInfo {
    name: String,
    direct_acquires: BTreeSet<u16>,
    calls: Vec<CallSite>,
}

/// Run the lock pass over every file, returning findings.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let rules = ranks::rules();
    let mut findings = Vec::new();
    let mut fns: Vec<FnInfo> = Vec::new();
    // Edges observed directly (same-function nesting), with location.
    let mut edges: Vec<(Edge, usize, u32)> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        for (name, body) in functions(&file.tokens) {
            let info = scan_body(file, fi, name, body, &rules, &mut edges, &mut findings);
            fns.push(info);
        }
    }

    // Unique-name call resolution: a callee name maps to a function only
    // if exactly one analysed function bears it.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let unique: HashMap<&str, usize> = by_name
        .iter()
        .filter(|(_, v)| v.len() == 1)
        .map(|(k, v)| (*k, v[0]))
        .collect();

    // Fixpoint: transitive acquisition sets.
    let mut trans: Vec<BTreeSet<u16>> = fns.iter().map(|f| f.direct_acquires.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for call in &fns[i].calls {
                if let Some(&j) = unique.get(call.callee.as_str()) {
                    if i == j {
                        continue;
                    }
                    let add: Vec<u16> =
                        trans[j].iter().filter(|r| !trans[i].contains(r)).copied().collect();
                    if !add.is_empty() {
                        trans[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Propagated edges: held rank -> everything the callee transitively
    // acquires.
    for f in &fns {
        for call in &f.calls {
            if let Some(&j) = unique.get(call.callee.as_str()) {
                for &h in &call.held {
                    for &a in &trans[j] {
                        edges.push((Edge { from: h, to: a }, call.file_idx, call.line));
                    }
                }
            }
        }
    }

    // Rank check: every edge must strictly increase.
    let mut seen: BTreeSet<(u16, u16, usize, u32)> = BTreeSet::new();
    for (e, fi, line) in &edges {
        if e.from >= e.to && seen.insert((e.from, e.to, *fi, *line)) {
            let file = &files[*fi];
            if !allowed(&file.comments, *line, "lock_order") {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: *line,
                    pass: "lock-order",
                    msg: format!(
                        "acquires {} (rank {}) while holding {} (rank {}) — \
                         rank must strictly increase",
                        ranks::name_of_rank(e.to),
                        e.to,
                        ranks::name_of_rank(e.from),
                        e.from
                    ),
                });
            }
        }
    }

    // Cycle check over the whole observed graph (belt and braces: with
    // strictly increasing ranks a cycle is impossible, but suppressed
    // edges still participate here).
    if let Some(cycle) = find_cycle(&edges) {
        let names: Vec<String> =
            cycle.iter().map(|r| format!("{} ({})", ranks::name_of_rank(*r), r)).collect();
        findings.push(Finding {
            file: "(graph)".to_string(),
            line: 0,
            pass: "lock-order",
            msg: format!("acquisition-order cycle: {}", names.join(" -> ")),
        });
    }

    findings
}

/// DFS cycle detection over the rank graph; returns one cycle if found.
fn find_cycle(edges: &[(Edge, usize, u32)]) -> Option<Vec<u16>> {
    let mut adj: HashMap<u16, BTreeSet<u16>> = HashMap::new();
    for (e, _, _) in edges {
        if e.from != e.to {
            adj.entry(e.from).or_default().insert(e.to);
        } else {
            return Some(vec![e.from, e.to]);
        }
    }
    let nodes: Vec<u16> = adj.keys().copied().collect();
    let mut state: HashMap<u16, u8> = HashMap::new(); // 1 = on stack, 2 = done
    let mut stack = Vec::new();
    fn dfs(
        v: u16,
        adj: &HashMap<u16, BTreeSet<u16>>,
        state: &mut HashMap<u16, u8>,
        stack: &mut Vec<u16>,
    ) -> Option<Vec<u16>> {
        state.insert(v, 1);
        stack.push(v);
        if let Some(next) = adj.get(&v) {
            for &w in next {
                match state.get(&w) {
                    Some(1) => {
                        let pos = stack.iter().position(|&x| x == w).unwrap_or(0);
                        let mut cycle = stack[pos..].to_vec();
                        cycle.push(w);
                        return Some(cycle);
                    }
                    Some(_) => {}
                    None => {
                        if let Some(c) = dfs(w, adj, state, stack) {
                            return Some(c);
                        }
                    }
                }
            }
        }
        stack.pop();
        state.insert(v, 2);
        None
    }
    for v in nodes {
        if !state.contains_key(&v) {
            if let Some(c) = dfs(v, &adj, &mut state, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Extract `(name, body_tokens)` for every `fn` in the stream.
fn functions(tokens: &[Token]) -> Vec<(String, &[Token])> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                // Find the body `{` at paren depth 0 (or `;` for a
                // bodyless trait method).
                let mut j = i + 2;
                let mut pd = 0i32;
                let mut body_start = None;
                while j < tokens.len() {
                    match &tokens[j].tok {
                        Tok::Punct('(') => pd += 1,
                        Tok::Punct(')') => pd -= 1,
                        Tok::Punct('{') if pd == 0 => {
                            body_start = Some(j + 1);
                            break;
                        }
                        Tok::Punct(';') if pd == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(start) = body_start {
                    let mut depth = 1i32;
                    let mut k = start;
                    while k < tokens.len() && depth > 0 {
                        if tokens[k].is_punct('{') {
                            depth += 1;
                        } else if tokens[k].is_punct('}') {
                            depth -= 1;
                        }
                        k += 1;
                    }
                    out.push((name.clone(), &tokens[start..k.saturating_sub(1)]));
                    // Continue scanning *inside* the body so nested fns
                    // (closur-free helper fns) are found too.
                    i = start;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Keywords that can precede `(` without being calls, or precede `[`
/// without being indexing.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let" | "in" | "return" | "match" | "if" | "else" | "mut" | "ref" | "move" | "break"
            | "continue" | "unsafe" | "as" | "where" | "impl" | "dyn" | "for" | "while" | "loop"
            | "crate" | "pub" | "use" | "mod" | "enum" | "struct" | "trait" | "type" | "const"
            | "static" | "fn" | "box" | "await" | "yield"
    )
}

/// Walk a function body, tracking guard liveness; record acquisitions,
/// direct nesting edges, call sites, and blocking-call violations.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    file: &SourceFile,
    file_idx: usize,
    name: String,
    body: &[Token],
    rules: &[ranks::LockRule],
    edges: &mut Vec<(Edge, usize, u32)>,
    findings: &mut Vec<Finding>,
) -> FnInfo {
    let mut guards: Vec<Guard> = Vec::new();
    let mut info =
        FnInfo { name, direct_acquires: BTreeSet::new(), calls: Vec::new() };
    let mut depth = 0i32;
    let mut pending_let: Option<String> = None;

    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        match &t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Punct(';') => {
                pending_let = None;
                guards.retain(|g| !(g.temp && g.depth >= depth));
            }
            Tok::Ident(id) => {
                if id == "let" {
                    pending_let = binding_name(body, i + 1);
                    i += 1;
                    continue;
                }
                if id == "drop"
                    && body.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && body.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    if let Some(Tok::Ident(victim)) = body.get(i + 2).map(|t| &t.tok) {
                        guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
                    }
                }
                // Acquisition?
                if let Some((rank, is_token, consumed)) =
                    acquisition(file, body, i, rules, findings)
                {
                    if let Some(r) = rank {
                        info.direct_acquires.insert(r);
                        for g in &guards {
                            if let Some(h) = g.rank {
                                edges.push((Edge { from: h, to: r }, file_idx, t.line));
                            }
                        }
                    }
                    let name = pending_let.take();
                    let temp = name.is_none();
                    guards.push(Guard { name, rank, is_token, depth, temp, tok_idx: i });
                    i += consumed;
                    continue;
                }
                // Plain call?
                if body.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                    // Macro, not a call.
                } else if body.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !is_keyword(id)
                    && !body.get(i.wrapping_sub(1)).is_some_and(|t| t.is_ident("fn"))
                {
                    // Only calls rooted at `self` (or bare path calls)
                    // resolve through the name-based call graph: a method
                    // on a local (`inner.map.clear()`) is almost always a
                    // std container op that merely shares a name with
                    // some workspace function.
                    let (root, _) = chain_root(body, i);
                    if root.is_none() || root.as_deref() == Some("self") {
                        let held: Vec<u16> = guards.iter().filter_map(|g| g.rank).collect();
                        info.calls.push(CallSite {
                            callee: id.clone(),
                            held,
                            line: t.line,
                            file_idx,
                        });
                    }
                    if ranks::BLOCKING_FNS.contains(&id.as_str()) {
                        check_blocking(file, body, i, id, &guards, findings);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    info
}

/// `let` binding name: skips `mut` and capitalised pattern constructors
/// (`Some`, `Ok`), takes the first lower-case identifier (the first
/// binding receives the guard in every pattern this codebase uses).
fn binding_name(body: &[Token], mut i: usize) -> Option<String> {
    let mut depth = 0i32;
    while let Some(t) = body.get(i) {
        match &t.tok {
            Tok::Ident(s) if s == "mut" || s == "ref" => {}
            Tok::Ident(s) if s.chars().next().is_some_and(|c| c.is_uppercase()) => {}
            Tok::Ident(s) => return Some(s.clone()),
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('=') | Tok::Punct(';') if depth == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Try to match an acquisition at token `i`. Returns
/// `(rank, is_token, tokens_consumed)`; rank `None` means an unranked
/// guard (blocking rule only).
fn acquisition(
    file: &SourceFile,
    body: &[Token],
    i: usize,
    rules: &[ranks::LockRule],
    findings: &mut Vec<Finding>,
) -> Option<(Option<u16>, bool, usize)> {
    let t = &body[i];
    let id = t.ident()?;

    // lock_order::ranked(lock_order::CONST, ..) / lock_order::acquire(..)
    if id == "lock_order"
        && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && body.get(i + 2).is_some_and(|t| t.is_punct(':'))
    {
        if let Some(Tok::Ident(method)) = body.get(i + 3).map(|t| &t.tok) {
            if (method == "ranked" || method == "acquire")
                && body.get(i + 4).is_some_and(|t| t.is_punct('('))
                && body.get(i + 5).is_some_and(|t| t.is_ident("lock_order"))
                && body.get(i + 6).is_some_and(|t| t.is_punct(':'))
                && body.get(i + 7).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(Tok::Ident(konst)) = body.get(i + 8).map(|t| &t.tok) {
                    let rank = ranks::rank_of_const(konst);
                    if rank.is_none() {
                        // The analyzer's table drifted from lock_order.rs.
                        findings.push(Finding {
                            file: file.rel.clone(),
                            line: t.line,
                            pass: "lock-order",
                            msg: format!(
                                "unknown rank constant `lock_order::{konst}` — \
                                 update xtask/src/ranks.rs to match \
                                 crates/storage/src/lock_order.rs"
                            ),
                        });
                    }
                    return Some((Some(rank.unwrap_or(0)), method == "acquire", 9));
                }
            }
        }
        return None;
    }

    // Zero-argument method call `.m()`?
    let zero_arg = i >= 1
        && body[i - 1].is_punct('.')
        && body.get(i + 1).is_some_and(|t| t.is_punct('('))
        && body.get(i + 2).is_some_and(|t| t.is_punct(')'));
    if !zero_arg {
        return None;
    }

    // Declared helper rule?
    for rule in rules {
        if rule.crate_dir != file.crate_dir {
            continue;
        }
        if let RuleKind::Helper(h) = rule.kind {
            if h == id {
                return Some((Some(rule.rank), false, 2));
            }
        }
    }

    // Declared receiver rule?
    let recv = receiver_of(body, i);
    for rule in rules {
        if rule.crate_dir != file.crate_dir {
            continue;
        }
        if let RuleKind::Receiver { recv: r, methods } = &rule.kind {
            if methods.contains(&id) && recv.as_deref() == Some(*r) {
                return Some((Some(rule.rank), false, 2));
            }
        }
    }

    // Generic guard-producing method: unranked, blocking rule only.
    if matches!(id, "lock" | "read" | "write") {
        return Some((None, false, 2));
    }
    None
}

/// The receiver identifier of `recv.method(` at `i` (method position):
/// the ident before the dot, looking through one `[...]` index.
fn receiver_of(body: &[Token], i: usize) -> Option<String> {
    if i < 2 || !body[i - 1].is_punct('.') {
        return None;
    }
    let mut j = i - 2;
    if body[j].is_punct(']') {
        // Look through an index expression: `self.shards[k].write()`.
        let mut depth = 1i32;
        while j > 0 && depth > 0 {
            j -= 1;
            if body[j].is_punct(']') {
                depth += 1;
            } else if body[j].is_punct('[') {
                depth -= 1;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    match &body[j].tok {
        Tok::Ident(s) => Some(s.clone()),
        _ => None,
    }
}

/// Root identifier and starting token index of the dotted chain ending
/// in the method at `i`: for `w.get_ref().sync_data()` with `i` at
/// `sync_data`, returns `("w", index_of_w)`.
fn chain_root(body: &[Token], i: usize) -> (Option<String>, usize) {
    let mut j = i;
    let mut root = None;
    while j >= 1 && body[j - 1].is_punct('.') {
        let mut k = j - 2;
        loop {
            let Some(t) = body.get(k) else { return (root, j) };
            match &t.tok {
                Tok::Punct(')') | Tok::Punct(']') => {
                    // Skip a balanced group backwards.
                    let open = if body[k].is_punct(')') { '(' } else { '[' };
                    let close = if open == '(' { ')' } else { ']' };
                    let mut depth = 1i32;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        if body[k].is_punct(close) {
                            depth += 1;
                        } else if body[k].is_punct(open) {
                            depth -= 1;
                        }
                    }
                    if k == 0 {
                        return (root, 0);
                    }
                    k -= 1;
                }
                Tok::Ident(s) => {
                    root = Some(s.clone());
                    j = k;
                    break;
                }
                _ => return (root, j),
            }
        }
    }
    (root, j)
}

/// A blocking function is called at `i` while `guards` are held: flag
/// unless every held real guard is exempt (it is the receiver root, the
/// first argument, or a rank token) or an allow marker applies.
fn check_blocking(
    file: &SourceFile,
    body: &[Token],
    i: usize,
    callee: &str,
    guards: &[Guard],
    findings: &mut Vec<Finding>,
) {
    let real: Vec<&Guard> = guards.iter().filter(|g| !g.is_token).collect();
    if real.is_empty() {
        return;
    }
    let (root, chain_start) = chain_root(body, i);
    let first_arg = match body.get(i + 2).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.clone()),
        _ => None,
    };
    let offending: Vec<&&Guard> = real
        .iter()
        .filter(|g| {
            let n = g.name.as_deref();
            if n.is_some() && (n == root.as_deref() || n == first_arg.as_deref()) {
                return false;
            }
            // A temporary produced inside this very chain is the thing
            // being waited on / synced (`self.file.lock().sync_data()`).
            !(g.temp && g.tok_idx >= chain_start && g.tok_idx < i)
        })
        .collect();
    if offending.is_empty() {
        return;
    }
    let line = body[i].line;
    if allowed(&file.comments, line, "blocking") {
        return;
    }
    let held: Vec<String> = offending
        .iter()
        .map(|g| match (g.name.as_deref(), g.rank) {
            (Some(n), Some(r)) => format!("`{n}` ({})", ranks::name_of_rank(r)),
            (Some(n), None) => format!("`{n}`"),
            (None, Some(r)) => ranks::name_of_rank(r).to_string(),
            (None, None) => "a temporary guard".to_string(),
        })
        .collect();
    findings.push(Finding {
        file: file.rel.clone(),
        line,
        pass: "blocking",
        msg: format!(
            "guard{} {} held across blocking call `{callee}(..)`",
            if held.len() == 1 { "" } else { "s" },
            held.join(", ")
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use std::path::Path;

    fn load_fixture(name: &str) -> SourceFile {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
        let src = std::fs::read_to_string(&path).expect("fixture exists");
        let lexed = lexer::lex(&src);
        SourceFile {
            rel: name.to_string(),
            crate_dir: "fixtures".to_string(),
            tokens: lexer::strip_test_regions(lexed.tokens),
            comments: lexed.comments,
        }
    }

    #[test]
    fn fixture_direct_inversion_is_flagged() {
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("buffer-pool frame table (rank 40)")
                && f.msg.contains("WAL append buffer (rank 50)")),
            "WAL_WRITER -> BUFFER_POOL inversion must be flagged"
        );
    }

    #[test]
    fn fixture_blocking_call_is_flagged() {
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        assert!(
            findings.iter().any(|f| f.pass == "blocking" && f.msg.contains("sleep")),
            "guard held across sleep must be flagged"
        );
    }

    #[test]
    fn fixture_cross_function_inversion_is_flagged() {
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("WAL append buffer (rank 50)")
                && f.msg.contains("WAL log-writer request queue (rank 55)")),
            "inversion through the call graph (outer -> inner_acquire) must be flagged"
        );
    }

    #[test]
    fn fixture_wal_force_under_queue_inversion_is_flagged() {
        // Two distinct sites seed the queue(55) -> writer(50) edge: the
        // cross-function one (outer -> inner_acquire) and the direct
        // force-under-queue one. Both must be flagged individually.
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        let edge_sites = findings
            .iter()
            .filter(|f| f.pass == "lock-order"
                && f.msg.contains("WAL append buffer (rank 50)")
                && f.msg.contains("WAL log-writer request queue (rank 55)"))
            .count();
        assert!(
            edge_sites >= 2,
            "forcing the log while holding the request queue must be flagged \
             at both seeded sites, found {edge_sites}"
        );
    }

    #[test]
    fn fixture_cycle_is_reported() {
        // well_ordered (30 -> 40) plus the waived edge (40 -> 30) form a
        // cycle; the per-edge finding is suppressed by the allow marker
        // but the cycle check still sees the edge.
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        assert!(findings
            .iter()
            .any(|f| f.pass == "lock-order" && f.msg.contains("acquisition-order cycle")));
    }

    #[test]
    fn fixture_well_ordered_and_waived_sites_are_not_flagged() {
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        // well_ordered: HEAP_GLOBAL, HEAP_TABLE, then BUFFER_POOL all
        // increase rank.
        assert!(
            !findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.starts_with("acquires buffer-pool frame table")
                && f.msg.contains("heap object-table shard (rank 30)")),
            "correctly ordered nesting must not be flagged"
        );
        assert!(
            !findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.starts_with("acquires heap object-table shard")
                && f.msg.contains("heap global shard (quiesce / segment roster) (rank 28)")),
            "global shard before a table shard is the documented order"
        );
        // waived: the inversion on the marked line is suppressed.
        assert!(
            !findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.starts_with("acquires heap object-table shard")
                && f.msg.contains("buffer-pool frame table (rank 40)")),
            "allow(lock_order) marker must suppress the per-edge finding"
        );
    }

    #[test]
    fn fixture_heap_shard_inversions_are_flagged() {
        // The two heap-specific seeded inversions: a table shard taken
        // under a segment lock, and the global quiesce shard taken under
        // a segment lock. Both must be flagged with the sharded heap's
        // rank names so a regression in the rank table (or the rules)
        // cannot silently stop covering the new locks.
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("heap object-table shard (rank 30)")
                && f.msg.contains("heap segment placement state (rank 32)")),
            "HEAP_SEGMENT -> HEAP_TABLE inversion must be flagged"
        );
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("heap global shard (quiesce / segment roster) (rank 28)")
                && f.msg.contains("heap segment placement state (rank 32)")),
            "HEAP_SEGMENT -> HEAP_GLOBAL inversion must be flagged"
        );
    }

    #[test]
    fn fixture_mvcc_inversions_are_flagged() {
        // The MVCC-era seeded inversions: epoch state under a table
        // shard, and the commit-visibility flip under the snapshot
        // registry. The well-ordered MVCC nesting must stay silent.
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("heap version-reclamation epoch state (rank 29)")
                && f.msg.contains("heap object-table shard (rank 30)")),
            "HEAP_TABLE -> HEAP_EPOCH inversion must be flagged"
        );
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("engine commit-visibility flip (rank 12)")
                && f.msg.contains("engine open-snapshot registry (rank 14)")),
            "ENGINE_SNAPSHOTS -> ENGINE_COMMIT_VIS inversion must be flagged"
        );
        assert!(
            !findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.starts_with("acquires heap version-reclamation epoch state")
                && f.msg.contains("engine open-snapshot registry (rank 14)")),
            "vis -> snaps -> epoch is the documented order and must not be flagged"
        );
    }

    #[test]
    fn fixture_server_rank_inversions_are_flagged() {
        // The network front end's seeded inversions: the tenant
        // registry under the connection table, the connection table
        // under the drain latch, and — the one the ranks exist for — a
        // storage lock acquired while holding a server latch. The
        // documented tenants -> conns -> drain nesting must stay silent.
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("server tenant registry (rank 70)")
                && f.msg.contains("server connection table (rank 72)")),
            "SRV_CONNS -> SRV_TENANTS inversion must be flagged"
        );
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("server connection table (rank 72)")
                && f.msg.contains("server drain latch (rank 74)")),
            "SRV_DRAIN -> SRV_CONNS inversion must be flagged"
        );
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("engine active-transaction table (rank 10)")
                && f.msg.contains("server tenant registry (rank 70)")),
            "a storage lock under a server latch must be flagged"
        );
        assert!(
            !findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.starts_with("acquires server drain latch")
                && f.msg.contains("server connection table (rank 72)")),
            "tenants -> conns -> drain is the documented order and must not be flagged"
        );
    }

    #[test]
    fn fixture_repl_rank_inversions_are_flagged() {
        // The replication-era seeded inversions: an engine lock under
        // the follower state lock (the lock held across
        // `replica_apply_commit` mistake), and the ack table under the
        // follower state. The documented acks -> follower nesting must
        // stay silent.
        let findings = analyze(&[load_fixture("lock_nesting.rs")]);
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("engine active-transaction table (rank 10)")
                && f.msg.contains("replication follower state (rank 78)")),
            "REPL_FOLLOWER -> ENGINE_ACTIVE inversion must be flagged"
        );
        assert!(
            findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.contains("replication ack table (rank 76)")
                && f.msg.contains("replication follower state (rank 78)")),
            "REPL_FOLLOWER -> REPL_ACKS inversion must be flagged"
        );
        assert!(
            !findings.iter().any(|f| f.pass == "lock-order"
                && f.msg.starts_with("acquires replication follower state")
                && f.msg.contains("replication ack table (rank 76)")),
            "acks -> follower is the documented order and must not be flagged"
        );
    }

    #[test]
    fn real_tree_lock_rules_match_runtime_constants() {
        // Drift check: every rank constant referenced from the storage
        // crate sources must exist in the analyzer's table (an unknown
        // one produces a finding).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../crates/storage/src");
        let mut files = Vec::new();
        for entry in std::fs::read_dir(&root).expect("storage src exists") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path).expect("readable");
                let lexed = lexer::lex(&src);
                files.push(SourceFile {
                    rel: path.display().to_string(),
                    crate_dir: "storage".to_string(),
                    tokens: lexer::strip_test_regions(lexed.tokens),
                    comments: lexed.comments,
                });
            }
        }
        let findings = analyze(&files);
        let drift: Vec<_> =
            findings.iter().filter(|f| f.msg.contains("unknown rank constant")).collect();
        assert!(drift.is_empty(), "rank table drifted: {}", drift.len());
    }
}
