//! Unsafe-code budget ratchet.
//!
//! The workspace confines `unsafe` to `labflow-mrv` (the lock-free
//! read path — see its crate docs for why each site is needed); every
//! other server crate is expected to stay at zero. The pass counts
//! `unsafe` keyword tokens per crate in the test-stripped stream (so
//! `unsafe impl Send`, `unsafe fn`, and `unsafe { .. }` all weigh one
//! each, while `unsafe_op_in_unsafe_fn` in a lint attribute does not)
//! and enforces:
//!
//! * crates **with** a budget in `main::UNSAFE_BUDGETS`: the total may
//!   not exceed the budget. Lowering the budget after removing a site
//!   is encouraged; raising it means new unsafe went in and needs a
//!   reviewer's eyes on the safety argument.
//! * crates **without** a budget: each site must carry an
//!   `// analyzer: allow(unsafe, "safety argument")` marker on its own
//!   line or the one above. Fixture mode has no budgets, so every
//!   unmarked site is flagged — that is what the seeded fixture tests.
//!
//! Waived sites do not count against a budget (the marker already
//! records the justification the budget exists to demand).

use crate::lexer::allowed;
use crate::{Finding, SourceFile};

/// Scan one file: returns the findings for unwaived sites in
/// unbudgeted crates, plus the count of unwaived sites (for the
/// budgeted-crate ratchet in `main::run`).
pub fn scan(file: &SourceFile, budgeted: bool) -> (Vec<Finding>, u32) {
    let mut findings = Vec::new();
    let mut count = 0u32;
    for t in &file.tokens {
        if t.ident() != Some("unsafe") {
            continue;
        }
        if allowed(&file.comments, t.line, "unsafe") {
            continue;
        }
        count += 1;
        if !budgeted {
            findings.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                pass: "unsafe-budget",
                msg: "`unsafe` outside the budgeted crates — move it behind a safe \
                      API in labflow-mrv, or waive this site with \
                      `// analyzer: allow(unsafe, \"safety argument\")`"
                    .to_string(),
            });
        }
    }
    (findings, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::SourceFile;

    fn file(src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        SourceFile {
            rel: "test.rs".to_string(),
            crate_dir: "fixtures".to_string(),
            tokens: lexer::strip_test_regions(lexed.tokens),
            comments: lexed.comments,
        }
    }

    #[test]
    fn every_unsafe_form_counts_once() {
        let f = file(
            "unsafe impl Send for X {}\n\
             unsafe fn f() {}\n\
             fn g() { unsafe { f() } }\n",
        );
        let (findings, count) = scan(&f, true);
        assert!(findings.is_empty(), "budgeted crates get a count, not findings");
        assert_eq!(count, 3);
        let (findings, count) = scan(&f, false);
        assert_eq!(findings.len(), 3);
        assert_eq!(count, 3);
    }

    #[test]
    fn allow_marker_waives_and_uncounts() {
        let f = file(
            "// analyzer: allow(unsafe, \"ffi contract upheld by caller\")\n\
             fn g() { unsafe { f() } }\n\
             fn h() { unsafe { f() } }\n",
        );
        let (findings, count) = scan(&f, false);
        assert_eq!(findings.len(), 1, "only the unmarked site is flagged");
        assert_eq!(findings[0].line, 3);
        assert_eq!(count, 1, "waived sites do not count against a budget");
    }

    #[test]
    fn lint_attribute_and_strings_are_not_sites() {
        let f = file(
            "#![deny(unsafe_op_in_unsafe_fn)]\n\
             fn f() { let s = \"unsafe\"; } // unsafe here too\n",
        );
        let (findings, count) = scan(&f, false);
        assert!(findings.is_empty());
        assert_eq!(count, 0);
    }

    #[test]
    fn test_regions_are_exempt() {
        let f = file(
            "fn real() { unsafe { f() } }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             fn t() { unsafe { g() } }\n\
             }\n",
        );
        let (_, count) = scan(&f, true);
        assert_eq!(count, 1);
    }
}
