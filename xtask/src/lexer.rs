//! A minimal hand-rolled Rust lexer.
//!
//! The analysis environment has no registry access, so we cannot lean on
//! `syn`; both analyzer passes instead work on a token stream that is
//! careful about exactly the things that break naive text scans: string
//! and raw-string literals, char literals vs. lifetimes, and (nested)
//! comments. Line comments are kept in a side table so passes can honour
//! `// analyzer: allow(kind, "reason")` escape hatches.

use std::collections::HashMap;

/// One lexed token. Literals carry no value — the passes only care about
/// identifiers and punctuation shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` is two tokens).
    Punct(char),
    /// String / char / numeric literal.
    Lit,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

/// Lexer output: the token stream plus line-indexed `//` comment text.
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// 1-based line number -> concatenated line-comment text on that line.
    pub comments: HashMap<u32, String>,
}

/// Does line `line` (or the line above it) carry an
/// `// analyzer: allow(kind, "...")` marker for `kind`?
pub fn allowed(comments: &HashMap<u32, String>, line: u32, kind: &str) -> bool {
    let hit = |l: u32| {
        comments.get(&l).is_some_and(|text| {
            let Some(pos) = text.find("analyzer: allow(") else { return false };
            let rest = &text[pos + "analyzer: allow(".len()..];
            let Some(end) = rest.find(')') else { return false };
            let args = &rest[..end];
            let mut parts = args.splitn(2, ',');
            let named = parts.next().map(str::trim) == Some(kind);
            // A justification string is mandatory; a bare kind is not
            // an accepted waiver.
            named && parts.next().is_some_and(|r| r.contains('"'))
        })
    };
    hit(line) || (line > 1 && hit(line - 1))
}

pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut comments: HashMap<u32, String> = HashMap::new();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments) — record text for allow markers.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            comments.entry(line).or_default().push_str(&text);
            continue;
        }
        // Block comment — Rust block comments nest.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br#""#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i + 1;
            let mut raw = c == 'r';
            if c == 'b' && j < n && b[j] == 'r' {
                raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while raw && j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' && (raw || c == 'b') {
                let tok_line = line;
                if raw {
                    // Scan to `"` followed by `hashes` hashes; no escapes.
                    i = j + 1;
                    'raw: while i < n {
                        if b[i] == '\n' {
                            line += 1;
                        } else if b[i] == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                } else {
                    // b"..." — cooked string body with escapes. An
                    // escaped `\n` is a line-continuation: the newline
                    // is consumed by the escape but still ends a
                    // source line, so it must still count.
                    i = j + 1;
                    while i < n && b[i] != '"' {
                        if b[i] == '\\' {
                            i += 1;
                            if i < n && b[i] == '\n' {
                                line += 1;
                            }
                        } else if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                }
                tokens.push(Token { tok: Tok::Lit, line: tok_line });
                continue;
            }
            if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
                // Byte char literal b'x'.
                let tok_line = line;
                i += 2;
                while i < n && b[i] != '\'' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
                tokens.push(Token { tok: Tok::Lit, line: tok_line });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            tokens.push(Token { tok: Tok::Ident(b[start..i].iter().collect()), line });
            continue;
        }
        if c.is_ascii_digit() {
            // Numbers: digits, type suffixes, hex, underscores. A `.` is
            // left as punctuation (`1.5` lexes as Lit '.' Lit) — the
            // passes never care about numeric values.
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            tokens.push(Token { tok: Tok::Lit, line });
            continue;
        }
        if c == '"' {
            let tok_line = line;
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\\' {
                    // Escapes hide the next char from the closing-quote
                    // scan, but a `\`-newline continuation still ends a
                    // source line — losing it would shift every
                    // reported line for the rest of the file.
                    i += 1;
                    if i < n && b[i] == '\n' {
                        line += 1;
                    }
                } else if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1;
            tokens.push(Token { tok: Tok::Lit, line: tok_line });
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
            let next_is_ident = i + 1 < n && (is_ident_start(b[i + 1]));
            let closes = i + 2 < n && b[i + 2] == '\'';
            if next_is_ident && !closes {
                // Lifetime: skip the quote and the ident.
                i += 1;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
                continue;
            }
            let tok_line = line;
            i += 1;
            while i < n && b[i] != '\'' {
                if b[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
            tokens.push(Token { tok: Tok::Lit, line: tok_line });
            continue;
        }
        tokens.push(Token { tok: Tok::Punct(c), line });
        i += 1;
    }

    Lexed { tokens, comments }
}

/// Strip test-only regions from a token stream: items annotated
/// `#[test]` or `#[cfg(test)]` (functions and whole `mod tests` blocks).
/// Excluded regions are balanced brace blocks, so removal keeps the
/// stream balanced for the brace-tracking passes.
pub fn strip_test_regions(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Collect the attribute's tokens.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut attr: Vec<&Token> = Vec::new();
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                attr.push(&tokens[j]);
                j += 1;
            }
            let is_test_attr = (attr.len() == 1 && attr[0].is_ident("test"))
                || attr.windows(3).any(|w| {
                    w[0].is_ident("cfg") && w[1].is_punct('(') && w[2].is_ident("test")
                });
            if is_test_attr {
                // Skip forward past any further attributes and the item
                // they decorate (up to and including its brace block, or
                // a `;` for braceless items).
                let mut k = j + 1;
                loop {
                    if k >= tokens.len() {
                        return out;
                    }
                    if tokens[k].is_punct('#')
                        && k + 1 < tokens.len()
                        && tokens[k + 1].is_punct('[')
                    {
                        let mut d = 1i32;
                        k += 2;
                        while k < tokens.len() && d > 0 {
                            if tokens[k].is_punct('[') {
                                d += 1;
                            } else if tokens[k].is_punct(']') {
                                d -= 1;
                            }
                            k += 1;
                        }
                        continue;
                    }
                    break;
                }
                // Find the item body `{...}` (or a terminating `;`).
                while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                    k += 1;
                }
                if k < tokens.len() && tokens[k].is_punct('{') {
                    let mut d = 1i32;
                    k += 1;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('{') {
                            d += 1;
                        } else if tokens[k].is_punct('}') {
                            d -= 1;
                        }
                        k += 1;
                    }
                } else if k < tokens.len() {
                    k += 1; // the `;` of a braceless item
                }
                i = k;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            fn f() {
                let s = "unwrap() inside a string";
                let r = r#"panic!("raw")"#;
                // a comment mentioning .unwrap()
                /* block with unwrap() and /* nested */ still one */
                let c = '"';
                let lt: &'static str = "x";
            }
        "##;
        let lexed = lex(src);
        let unwraps =
            lexed.tokens.iter().filter(|t| t.is_ident("unwrap") || t.is_ident("panic")).count();
        assert_eq!(unwraps, 0);
        assert!(lexed.comments.values().any(|c| c.contains("unwrap")));
    }

    #[test]
    fn allow_marker_parses_and_requires_reason() {
        let lexed = lex("// analyzer: allow(panic, \"checked above\")\nlet x = v.unwrap();\n");
        assert!(allowed(&lexed.comments, 2, "panic"));
        assert!(!allowed(&lexed.comments, 2, "index"));
        let bare = lex("// analyzer: allow(panic)\nlet x = v.unwrap();\n");
        assert!(!allowed(&bare.comments, 2, "panic"), "reason string is mandatory");
    }

    #[test]
    fn test_regions_are_stripped() {
        let src = r#"
            fn real() { v.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { w.unwrap(); }
            }
            #[test]
            fn top_level_test() { z.unwrap(); }
            fn also_real() { y.unwrap(); }
        "#;
        let toks = strip_test_regions(lex(src).tokens);
        let names: Vec<_> =
            toks.iter().filter_map(|t| t.ident().map(str::to_string)).collect();
        assert!(names.contains(&"real".to_string()));
        assert!(names.contains(&"also_real".to_string()));
        assert!(!names.contains(&"tests".to_string()));
        assert!(!names.contains(&"top_level_test".to_string()));
        let unwraps = toks.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 2, "only the two non-test unwraps survive");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        // If the lifetime were lexed as an unterminated char literal the
        // rest of the signature would be swallowed.
        assert!(lexed.tokens.iter().any(|t| t.is_ident("str")));
    }

    /// Line of the first token matching `name`.
    fn line_of(src: &str, name: &str) -> u32 {
        lex(src).tokens.iter().find(|t| t.is_ident(name)).expect("token present").line
    }

    #[test]
    fn line_counting_survives_string_continuations() {
        // Regression: a `\`-newline continuation consumes the newline
        // as part of the escape, but it still ends a source line.
        // Losing it shifted every reported line for the rest of the
        // file (and put allow markers off-by-one from their sites).
        let src = "let a = \"first \\\n    second\";\nmarker();\n";
        assert_eq!(line_of(src, "marker"), 3);
        // An unescaped newline inside a string counts too.
        let src = "let a = \"first\nsecond\";\nmarker();\n";
        assert_eq!(line_of(src, "marker"), 3);
        // And inside a byte string.
        let src = "let a = b\"first \\\n second\";\nmarker();\n";
        assert_eq!(line_of(src, "marker"), 3);
    }

    #[test]
    fn line_counting_survives_raw_strings_and_block_comments() {
        let src = "let a = r#\"one\ntwo \" three\nfour\"#;\nmarker();\n";
        assert_eq!(line_of(src, "marker"), 4);
        let src = "/* one\n /* nested\n */ two\n*/\nmarker();\n";
        assert_eq!(line_of(src, "marker"), 5);
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_not_a_token() {
        let src = "// unsafe { comment }\n\
                   /* unsafe in a block comment */\n\
                   let s = \"unsafe { string }\";\n\
                   let r = r#\"unsafe { raw }\"#;\n\
                   let b = b\"unsafe\";\n";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unsafe")));
        // The real keyword still tokenizes.
        assert!(lex("unsafe { f() }").tokens.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn raw_string_hash_fences_respect_their_arity() {
        // A `"#` inside an `r##"…"##` body does not terminate it.
        let src = "let a = r##\"contains \"# inside\"##;\nmarker();\n";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("inside")));
        assert_eq!(line_of(src, "marker"), 2);
    }
}
