//! Panic-freedom lint.
//!
//! Flags `.unwrap()` / `.expect(..)` calls and `panic!` / `unreachable!`
//! / `todo!` / `unimplemented!` macros in non-test code, honouring
//! `// analyzer: allow(panic, "reason")` markers on the same or the
//! preceding line.
//!
//! Slice indexing (`a[i]`) is handled with a per-crate *ratchet* rather
//! than per-site markers: most index expressions in this codebase are
//! bounds-checked arithmetic over page frames where a marker per line
//! would be noise. The count per crate may never exceed the recorded
//! budget in `main.rs`; lowering a budget is always welcome, raising one
//! requires touching the table in review. Individual sites can still be
//! waived (excluded from the count) with `allow(index, "..")`.

use crate::lexer::{allowed, Tok};
use crate::locks::is_keyword;
use crate::{Finding, SourceFile};

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scan one file: returns panic findings and the slice-indexing count.
pub fn scan(file: &SourceFile) -> (Vec<Finding>, u32) {
    let mut findings = Vec::new();
    let mut index_count = 0u32;
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Ident(id) => {
                let method = PANIC_METHODS.contains(&id.as_str())
                    && i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                let mac = PANIC_MACROS.contains(&id.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
                if (method || mac) && !allowed(&file.comments, t.line, "panic") {
                    findings.push(Finding {
                        file: file.rel.clone(),
                        line: t.line,
                        pass: "panic",
                        msg: if method {
                            format!(
                                ".{id}() can panic — return a typed error, or mark the \
                                 invariant with `// analyzer: allow(panic, \"..\")`"
                            )
                        } else {
                            format!(
                                "{id}! can panic — return a typed error, or mark the \
                                 invariant with `// analyzer: allow(panic, \"..\")`"
                            )
                        },
                    });
                }
            }
            Tok::Punct('[') if i >= 1 => {
                let indexing = match &toks[i - 1].tok {
                    Tok::Ident(prev) => !is_keyword(prev),
                    Tok::Punct(']') | Tok::Punct(')') => true,
                    _ => false,
                };
                if indexing && !allowed(&file.comments, t.line, "index") {
                    index_count += 1;
                }
            }
            _ => {}
        }
    }
    (findings, index_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn file(src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        SourceFile {
            rel: "test.rs".to_string(),
            crate_dir: "fixtures".to_string(),
            tokens: lexer::strip_test_regions(lexed.tokens),
            comments: lexed.comments,
        }
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let f = file(
            "fn f() {\n\
             let a = x.unwrap();\n\
             let b = y.expect(\"msg\");\n\
             panic!(\"boom\");\n\
             unreachable!();\n\
             }\n",
        );
        let (findings, _) = scan(&f);
        assert_eq!(findings.len(), 4);
    }

    #[test]
    fn allow_marker_waives_a_site() {
        let f = file(
            "fn f() {\n\
             // analyzer: allow(panic, \"length checked two lines up\")\n\
             let a = x.unwrap();\n\
             let b = y.unwrap();\n\
             }\n",
        );
        let (findings, _) = scan(&f);
        assert_eq!(findings.len(), 1, "only the unmarked unwrap is flagged");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn unwrap_in_string_or_comment_is_ignored() {
        let f = file(
            "fn f() {\n\
             let s = \"x.unwrap()\"; // .unwrap() here too\n\
             }\n",
        );
        let (findings, _) = scan(&f);
        assert!(findings.is_empty());
    }

    #[test]
    fn indexing_is_counted_not_flagged() {
        let f = file(
            "fn f(v: &[u8]) -> u8 {\n\
             let x = v[0];\n\
             let arr = [0u8; 4];\n\
             let [a, b] = pair;\n\
             let attr = foo(v)[1];\n\
             x\n\
             }\n",
        );
        let (findings, count) = scan(&f);
        assert!(findings.is_empty());
        assert_eq!(count, 2, "v[0] and foo(v)[1]; literals and patterns excluded");
    }

    #[test]
    fn expects_in_tests_are_ignored() {
        let f = file(
            "fn real() { a.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             fn t() { b.unwrap(); c[0]; }\n\
             }\n",
        );
        let (findings, count) = scan(&f);
        assert_eq!(findings.len(), 1);
        assert_eq!(count, 0);
    }
}
