//! Server crash-recovery smoke test (`cargo xtask server-smoke`).
//!
//! The crashtest harness kills a *simulated* machine under the storage
//! engine; this test kills the *real* `labflow-server` process under a
//! real TCP workload and checks the same contract end to end:
//!
//! 1. build and spawn `labflow-server --dir <tmp>` on an ephemeral
//!    loopback port (spawned directly, never through `cargo run`, so
//!    the kill hits the server process itself);
//! 2. run a mixed workload from several concurrent clients, recording
//!    every transaction whose commit returned `Ok` in a ledger;
//! 3. open one more transaction, write through it, and SIGKILL the
//!    server with the transaction still open;
//! 4. restart the server on the same directory and verify
//!    committed-exactly recovery through the wire: every ledgered
//!    material is present in its final state, the mid-kill
//!    transaction's material does not exist, and the state counts
//!    match the ledger exactly;
//! 5. drain gracefully via the `Shutdown` request and require a clean
//!    exit.
//!
//! The server binary forces the log on commit (`sync_commit`), which is
//! what makes step 4 sound: an acknowledged commit must survive SIGKILL.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use labbase::{AttrType, Value};
use labflow_server::{Client, ClientError};

const CLIENTS: usize = 3;
const TXNS_PER_CLIENT: usize = 8;
const TXN_ATTEMPTS: usize = 10;
const START_TIMEOUT: Duration = Duration::from_secs(60);
const EXIT_TIMEOUT: Duration = Duration::from_secs(30);

/// Kills the spawned server on drop so a failing assertion never leaks
/// a listening process.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn workspace_root() -> PathBuf {
    // This crate's manifest dir is `<root>/xtask`.
    match Path::new(env!("CARGO_MANIFEST_DIR")).parent() {
        Some(p) => p.to_path_buf(),
        None => PathBuf::from("."),
    }
}

fn server_binary(root: &Path) -> Result<PathBuf, String> {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let status = Command::new(cargo)
        .current_dir(root)
        .args(["build", "-q", "-p", "labflow-server", "--bin", "labflow-server"])
        .status()
        .map_err(|e| format!("run cargo build: {e}"))?;
    if !status.success() {
        return Err("cargo build -p labflow-server failed".into());
    }
    let target = match std::env::var_os("CARGO_TARGET_DIR") {
        Some(t) => PathBuf::from(t),
        None => root.join("target"),
    };
    let bin = target.join("debug").join(format!("labflow-server{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        return Err(format!("built server binary not found at {}", bin.display()));
    }
    Ok(bin)
}

/// Spawn the server on an ephemeral port and parse the bound address
/// from its `labflow-server listening on <addr>` stdout line.
fn spawn_server(bin: &Path, dir: &Path) -> Result<(Reaped, String), String> {
    let mut child = Command::new(bin)
        .args(["--dir"])
        .arg(dir)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = match child.stdout.take() {
        Some(s) => s,
        None => {
            let _ = child.kill();
            return Err("server stdout not captured".into());
        }
    };
    let mut child = Reaped(child);
    // Recovery of a large log can take a while; read lines until the
    // banner appears or the process dies.
    let reader = std::thread::spawn(move || {
        let mut lines = std::io::BufReader::new(stdout).lines();
        loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("labflow-server listening on ") {
                        return Some(addr.trim().to_string());
                    }
                }
                Some(Err(_)) | None => return None,
            }
        }
    });
    let start = Instant::now();
    loop {
        if reader.is_finished() {
            return match reader.join() {
                Ok(Some(addr)) => Ok((child, addr)),
                _ => Err("server exited before printing its listening address".into()),
            };
        }
        if start.elapsed() > START_TIMEOUT {
            let _ = child.0.kill();
            return Err("server did not print its listening address in time".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn transient(e: &ClientError) -> bool {
    matches!(e, ClientError::Retry { .. } | ClientError::Overloaded { .. })
}

/// Commit one workload transaction: create `name`, record a measure
/// step on it, and move it to state `done`. Retries on typed shed and
/// contention responses; after an ambiguous failure, checks whether the
/// transaction actually landed before retrying, so the ledger stays a
/// record of exactly-once effects.
fn commit_material(c: &mut Client, name: &str, t: i64) -> Result<(), String> {
    let mut last = String::new();
    for attempt in 0..TXN_ATTEMPTS {
        let result = (|| -> Result<(), ClientError> {
            c.begin()?;
            let m = c.create_material("sample", name, t)?;
            c.record_step(
                "measure",
                t + 1,
                &[m],
                vec![("reading".into(), Value::Real(t as f64))],
            )?;
            c.set_state(m, "done", t + 2)?;
            c.commit()
        })();
        match result {
            Ok(()) => return Ok(()),
            Err(e) => {
                let _ = c.abort();
                if let Ok(Some(m)) = c.find_material(name) {
                    if matches!(c.state_of(m), Ok(Some(ref s)) if s == "done") {
                        return Ok(()); // the "failed" attempt actually committed
                    }
                }
                if !transient(&e) {
                    return Err(format!("transaction for {name}: {e}"));
                }
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(10 * (attempt as u64 + 1)));
            }
        }
    }
    Err(format!("transaction for {name} did not commit after {TXN_ATTEMPTS} attempts (last: {last})"))
}

/// One client's slice of the mixed workload. Commits `TXNS_PER_CLIENT`
/// materials, deliberately aborts one more, and sprinkles reads in
/// between; returns the names whose commits were acknowledged.
fn client_workload(addr: &str, client: usize) -> Result<Vec<String>, String> {
    let mut c = Client::connect(addr, client as u32 + 1)
        .map_err(|e| format!("client {client} connect: {e}"))?;
    let mut committed = Vec::new();
    for txn in 0..TXNS_PER_CLIENT {
        let name = format!("smoke-c{client}-m{txn}");
        commit_material(&mut c, &name, (client * 1000 + txn * 10) as i64)
            .map_err(|e| format!("client {client}: {e}"))?;
        committed.push(name);
    }
    // An acknowledged abort must leave nothing behind.
    let ghost = format!("smoke-c{client}-aborted");
    c.begin().map_err(|e| format!("client {client} begin: {e}"))?;
    c.create_material("sample", &ghost, 1).map_err(|e| format!("client {client}: {e}"))?;
    c.abort().map_err(|e| format!("client {client} abort: {e}"))?;
    if let Ok(Some(_)) = c.find_material(&ghost) {
        return Err(format!("client {client}: aborted material {ghost} is visible"));
    }
    let last = committed.last().map(String::as_str).unwrap_or_default();
    match c.find_material(last) {
        Ok(Some(_)) => Ok(committed),
        Ok(None) => Err(format!("client {client}: committed material {last} not readable")),
        Err(e) => Err(format!("client {client} read-back: {e}")),
    }
}

/// Verify the recovered store against the ledger, through the wire.
fn verify_recovery(addr: &str, ledger: &[String]) -> Result<(), String> {
    let mut c = Client::connect(addr, 99).map_err(|e| format!("verify connect: {e}"))?;
    c.ping().map_err(|e| format!("verify ping: {e}"))?;
    for name in ledger {
        let m = c
            .find_material(name)
            .map_err(|e| format!("find {name}: {e}"))?
            .ok_or_else(|| format!("committed material {name} lost across the crash"))?;
        match c.state_of(m).map_err(|e| format!("state of {name}: {e}"))? {
            Some(ref s) if s == "done" => {}
            other => return Err(format!("material {name} recovered in state {other:?}")),
        }
        let history = c.history(m).map_err(|e| format!("history of {name}: {e}"))?;
        if history.is_empty() {
            return Err(format!("material {name} recovered with no step history"));
        }
    }
    let done = c.count_in_state("done").map_err(|e| format!("count_in_state: {e}"))?;
    if done != ledger.len() as u64 {
        return Err(format!(
            "count_in_state(done) = {done} after recovery, ledger has {}",
            ledger.len()
        ));
    }
    if let Some(m) = c
        .find_material("smoke-ghost-mid-kill")
        .map_err(|e| format!("find ghost: {e}"))?
    {
        return Err(format!("mid-kill transaction's material survived as oid {m}"));
    }
    let rows = c.query("state(M, done)").map_err(|e| format!("LQL after recovery: {e}"))?;
    if rows.len() != ledger.len() {
        return Err(format!(
            "LQL state(M, done) returned {} rows after recovery, ledger has {}",
            rows.len(),
            ledger.len()
        ));
    }
    Ok(())
}

fn run_inner(dir: &Path) -> Result<(), String> {
    let root = workspace_root();
    let bin = server_binary(&root)?;

    // ---- First life: schema, mixed workload, kill mid-transaction.
    let (mut server, addr) = spawn_server(&bin, dir)?;
    println!("server-smoke: serving on {addr} (pid {})", server.0.id());

    let mut admin = Client::connect(addr.as_str(), 0).map_err(|e| format!("admin connect: {e}"))?;
    admin.begin().map_err(|e| format!("schema begin: {e}"))?;
    admin
        .define_material_class("sample", None)
        .map_err(|e| format!("define material class: {e}"))?;
    admin
        .define_step_class("measure", &[("reading", AttrType::Real)])
        .map_err(|e| format!("define step class: {e}"))?;
    admin.commit().map_err(|e| format!("schema commit: {e}"))?;

    let ledger: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let addr = addr.as_str();
                scope.spawn(move || client_workload(addr, i))
            })
            .collect();
        let mut all = Vec::new();
        let mut errors = Vec::new();
        for h in handles {
            match h.join() {
                Ok(Ok(names)) => all.extend(names),
                Ok(Err(e)) => errors.push(e),
                Err(_) => errors.push("workload thread panicked".into()),
            }
        }
        if errors.is_empty() {
            Ok(all)
        } else {
            Err(errors.join("; "))
        }
    })?;
    println!("server-smoke: {} transactions committed by {CLIENTS} clients", ledger.len());

    // Leave a transaction open with real writes in it, then pull the
    // plug on the process. The write is acknowledged but the commit
    // never happens, so recovery must erase it.
    admin.begin().map_err(|e| format!("ghost begin: {e}"))?;
    let ghost = admin
        .create_material("sample", "smoke-ghost-mid-kill", 7)
        .map_err(|e| format!("ghost create: {e}"))?;
    admin
        .set_state(ghost, "done", 8)
        .map_err(|e| format!("ghost set_state: {e}"))?;
    server.0.kill().map_err(|e| format!("kill server: {e}"))?;
    let _ = server.0.wait();
    drop(server);
    drop(admin);
    println!("server-smoke: killed mid-transaction; restarting on the same directory");

    // ---- Second life: recover and verify committed-exactly.
    let (server, addr) = spawn_server(&bin, dir)?;
    verify_recovery(&addr, &ledger)?;
    println!("server-smoke: committed-exactly verified across the crash");

    // ---- Graceful drain via the wire.
    let mut c = Client::connect(addr.as_str(), 0).map_err(|e| format!("shutdown connect: {e}"))?;
    c.shutdown_server().map_err(|e| format!("shutdown request: {e}"))?;
    drop(c);
    let mut server = server;
    let start = Instant::now();
    loop {
        match server.0.try_wait() {
            Ok(Some(status)) if status.success() => break,
            Ok(Some(status)) => return Err(format!("server exited uncleanly after drain: {status}")),
            Ok(None) if start.elapsed() > EXIT_TIMEOUT => {
                return Err("server did not exit after the Shutdown request".into());
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(100)),
            Err(e) => return Err(format!("wait for server exit: {e}")),
        }
    }
    println!("server-smoke: drained and exited cleanly");
    Ok(())
}

/// Entry point. With `--dir` the store directory is reused (and kept);
/// otherwise a scratch directory under `target/` is created and removed
/// on success. Returns a process exit code.
pub fn run(dir: Option<&Path>) -> i32 {
    let scratch;
    let (dir, ephemeral) = match dir {
        Some(d) => (d, false),
        None => {
            scratch = workspace_root()
                .join("target")
                .join(format!("server-smoke-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&scratch);
            (scratch.as_path(), true)
        }
    };
    let outcome = run_inner(dir);
    if ephemeral && outcome.is_ok() {
        let _ = std::fs::remove_dir_all(dir);
    }
    match outcome {
        Ok(()) => {
            println!("server-smoke: PASS");
            0
        }
        Err(why) => {
            eprintln!("server-smoke: FAIL: {why}");
            1
        }
    }
}
