//! LabBase-backed base predicates and the Section-8 update predicates.
//!
//! Reads (the paper's query families):
//!
//! | predicate | modes | meaning |
//! |---|---|---|
//! | `material(M)` | both | M is a material |
//! | `<mat-class>(M)` | both | M is an instance (incl. subclasses) |
//! | `<step-class>(S)` | check | S is a step instance of the class |
//! | `state(M, S)` | all | workflow state (the paper's `state/2`) |
//! | `recent(M, A, V)` | M bound | most-recent value of attribute A |
//! | `recent_at(M, A, T, V)` | M,A,T bound | value as of valid time T |
//! | `history_event(M, S, T)` | M bound | S at valid time T in M's history |
//! | `history_between(M, F, U, S, T)` | M,F,U bound | history restricted to `[F, U]` |
//! | `attr(S, A, V)` | S bound | step attribute |
//! | `involves(S, M)` | either bound | the `involves` relationship |
//! | `valid_time(S, T)` | S bound | event time |
//! | `class_of(M, C)` | M or C bound | material class |
//! | `material_name(M, N)` | all | external name (enumerates when free) |
//! | `step_class(S, C)` | S bound | step class name |
//! | `in_set(Set, M)` | Set bound | set membership |
//! | `set_name(Set)` | both | existing set names |
//! | `state_count(S, N)` | S bound | materials currently in state S |
//!
//! Updates (require a session transaction; paper Section 8):
//! `assert(state(M,S))`, `retract(state(M,S))`, `assert(in_set(Set,M))`,
//! `retract(in_set(Set,M))`, `create_material(Class, Name, T, M)`,
//! `record_step(Class, T, Materials, Attrs, S)`, `retract_step(S)`,
//! `create_set(Name)`.

use labbase::{MaterialId, StepId, Value};
use labflow_storage::Oid;

use crate::ast::Term;
use crate::error::{LqlError, Result};
use crate::eval::Session;

type Tuples = Vec<Vec<Term>>;

fn text(t: &Term) -> Option<&str> {
    match t {
        Term::Atom(s) | Term::Str(s) => Some(s),
        _ => None,
    }
}

fn oid(t: &Term) -> Option<Oid> {
    match t {
        Term::Oid(o) => Some(*o),
        _ => None,
    }
}

fn int(t: &Term) -> Option<i64> {
    match t {
        Term::Int(i) => Some(*i),
        _ => None,
    }
}

fn ok(tuples: Tuples) -> Result<Option<Tuples>> {
    Ok(Some(tuples))
}

fn succeed(args: &[Term]) -> Result<Option<Tuples>> {
    Ok(Some(vec![args.to_vec()]))
}

fn fail() -> Result<Option<Tuples>> {
    Ok(Some(Vec::new()))
}

/// Try to answer `name/arity` as a database predicate. Returns
/// `Ok(None)` if the functor is not a database predicate at all.
pub(crate) fn try_db(
    session: &Session<'_>,
    name: &str,
    arity: usize,
    args: &[Term],
) -> Result<Option<Tuples>> {
    let db = session.db();
    // Record reads go through the session's pinned view so one query
    // evaluates against one consistent cut; index-backed lookups
    // (`in_state`, `state_count`, `find_material`, set-name listing)
    // stay on the live in-memory indexes.
    let view = session.view()?;
    match (name, arity) {
        ("material", 1) => match oid(&args[0]) {
            Some(o) => {
                if view.material_exists(MaterialId::from(o))
                    && view.material(MaterialId::from(o)).is_ok()
                {
                    succeed(args)
                } else {
                    fail()
                }
            }
            None => {
                let mut tuples = Vec::new();
                let classes: Vec<String> = view.with_catalog(|c| {
                    c.material_classes().iter().map(|mc| mc.name.clone()).collect()
                });
                for class in classes {
                    for m in view.class_extent(&class, false)? {
                        tuples.push(vec![Term::Oid(m.oid())]);
                    }
                }
                ok(tuples)
            }
        },
        ("state", 2) => {
            let m = oid(&args[0]);
            let s = text(&args[1]);
            match (m, s) {
                (Some(m), _) => match view.state_of(MaterialId::from(m))? {
                    Some(state) => ok(vec![vec![Term::Oid(m), Term::Atom(state)]]),
                    None => fail(),
                },
                (None, Some(state)) => {
                    let mats = match session.txn() {
                        Some(t) => db.in_state_in(t, state, usize::MAX)?,
                        None => db.in_state(state, usize::MAX)?,
                    };
                    ok(mats
                        .into_iter()
                        .map(|m| vec![Term::Oid(m.oid()), Term::Atom(state.to_string())])
                        .collect())
                }
                (None, None) => {
                    let census = match session.txn() {
                        Some(t) => db.state_census_in(t)?,
                        None => db.state_census()?,
                    };
                    let mut tuples = Vec::new();
                    for (state, _) in census {
                        let mats = match session.txn() {
                            Some(t) => db.in_state_in(t, &state, usize::MAX)?,
                            None => db.in_state(&state, usize::MAX)?,
                        };
                        for m in mats {
                            tuples.push(vec![Term::Oid(m.oid()), Term::Atom(state.clone())]);
                        }
                    }
                    ok(tuples)
                }
            }
        }
        ("state_count", 2) => {
            let state = text(&args[0]).ok_or_else(|| {
                LqlError::Eval("state_count/2: state must be bound".into())
            })?;
            let n = match session.txn() {
                Some(t) => db.count_in_state_in(t, state)?,
                None => db.count_in_state(state)?,
            } as i64;
            ok(vec![vec![Term::Atom(state.to_string()), Term::Int(n)]])
        }
        ("recent", 3) => {
            let m = oid(&args[0]).ok_or_else(|| {
                LqlError::Eval("recent/3: material must be bound".into())
            })?;
            let mid = MaterialId::from(m);
            match text(&args[1]) {
                Some(attr) => match view.recent(mid, attr)? {
                    Some(r) => ok(vec![vec![
                        Term::Oid(m),
                        Term::Atom(attr.to_string()),
                        Term::from_value(&r.value),
                    ]]),
                    None => fail(),
                },
                None => {
                    let all = view.recent_all(mid)?;
                    ok(all
                        .into_iter()
                        .map(|(attr, r)| {
                            vec![Term::Oid(m), Term::Atom(attr), Term::from_value(&r.value)]
                        })
                        .collect())
                }
            }
        }
        ("recent_at", 4) => {
            let m = oid(&args[0])
                .ok_or_else(|| LqlError::Eval("recent_at/4: material must be bound".into()))?;
            let attr = text(&args[1])
                .ok_or_else(|| LqlError::Eval("recent_at/4: attribute must be bound".into()))?;
            let at = int(&args[2])
                .ok_or_else(|| LqlError::Eval("recent_at/4: time must be bound".into()))?;
            match view.as_of(MaterialId::from(m), attr, at)? {
                Some((_t, v)) => ok(vec![vec![
                    Term::Oid(m),
                    Term::Atom(attr.to_string()),
                    Term::Int(at),
                    Term::from_value(&v),
                ]]),
                None => fail(),
            }
        }
        ("history_between", 5) => {
            let m = oid(&args[0]).ok_or_else(|| {
                LqlError::Eval("history_between/5: material must be bound".into())
            })?;
            let from = int(&args[1])
                .ok_or_else(|| LqlError::Eval("history_between/5: from must be bound".into()))?;
            let to = int(&args[2])
                .ok_or_else(|| LqlError::Eval("history_between/5: to must be bound".into()))?;
            let entries = view.history_between(MaterialId::from(m), from, to)?;
            ok(entries
                .into_iter()
                .map(|e| {
                    vec![
                        Term::Oid(m),
                        Term::Int(from),
                        Term::Int(to),
                        Term::Oid(e.step.oid()),
                        Term::Int(e.valid_time),
                    ]
                })
                .collect())
        }
        ("history_event", 3) => {
            let m = oid(&args[0]).ok_or_else(|| {
                LqlError::Eval("history_event/3: material must be bound".into())
            })?;
            let entries = view.history(MaterialId::from(m))?;
            ok(entries
                .into_iter()
                .map(|e| vec![Term::Oid(m), Term::Oid(e.step.oid()), Term::Int(e.valid_time)])
                .collect())
        }
        ("attr", 3) => {
            let s = oid(&args[0])
                .ok_or_else(|| LqlError::Eval("attr/3: step must be bound".into()))?;
            let info = view.step(StepId::from(s))?;
            let tuples = info
                .attrs
                .iter()
                .filter(|(n, _)| text(&args[1]).is_none_or(|want| want == n))
                .map(|(n, v)| vec![Term::Oid(s), Term::Atom(n.clone()), Term::from_value(v)])
                .collect();
            ok(tuples)
        }
        ("involves", 2) => {
            if let Some(s) = oid(&args[0]) {
                let info = view.step(StepId::from(s))?;
                return ok(info
                    .materials
                    .into_iter()
                    .map(|m| vec![Term::Oid(s), Term::Oid(m.oid())])
                    .collect());
            }
            if let Some(m) = oid(&args[1]) {
                let entries = view.history(MaterialId::from(m))?;
                return ok(entries
                    .into_iter()
                    .map(|e| vec![Term::Oid(e.step.oid()), Term::Oid(m)])
                    .collect());
            }
            Err(LqlError::Eval("involves/2: step or material must be bound".into()))
        }
        ("valid_time", 2) => {
            let s = oid(&args[0])
                .ok_or_else(|| LqlError::Eval("valid_time/2: step must be bound".into()))?;
            let info = view.step(StepId::from(s))?;
            ok(vec![vec![Term::Oid(s), Term::Int(info.valid_time)]])
        }
        ("class_of", 2) => {
            if let Some(m) = oid(&args[0]) {
                let info = view.material(MaterialId::from(m))?;
                return ok(vec![vec![Term::Oid(m), Term::Atom(info.class)]]);
            }
            if let Some(class) = text(&args[1]) {
                let mats = view.class_extent(class, true)?;
                return ok(mats
                    .into_iter()
                    .map(|m| vec![Term::Oid(m.oid()), Term::Atom(class.to_string())])
                    .collect());
            }
            Err(LqlError::Eval("class_of/2: material or class must be bound".into()))
        }
        ("material_name", 2) => {
            if let Some(m) = oid(&args[0]) {
                let info = view.material(MaterialId::from(m))?;
                return ok(vec![vec![Term::Oid(m), Term::Str(info.name)]]);
            }
            if let Some(n) = text(&args[1]) {
                return match db.find_material(n)? {
                    Some(m) => ok(vec![vec![Term::Oid(m.oid()), Term::Str(n.to_string())]]),
                    None => fail(),
                };
            }
            // Both free: enumerate every material with its name.
            let mut tuples = Vec::new();
            let classes: Vec<String> = view.with_catalog(|c| {
                c.material_classes().iter().map(|mc| mc.name.clone()).collect()
            });
            for class in classes {
                for m in view.class_extent(&class, false)? {
                    let info = view.material(m)?;
                    tuples.push(vec![Term::Oid(m.oid()), Term::Str(info.name)]);
                }
            }
            ok(tuples)
        }
        ("step_class", 2) => {
            let s = oid(&args[0])
                .ok_or_else(|| LqlError::Eval("step_class/2: step must be bound".into()))?;
            let info = view.step(StepId::from(s))?;
            ok(vec![vec![Term::Oid(s), Term::Atom(info.class)]])
        }
        ("in_set", 2) => {
            let set = text(&args[0])
                .ok_or_else(|| LqlError::Eval("in_set/2: set name must be bound".into()))?;
            match view.set_members(set) {
                Ok(members) => {
                    let tuples = members
                        .into_iter()
                        .filter(|m| oid(&args[1]).is_none_or(|want| want == m.oid()))
                        .map(|m| vec![Term::Atom(set.to_string()), Term::Oid(m.oid())])
                        .collect();
                    ok(tuples)
                }
                Err(labbase::LabError::UnknownSet(_)) => fail(),
                Err(e) => Err(e.into()),
            }
        }
        ("set_name", 1) => {
            let names = view.set_names();
            ok(names.into_iter().map(|n| vec![Term::Atom(n)]).collect())
        }

        // ---- updates (paper Section 8) ---------------------------------
        ("assert", 1) => apply_assert(session, &args[0], true),
        ("retract", 1) => apply_assert(session, &args[0], false),
        ("create_material", 4) => {
            let txn = session.require_txn()?;
            let class = text(&args[0]).ok_or_else(|| {
                LqlError::Eval("create_material/4: class must be bound".into())
            })?;
            let mname = text(&args[1]).ok_or_else(|| {
                LqlError::Eval("create_material/4: name must be bound".into())
            })?;
            let t = int(&args[2])
                .ok_or_else(|| LqlError::Eval("create_material/4: time must be bound".into()))?;
            let m = db.create_material(txn, class, mname, t)?;
            ok(vec![vec![
                Term::Atom(class.to_string()),
                Term::Str(mname.to_string()),
                Term::Int(t),
                Term::Oid(m.oid()),
            ]])
        }
        ("record_step", 5) => {
            let txn = session.require_txn()?;
            let class = text(&args[0])
                .ok_or_else(|| LqlError::Eval("record_step/5: class must be bound".into()))?;
            let t = int(&args[1])
                .ok_or_else(|| LqlError::Eval("record_step/5: time must be bound".into()))?;
            let mats = list_of_materials(&args[2])?;
            let attrs = attr_list(&args[3])?;
            let s = db.record_step(txn, class, t, &mats, attrs)?;
            let mut tuple = args.to_vec();
            tuple[4] = Term::Oid(s.oid());
            ok(vec![tuple])
        }
        ("retract_step", 1) => {
            let txn = session.require_txn()?;
            let s = oid(&args[0])
                .ok_or_else(|| LqlError::Eval("retract_step/1: step must be bound".into()))?;
            db.retract_step(txn, StepId::from(s))?;
            succeed(args)
        }
        ("create_set", 1) => {
            let txn = session.require_txn()?;
            let set = text(&args[0])
                .ok_or_else(|| LqlError::Eval("create_set/1: name must be bound".into()))?;
            db.create_set(txn, set)?;
            succeed(args)
        }

        // Material / step class predicates by name.
        (class_name, 1) => {
            enum Kind {
                Material,
                Step,
            }
            let kind = view.with_catalog(|c| {
                if c.material_class(class_name).is_ok() {
                    Some(Kind::Material)
                } else if c.step_class(class_name).is_ok() {
                    Some(Kind::Step)
                } else {
                    None
                }
            });
            match kind {
                Some(Kind::Material) => match oid(&args[0]) {
                    Some(o) => {
                        let is = view
                            .material(MaterialId::from(o))
                            .map(|info| {
                                view.with_catalog(|c| {
                                    c.material_class(class_name)
                                        .map(|target| c.is_a(info.class_id, target.id))
                                        .unwrap_or(false)
                                })
                            })
                            .unwrap_or(false);
                        if is {
                            succeed(args)
                        } else {
                            fail()
                        }
                    }
                    None => {
                        let mats = view.class_extent(class_name, true)?;
                        ok(mats.into_iter().map(|m| vec![Term::Oid(m.oid())]).collect())
                    }
                },
                Some(Kind::Step) => match oid(&args[0]) {
                    Some(o) => {
                        let is = view
                            .step(StepId::from(o))
                            .map(|info| info.class == class_name)
                            .unwrap_or(false);
                        if is {
                            succeed(args)
                        } else {
                            fail()
                        }
                    }
                    None => Err(LqlError::Eval(format!(
                        "{class_name}/1: step instances cannot be enumerated; \
                         use history_event/3"
                    ))),
                },
                None => Ok(None),
            }
        }
        _ => Ok(None),
    }
}

fn apply_assert(session: &Session<'_>, fact: &Term, assert: bool) -> Result<Option<Tuples>> {
    let db = session.db();
    let txn = session.require_txn()?;
    let now = session.now();
    match fact {
        Term::Compound(f, fargs) if f == "state" && fargs.len() == 2 => {
            let m = oid(&fargs[0])
                .ok_or_else(|| LqlError::Eval("state/2: material must be bound".into()))?;
            let s = text(&fargs[1])
                .ok_or_else(|| LqlError::Eval("state/2: state must be bound".into()))?;
            let mid = MaterialId::from(m);
            if assert {
                db.set_state(txn, mid, s, now)?;
                succeed(std::slice::from_ref(fact))
            } else {
                // retract(state(M,S)) fails unless M is currently in S —
                // this is how the paper's transition rules guard moves.
                // Read through the transaction so a transition made
                // earlier in the same update rule is observed.
                match db.state_of_in(txn, mid)? {
                    Some(cur) if cur == s => {
                        db.clear_state(txn, mid, now)?;
                        succeed(std::slice::from_ref(fact))
                    }
                    _ => fail(),
                }
            }
        }
        Term::Compound(f, fargs) if f == "in_set" && fargs.len() == 2 => {
            let set = text(&fargs[0])
                .ok_or_else(|| LqlError::Eval("in_set/2: set must be bound".into()))?;
            let m = oid(&fargs[1])
                .ok_or_else(|| LqlError::Eval("in_set/2: material must be bound".into()))?;
            if assert {
                db.add_to_set(txn, set, MaterialId::from(m))?;
                succeed(std::slice::from_ref(fact))
            } else if db.remove_from_set(txn, set, MaterialId::from(m))? {
                succeed(std::slice::from_ref(fact))
            } else {
                fail()
            }
        }
        other => Err(LqlError::Eval(format!(
            "assert/retract supports state/2 and in_set/2 facts, got {other}"
        ))),
    }
}

fn list_of_materials(t: &Term) -> Result<Vec<MaterialId>> {
    match t {
        Term::List(items, None) => items
            .iter()
            .map(|i| {
                oid(i)
                    .map(MaterialId::from)
                    .ok_or_else(|| LqlError::Eval(format!("not a material reference: {i}")))
            })
            .collect(),
        other => Err(LqlError::Eval(format!("expected a list of materials, got {other}"))),
    }
}

fn attr_list(t: &Term) -> Result<Vec<(String, Value)>> {
    let items = match t {
        Term::List(items, None) => items,
        other => return Err(LqlError::Eval(format!("expected an attribute list, got {other}"))),
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Term::Compound(f, fargs) if (f == "=" || f == "attr") && fargs.len() == 2 => {
                let name = text(&fargs[0]).ok_or_else(|| {
                    LqlError::Eval(format!("attribute name must be an atom: {}", fargs[0]))
                })?;
                let value = fargs[1].to_value().ok_or_else(|| {
                    LqlError::Eval(format!("attribute value must be ground: {}", fargs[1]))
                })?;
                out.push((name.to_string(), value));
            }
            other => {
                return Err(LqlError::Eval(format!(
                    "attribute entries must be name = value, got {other}"
                )))
            }
        }
    }
    Ok(out)
}
