//! The LQL evaluator: SLD resolution over user rules, builtins, and
//! LabBase-backed database predicates.
//!
//! "LabBase provides a historical query language … a deductive language
//! in the tradition of Datalog and Prolog" (paper Sections 6 and 8). The
//! evaluator is top-down with backtracking, negation as failure, `setof`
//! (with duplicate elimination, as the paper specifies), and the update
//! predicates `assert`/`retract`/`create_*` of Section 8.

use std::cell::Cell;

use labbase::{LabBase, View};
use labflow_storage::TxnId;

use crate::ast::{Rule, Term};
use crate::dbpred;
use crate::error::{LqlError, Result};
use crate::parser::{parse_program, parse_query};
use crate::unify::{cmp_terms, Subst};

/// Resolved bindings for one solution: `(variable, value)` pairs in
/// first-appearance order, excluding `_`-prefixed variables.
pub type Bindings = Vec<(String, Term)>;

/// Library predicates defined in LQL itself.
pub const PRELUDE: &str = r#"
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

last([X], X).
last([_|T], X) :- last(T, X).

not_empty([_|_]).

reverse([], []).
reverse([H|T], R) :- reverse(T, RT), append(RT, [H], R).

% forall(Cond, Action): Action holds for every solution of Cond.
forall(C, A) :- \+ (C, \+ A).
"#;

/// A rule base (views).
#[derive(Default, Clone)]
pub struct Program {
    rules: Vec<Rule>,
}

impl Program {
    /// An empty program (no prelude).
    pub fn empty() -> Program {
        Program::default()
    }

    /// A program pre-loaded with the [`PRELUDE`] library.
    pub fn new() -> Program {
        let mut p = Program::default();
        p.load(PRELUDE).expect("prelude parses");
        p
    }

    /// Parse and add clauses; returns how many were added.
    pub fn load(&mut self, src: &str) -> Result<usize> {
        let rules = parse_program(src)?;
        let n = rules.len();
        self.rules.extend(rules);
        Ok(n)
    }

    /// Add one clause.
    pub fn add(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether any clause defines `name/arity` (used by tools to check
    /// view coverage before running a query mix).
    pub fn defines(&self, name: &str, arity: usize) -> bool {
        self.rules.iter().any(|r| r.head.functor() == Some((name, arity)))
    }

    fn matching(&self, name: &str, arity: usize) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.head.functor() == Some((name, arity)))
            .collect()
    }

}

/// An evaluation session: a database handle, a rule base, and an
/// optional open transaction for update predicates.
pub struct Session<'a> {
    db: &'a LabBase,
    program: &'a Program,
    txn: Cell<Option<TxnId>>,
    now: Cell<i64>,
    depth_limit: usize,
    rename_counter: Cell<u64>,
    /// The read view database predicates evaluate against. Populated on
    /// the evaluation thread per [`run_goals`](Session::run_goals) call:
    /// a freshly pinned snapshot for read-only sessions (so one query
    /// reads one consistent cut, however long it runs), or the open
    /// transaction's own view when update predicates are in play.
    view: Option<View<'a>>,
}

impl<'a> Session<'a> {
    /// A read-only session.
    pub fn new(db: &'a LabBase, program: &'a Program) -> Session<'a> {
        Session {
            db,
            program,
            txn: Cell::new(None),
            now: Cell::new(0),
            depth_limit: 4_000,
            rename_counter: Cell::new(0),
            view: None,
        }
    }

    /// A session whose update predicates run inside `txn`.
    pub fn with_txn(db: &'a LabBase, program: &'a Program, txn: TxnId) -> Session<'a> {
        let s = Session::new(db, program);
        s.txn.set(Some(txn));
        s
    }

    /// The database handle.
    pub fn db(&self) -> &LabBase {
        self.db
    }

    /// Override the resolution depth limit (default 4000). The limit
    /// bounds solution-path length, guarding against runaway recursion
    /// in user views.
    pub fn set_depth_limit(&mut self, limit: usize) {
        self.depth_limit = limit;
    }

    /// The open transaction, if any.
    pub fn txn(&self) -> Option<TxnId> {
        self.txn.get()
    }

    /// The session's current valid time, stamped onto `assert`/`retract`
    /// state transitions.
    pub fn now(&self) -> i64 {
        self.now.get()
    }

    /// Advance the session's valid-time clock.
    pub fn set_now(&self, t: i64) {
        self.now.set(t);
    }

    /// Require a transaction (update predicates).
    pub(crate) fn require_txn(&self) -> Result<TxnId> {
        self.txn.get().ok_or(LqlError::NoTransaction)
    }

    /// The read view database predicates resolve against. Present on the
    /// evaluation thread; absent only on the outer facade session, which
    /// never evaluates goals itself.
    pub(crate) fn view(&self) -> Result<&View<'a>> {
        self.view
            .as_ref()
            .ok_or_else(|| LqlError::Eval("internal: no read view on this session".into()))
    }

    /// Run a query, returning all solutions.
    pub fn query(&self, src: &str) -> Result<Vec<Bindings>> {
        self.query_limit(src, usize::MAX)
    }

    /// Run a query, returning at most `limit` solutions.
    pub fn query_limit(&self, src: &str, limit: usize) -> Result<Vec<Bindings>> {
        let goals = parse_query(src)?;
        self.run_goals(&goals, limit)
    }

    /// Whether the query has at least one solution.
    pub fn prove(&self, src: &str) -> Result<bool> {
        Ok(!self.query_limit(src, 1)?.is_empty())
    }

    /// Run pre-parsed goals.
    ///
    /// Evaluation runs on a dedicated thread with a large stack: SLD
    /// resolution recurses once per goal on the solution path, and debug
    /// builds have fat frames. The spawn cost (~tens of µs) is noise next
    /// to any query that touches the database.
    pub fn run_goals(&self, goals: &[Term], limit: usize) -> Result<Vec<Bindings>> {
        let db = self.db;
        let program = self.program;
        let txn = self.txn.get();
        let now = self.now.get();
        let depth_limit = self.depth_limit;
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("lql-eval".into())
                .stack_size(128 * 1024 * 1024)
                .spawn_scoped(scope, move || {
                    // Pin the read cut for this evaluation: the open
                    // transaction's own view if updates are in play,
                    // else a fresh snapshot held for the whole query.
                    let view = match txn {
                        Some(t) => db.view_in(t),
                        None => db.view()?,
                    };
                    let inner = Session {
                        db,
                        program,
                        txn: Cell::new(txn),
                        now: Cell::new(now),
                        depth_limit,
                        rename_counter: Cell::new(0),
                        view: Some(view),
                    };
                    inner.run_goals_inner(goals, limit)
                })
                .map_err(|e| LqlError::Eval(format!("could not spawn eval thread: {e}")))?
                .join()
                .map_err(|_| LqlError::Eval("evaluation thread panicked".into()))?
        })
    }

    fn run_goals_inner(&self, goals: &[Term], limit: usize) -> Result<Vec<Bindings>> {
        let mut var_names: Vec<String> = Vec::new();
        for g in goals {
            let mut vs = Vec::new();
            g.vars(&mut vs);
            for v in vs {
                if !v.starts_with('_') && !var_names.contains(&v) {
                    var_names.push(v);
                }
            }
        }
        let mut out: Vec<Bindings> = Vec::new();
        if limit == 0 {
            return Ok(out);
        }
        let mut subst = Subst::new();
        self.solve(goals, &mut subst, 0, &mut |s: &mut Subst| {
            let row: Bindings = var_names
                .iter()
                .map(|v| (v.clone(), s.resolve(&Term::Var(v.clone()))))
                .collect();
            out.push(row);
            Ok(out.len() < limit)
        })?;
        Ok(out)
    }

    fn fresh_suffix(&self) -> u64 {
        let n = self.rename_counter.get() + 1;
        self.rename_counter.set(n);
        n
    }

    fn rename_term(term: &Term, suffix: u64) -> Term {
        match term {
            Term::Var(v) => Term::Var(format!("{v}~{suffix}")),
            Term::List(items, tail) => Term::List(
                items.iter().map(|t| Self::rename_term(t, suffix)).collect(),
                tail.as_ref().map(|t| Box::new(Self::rename_term(t, suffix))),
            ),
            Term::Compound(name, args) => Term::Compound(
                name.clone(),
                args.iter().map(|a| Self::rename_term(a, suffix)).collect(),
            ),
            other => other.clone(),
        }
    }

    /// Core SLD loop. `emit` is called per solution and returns `false`
    /// to stop the search; `solve` returns `false` when a stop was
    /// requested (propagated outward).
    pub(crate) fn solve(
        &self,
        goals: &[Term],
        subst: &mut Subst,
        depth: usize,
        emit: &mut dyn FnMut(&mut Subst) -> Result<bool>,
    ) -> Result<bool> {
        if depth > self.depth_limit {
            return Err(LqlError::DepthLimit(self.depth_limit));
        }
        let Some(goal) = goals.first() else {
            return emit(subst);
        };
        let rest = &goals[1..];
        let goal = subst.walk(goal);
        let Some((name, arity)) = goal.functor() else {
            return Err(LqlError::Eval(format!("goal is not callable: {goal}")));
        };
        let args: &[Term] = match &goal {
            Term::Compound(_, args) => args,
            _ => &[],
        };

        match (name, arity) {
            (",", 2) => {
                let mut new_goals = Vec::with_capacity(rest.len() + 2);
                new_goals.push(args[0].clone());
                new_goals.push(args[1].clone());
                new_goals.extend_from_slice(rest);
                self.solve(&new_goals, subst, depth + 1, emit)
            }
            (";", 2) => {
                for branch in args {
                    let mut new_goals = Vec::with_capacity(rest.len() + 1);
                    new_goals.push(branch.clone());
                    new_goals.extend_from_slice(rest);
                    let mark = subst.mark();
                    let cont = self.solve(&new_goals, subst, depth + 1, emit)?;
                    subst.undo_to(mark);
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            ("true", 0) => self.solve(rest, subst, depth + 1, emit),
            ("fail", 0) | ("false", 0) => Ok(true),
            ("\\+", 1) => {
                let mut found = false;
                let mark = subst.mark();
                self.solve(
                    std::slice::from_ref(&args[0]),
                    subst,
                    depth + 1,
                    &mut |_s| {
                        found = true;
                        Ok(false)
                    },
                )?;
                subst.undo_to(mark);
                if found {
                    Ok(true)
                } else {
                    self.solve(rest, subst, depth + 1, emit)
                }
            }
            ("once", 1) => {
                let mut cont = true;
                let mut done = false;
                let mark = subst.mark();
                self.solve(std::slice::from_ref(&args[0]), subst, depth + 1, &mut |s| {
                    done = true;
                    cont = self.solve(rest, s, depth + 1, emit)?;
                    Ok(false)
                })?;
                subst.undo_to(mark);
                let _ = done;
                Ok(cont)
            }
            ("=", 2) => {
                let mark = subst.mark();
                let cont = if subst.unify(&args[0], &args[1]) {
                    self.solve(rest, subst, depth + 1, emit)?
                } else {
                    true
                };
                subst.undo_to(mark);
                Ok(cont)
            }
            ("\\=", 2) => {
                let mark = subst.mark();
                let unified = subst.unify(&args[0], &args[1]);
                subst.undo_to(mark);
                if unified {
                    Ok(true)
                } else {
                    self.solve(rest, subst, depth + 1, emit)
                }
            }
            ("==", 2) | ("\\==", 2) => {
                let a = subst.resolve(&args[0]);
                let b = subst.resolve(&args[1]);
                let eq = a == b;
                if (name == "==") == eq {
                    self.solve(rest, subst, depth + 1, emit)
                } else {
                    Ok(true)
                }
            }
            ("<", 2) | ("=<", 2) | (">", 2) | (">=", 2) => {
                let holds = self.compare(name, &args[0], &args[1], subst)?;
                if holds {
                    self.solve(rest, subst, depth + 1, emit)
                } else {
                    Ok(true)
                }
            }
            ("is", 2) => {
                let value = self.eval_arith(&args[1], subst)?;
                let mark = subst.mark();
                let cont = if subst.unify(&args[0], &value) {
                    self.solve(rest, subst, depth + 1, emit)?
                } else {
                    true
                };
                subst.undo_to(mark);
                Ok(cont)
            }
            ("findall", 3) | ("setof", 3) => {
                let mut collected: Vec<Term> = Vec::new();
                let mark = subst.mark();
                let template = args[0].clone();
                self.solve(std::slice::from_ref(&args[1]), subst, depth + 1, &mut |s| {
                    collected.push(s.resolve(&template));
                    Ok(true)
                })?;
                subst.undo_to(mark);
                if name == "setof" {
                    // The paper: "similar to findall except that duplicate
                    // query answers are eliminated".
                    collected.sort_by(cmp_terms);
                    collected.dedup();
                    if collected.is_empty() {
                        return Ok(true); // standard setof fails on empty
                    }
                }
                let mark = subst.mark();
                let cont = if subst.unify(&args[2], &Term::list(collected)) {
                    self.solve(rest, subst, depth + 1, emit)?
                } else {
                    true
                };
                subst.undo_to(mark);
                Ok(cont)
            }
            ("sum", 3) | ("min_of", 3) | ("max_of", 3) => {
                // Aggregates over a goal's solutions: sum/min/max of the
                // template's arithmetic value.
                let mut values: Vec<Term> = Vec::new();
                let mark = subst.mark();
                let template = args[0].clone();
                self.solve(std::slice::from_ref(&args[1]), subst, depth + 1, &mut |s| {
                    values.push(s.resolve(&template));
                    Ok(true)
                })?;
                subst.undo_to(mark);
                let result: Option<Term> = match name {
                    "sum" => {
                        let mut acc = Term::Int(0);
                        for v in &values {
                            acc = self.eval_arith(
                                &Term::Compound("+".into(), vec![acc, v.clone()]),
                                subst,
                            )?;
                        }
                        Some(acc)
                    }
                    _ => {
                        let op = if name == "min_of" { "min" } else { "max" };
                        let mut it = values.iter();
                        match it.next() {
                            None => None, // min/max of nothing fails
                            Some(first) => {
                                let mut acc = self.eval_arith(first, subst)?;
                                for v in it {
                                    acc = self.eval_arith(
                                        &Term::Compound(op.into(), vec![acc, v.clone()]),
                                        subst,
                                    )?;
                                }
                                Some(acc)
                            }
                        }
                    }
                };
                match result {
                    None => Ok(true),
                    Some(value) => {
                        let mark = subst.mark();
                        let cont = if subst.unify(&args[2], &value) {
                            self.solve(rest, subst, depth + 1, emit)?
                        } else {
                            true
                        };
                        subst.undo_to(mark);
                        Ok(cont)
                    }
                }
            }
            ("between", 3) => {
                let lo = self.eval_arith(&args[0], subst)?;
                let hi = self.eval_arith(&args[1], subst)?;
                let (Term::Int(lo), Term::Int(hi)) = (&lo, &hi) else {
                    return Err(LqlError::Eval("between/3 needs integer bounds".into()));
                };
                for x in *lo..=*hi {
                    let mark = subst.mark();
                    if subst.unify(&args[2], &Term::Int(x)) {
                        let cont = self.solve(rest, subst, depth + 1, emit)?;
                        if !cont {
                            subst.undo_to(mark);
                            return Ok(false);
                        }
                    }
                    subst.undo_to(mark);
                }
                Ok(true)
            }
            ("nth0", 3) => {
                let list = subst.resolve(&args[1]);
                let Term::List(items, None) = list else {
                    return Err(LqlError::Eval("nth0/3 needs a proper list".into()));
                };
                for (i, item) in items.iter().enumerate() {
                    let mark = subst.mark();
                    if subst.unify(&args[0], &Term::Int(i as i64))
                        && subst.unify(&args[2], item)
                    {
                        let cont = self.solve(rest, subst, depth + 1, emit)?;
                        if !cont {
                            subst.undo_to(mark);
                            return Ok(false);
                        }
                    }
                    subst.undo_to(mark);
                }
                Ok(true)
            }
            ("sort", 2) | ("msort", 2) => {
                let list = subst.resolve(&args[0]);
                let Term::List(mut items, None) = list else {
                    return Err(LqlError::Eval(format!("{name}/2 needs a proper list")));
                };
                items.sort_by(cmp_terms);
                if name == "sort" {
                    items.dedup();
                }
                let mark = subst.mark();
                let cont = if subst.unify(&args[1], &Term::list(items)) {
                    self.solve(rest, subst, depth + 1, emit)?
                } else {
                    true
                };
                subst.undo_to(mark);
                Ok(cont)
            }
            ("count", 2) => {
                let mut n: i64 = 0;
                let mark = subst.mark();
                self.solve(std::slice::from_ref(&args[0]), subst, depth + 1, &mut |_s| {
                    n += 1;
                    Ok(true)
                })?;
                subst.undo_to(mark);
                let mark = subst.mark();
                let cont = if subst.unify(&args[1], &Term::Int(n)) {
                    self.solve(rest, subst, depth + 1, emit)?
                } else {
                    true
                };
                subst.undo_to(mark);
                Ok(cont)
            }
            ("length", 2) => {
                let list = subst.resolve(&args[0]);
                match list {
                    Term::List(items, None) => {
                        let mark = subst.mark();
                        let cont = if subst.unify(&args[1], &Term::Int(items.len() as i64)) {
                            self.solve(rest, subst, depth + 1, emit)?
                        } else {
                            true
                        };
                        subst.undo_to(mark);
                        Ok(cont)
                    }
                    other => Err(LqlError::Eval(format!("length/2 needs a proper list, got {other}"))),
                }
            }
            _ => self.solve_user_or_db(&goal, name, arity, args, rest, subst, depth, emit),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_user_or_db(
        &self,
        goal: &Term,
        name: &str,
        arity: usize,
        args: &[Term],
        rest: &[Term],
        subst: &mut Subst,
        depth: usize,
        emit: &mut dyn FnMut(&mut Subst) -> Result<bool>,
    ) -> Result<bool> {
        // 1. User rules (views) take precedence, as in LabBase where views
        //    may shadow base predicates.
        let rules = self.program.matching(name, arity);
        if !rules.is_empty() {
            let rules: Vec<Rule> = rules.into_iter().cloned().collect();
            for rule in rules {
                let suffix = self.fresh_suffix();
                let head = Self::rename_term(&rule.head, suffix);
                let mark = subst.mark();
                if subst.unify(goal, &head) {
                    let mut new_goals: Vec<Term> = rule
                        .body
                        .iter()
                        .map(|g| Self::rename_term(g, suffix))
                        .collect();
                    new_goals.extend_from_slice(rest);
                    let cont = self.solve(&new_goals, subst, depth + 1, emit)?;
                    if !cont {
                        subst.undo_to(mark);
                        return Ok(false);
                    }
                }
                subst.undo_to(mark);
            }
            return Ok(true);
        }

        // 2. Database predicates.
        let resolved: Vec<Term> = args.iter().map(|a| subst.resolve(a)).collect();
        if let Some(tuples) = dbpred::try_db(self, name, arity, &resolved)? {
            for tuple in tuples {
                let mark = subst.mark();
                let mut ok = true;
                for (arg, value) in args.iter().zip(&tuple) {
                    if !subst.unify(arg, value) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let cont = self.solve(rest, subst, depth + 1, emit)?;
                    if !cont {
                        subst.undo_to(mark);
                        return Ok(false);
                    }
                }
                subst.undo_to(mark);
            }
            return Ok(true);
        }

        Err(LqlError::Eval(format!("unknown predicate {name}/{arity}")))
    }

    fn compare(&self, op: &str, a: &Term, b: &Term, subst: &Subst) -> Result<bool> {
        let a = self.eval_arith(a, subst)?;
        let b = self.eval_arith(b, subst)?;
        let (x, y) = match (&a, &b) {
            (Term::Int(x), Term::Int(y)) => (*x as f64, *y as f64),
            (Term::Int(x), Term::Real(y)) => (*x as f64, *y),
            (Term::Real(x), Term::Int(y)) => (*x, *y as f64),
            (Term::Real(x), Term::Real(y)) => (*x, *y),
            _ => return Err(LqlError::Eval(format!("cannot compare {a} {op} {b}"))),
        };
        Ok(match op {
            "<" => x < y,
            "=<" => x <= y,
            ">" => x > y,
            ">=" => x >= y,
            _ => unreachable!(),
        })
    }

    /// Evaluate an arithmetic expression to an Int or Real term.
    pub(crate) fn eval_arith(&self, term: &Term, subst: &Subst) -> Result<Term> {
        let t = subst.walk(term);
        match &t {
            Term::Int(_) | Term::Real(_) => Ok(t),
            Term::Var(v) => Err(LqlError::Eval(format!("unbound variable {v} in arithmetic"))),
            Term::Compound(op, args) if args.len() == 2 => {
                let a = self.eval_arith(&args[0], subst)?;
                let b = self.eval_arith(&args[1], subst)?;
                match (op.as_str(), &a, &b) {
                    ("+", Term::Int(x), Term::Int(y)) => Ok(Term::Int(x.wrapping_add(*y))),
                    ("-", Term::Int(x), Term::Int(y)) => Ok(Term::Int(x.wrapping_sub(*y))),
                    ("*", Term::Int(x), Term::Int(y)) => Ok(Term::Int(x.wrapping_mul(*y))),
                    ("/", Term::Int(x), Term::Int(y)) => {
                        if *y == 0 {
                            Err(LqlError::Eval("division by zero".into()))
                        } else {
                            Ok(Term::Int(x / y))
                        }
                    }
                    ("mod", Term::Int(x), Term::Int(y)) => {
                        if *y == 0 {
                            Err(LqlError::Eval("mod by zero".into()))
                        } else {
                            Ok(Term::Int(x.rem_euclid(*y)))
                        }
                    }
                    ("min", Term::Int(x), Term::Int(y)) => Ok(Term::Int(*x.min(y))),
                    ("max", Term::Int(x), Term::Int(y)) => Ok(Term::Int(*x.max(y))),
                    (op, a, b) => {
                        let x = Self::as_f64(a)?;
                        let y = Self::as_f64(b)?;
                        let v = match op {
                            "+" => x + y,
                            "-" => x - y,
                            "*" => x * y,
                            "/" => {
                                if y == 0.0 {
                                    return Err(LqlError::Eval("division by zero".into()));
                                }
                                x / y
                            }
                            "min" => x.min(y),
                            "max" => x.max(y),
                            other => {
                                return Err(LqlError::Eval(format!(
                                    "unknown arithmetic operator {other}"
                                )))
                            }
                        };
                        Ok(Term::Real(v))
                    }
                }
            }
            Term::Compound(op, args) if args.len() == 1 && op == "abs" => {
                match self.eval_arith(&args[0], subst)? {
                    Term::Int(x) => Ok(Term::Int(x.abs())),
                    Term::Real(x) => Ok(Term::Real(x.abs())),
                    _ => unreachable!(),
                }
            }
            other => Err(LqlError::Eval(format!("not arithmetic: {other}"))),
        }
    }

    fn as_f64(t: &Term) -> Result<f64> {
        match t {
            Term::Int(x) => Ok(*x as f64),
            Term::Real(x) => Ok(*x),
            other => Err(LqlError::Eval(format!("not a number: {other}"))),
        }
    }
}
