//! Recursive-descent parser with operator precedence for goals and
//! arithmetic expressions.
//!
//! Grammar (simplified):
//!
//! ```text
//! program := clause*
//! clause  := term ( ":-" goals )? "."
//! goals   := goal ( "," goal )*
//! goal    := "\+" goal | disjunct
//! disjunct:= expr ( ";" expr )*          % parsed into ';'/2 terms
//! expr    := arith ( cmp-op arith )?     % =, \=, ==, \==, <, =<, >, >=, is
//! arith   := mul ( (+|-) mul )*
//! mul     := primary ( (*|/|mod) primary )*
//! primary := var | atom( args? ) | number | string | list | "(" goal ")"
//! ```

use crate::ast::{Rule, Term};
use crate::error::{LqlError, Result};
use crate::token::{tokenize, Token};

struct Parser {
    toks: Vec<Token>,
    at: usize,
    /// Counter making each `_` a distinct anonymous variable.
    anon: usize,
}

impl Parser {
    fn fresh_anon(&mut self) -> String {
        self.anon += 1;
        format!("_G{}", self.anon)
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.at)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.at).cloned();
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<()> {
        match self.next() {
            Some(t) if &t == tok => Ok(()),
            other => Err(LqlError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    // goal := "\+" goal | cmp_expr
    // Disjunction requires parentheses: (a, b ; c).
    fn goal(&mut self) -> Result<Term> {
        if self.eat(&Token::Naf) {
            let inner = self.goal()?;
            return Ok(Term::Compound("\\+".into(), vec![inner]));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Term> {
        let left = self.arith()?;
        if let Some(Token::Op(op)) = self.peek() {
            let op = op.clone();
            if matches!(op.as_str(), "=" | "\\=" | "==" | "\\==" | "<" | "=<" | ">" | ">=" | "is")
            {
                self.next();
                let right = self.arith()?;
                return Ok(Term::Compound(op, vec![left, right]));
            }
        }
        Ok(left)
    }

    fn arith(&mut self) -> Result<Term> {
        let mut left = self.mul()?;
        loop {
            match self.peek() {
                Some(Token::Op(op)) if op == "+" || op == "-" => {
                    let op = op.clone();
                    self.next();
                    let right = self.mul()?;
                    left = Term::Compound(op, vec![left, right]);
                }
                _ => return Ok(left),
            }
        }
    }

    fn mul(&mut self) -> Result<Term> {
        let mut left = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::Op(op)) if op == "*" || op == "/" || op == "mod" => {
                    let op = op.clone();
                    self.next();
                    let right = self.primary()?;
                    left = Term::Compound(op, vec![left, right]);
                }
                _ => return Ok(left),
            }
        }
    }

    fn primary(&mut self) -> Result<Term> {
        match self.next() {
            Some(Token::Var(v)) => {
                if v == "_" {
                    Ok(Term::Var(self.fresh_anon()))
                } else {
                    Ok(Term::Var(v))
                }
            }
            Some(Token::Int(i)) => Ok(Term::Int(i)),
            Some(Token::Real(r)) => Ok(Term::Real(r)),
            Some(Token::Str(s)) => Ok(Term::Str(s)),
            Some(Token::Atom(name)) => {
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.goal()?);
                            if self.eat(&Token::RParen) {
                                break;
                            }
                            self.expect(&Token::Comma, "',' or ')' in argument list")?;
                        }
                    }
                    Ok(Term::Compound(name, args))
                } else {
                    Ok(Term::Atom(name))
                }
            }
            Some(Token::LBracket) => {
                if self.eat(&Token::RBracket) {
                    return Ok(Term::nil());
                }
                let mut items = Vec::new();
                let mut tail = None;
                loop {
                    items.push(self.goal()?);
                    if self.eat(&Token::RBracket) {
                        break;
                    }
                    if self.eat(&Token::Bar) {
                        tail = Some(Box::new(self.goal()?));
                        self.expect(&Token::RBracket, "']' after list tail")?;
                        break;
                    }
                    self.expect(&Token::Comma, "',' '|' or ']' in list")?;
                }
                Ok(Term::List(items, tail))
            }
            Some(Token::LParen) => {
                // Parenthesized goal group. Standard precedence: ','
                // binds tighter than ';', so (a, b ; c) is ;(,(a,b), c).
                let mut groups = vec![self.conjunction()?];
                while self.eat(&Token::Semicolon) {
                    groups.push(self.conjunction()?);
                }
                self.expect(&Token::RParen, "')'")?;
                let mut it = groups.into_iter().rev();
                let mut acc = it.next().expect("at least one group");
                for g in it {
                    acc = Term::Compound(";".into(), vec![g, acc]);
                }
                Ok(acc)
            }
            Some(Token::Op(op)) if op == "-" => {
                // Unary minus over a primary.
                let inner = self.primary()?;
                match inner {
                    Term::Int(i) => Ok(Term::Int(-i)),
                    Term::Real(r) => Ok(Term::Real(-r)),
                    other => Ok(Term::Compound("-".into(), vec![Term::Int(0), other])),
                }
            }
            other => Err(LqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    /// goal (',' goal)* folded right-associatively into ','/2.
    fn conjunction(&mut self) -> Result<Term> {
        let mut goals = vec![self.goal()?];
        while self.eat(&Token::Comma) {
            goals.push(self.goal()?);
        }
        let mut it = goals.into_iter().rev();
        let mut acc = it.next().expect("at least one goal");
        for g in it {
            acc = Term::Compound(",".into(), vec![g, acc]);
        }
        Ok(acc)
    }

    fn clause(&mut self) -> Result<Rule> {
        let head = self.goal()?;
        if head.functor().is_none() {
            return Err(LqlError::Parse(format!("clause head must be callable, got {head}")));
        }
        let mut body = Vec::new();
        if self.eat(&Token::Neck) {
            loop {
                body.push(self.goal()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::Dot, "'.' at end of clause")?;
        Ok(Rule { head, body })
    }
}

/// Parse a full program (sequence of clauses).
pub fn parse_program(src: &str) -> Result<Vec<Rule>> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, at: 0, anon: 0 };
    let mut rules = Vec::new();
    while p.peek().is_some() {
        // Allow an optional leading `?-` to be nice about pasted queries.
        p.eat(&Token::Query);
        rules.push(p.clause()?);
    }
    Ok(rules)
}

/// Parse a query: a comma-separated goal list, optional `?-` prefix and
/// trailing `.`.
pub fn parse_query(src: &str) -> Result<Vec<Term>> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, at: 0, anon: 0 };
    p.eat(&Token::Query);
    let mut goals = vec![p.goal()?];
    while p.eat(&Token::Comma) {
        goals.push(p.goal()?);
    }
    p.eat(&Token::Dot);
    if let Some(t) = p.peek() {
        return Err(LqlError::Parse(format!("trailing input after query: {t:?}")));
    }
    Ok(goals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_and_rule() {
        let rules = parse_program("parent(a, b).\nanc(X, Y) :- parent(X, Y).").unwrap();
        assert_eq!(rules.len(), 2);
        assert!(rules[0].body.is_empty());
        assert_eq!(rules[1].body.len(), 1);
        assert_eq!(rules[1].head.functor(), Some(("anc", 2)));
    }

    #[test]
    fn paper_rule_parses() {
        // The exact transition rule quoted in the paper (Section 8), with
        // `:-` for the report's arrow.
        let src = "move(M) :- state(M, waiting_for_sequencing), test_sequencing_ok(M), \
                   retract(state(M, waiting_for_sequencing)), \
                   assert(state(M, waiting_for_incorporation)).";
        let rules = parse_program(src).unwrap();
        assert_eq!(rules[0].body.len(), 4);
        assert_eq!(rules[0].body[2].functor(), Some(("retract", 1)));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("X is 1 + 2 * 3 - 4 mod 2").unwrap();
        // is(X, -(+(1, *(2,3)), mod(4,2)))
        let Term::Compound(is, args) = &q[0] else { panic!() };
        assert_eq!(is, "is");
        let Term::Compound(minus, margs) = &args[1] else { panic!() };
        assert_eq!(minus, "-");
        assert_eq!(margs[0].to_string(), "+(1, *(2, 3))");
        assert_eq!(margs[1].to_string(), "mod(4, 2)");
    }

    #[test]
    fn comparison_and_negation() {
        let q = parse_query("\\+ state(M, done), T >= 10").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].functor(), Some(("\\+", 1)));
        assert_eq!(q[1].functor(), Some((">=", 2)));
    }

    #[test]
    fn lists_with_tails() {
        let q = parse_query("append([1, 2|T], X)").unwrap();
        let Term::Compound(_, args) = &q[0] else { panic!() };
        let Term::List(items, tail) = &args[0] else { panic!() };
        assert_eq!(items.len(), 2);
        assert!(tail.is_some());
    }

    #[test]
    fn disjunction_and_parens() {
        let q = parse_query("(a ; b), c").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].functor(), Some((";", 2)));
        let q = parse_query("(a, b ; c)").unwrap();
        // conjunction binds inside parens before ;
        assert_eq!(q[0].to_string(), ";(,(a, b), c)");
    }

    #[test]
    fn setof_shape() {
        let q = parse_query("setof(S, recent(M, sequence, S), Set)").unwrap();
        assert_eq!(q[0].functor(), Some(("setof", 3)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(parse_query("f(,"), Err(LqlError::Parse(_))));
        assert!(matches!(parse_program("3 :- a."), Err(LqlError::Parse(_))));
        assert!(matches!(parse_program("f(a)"), Err(LqlError::Parse(_))), "missing dot");
        assert!(matches!(parse_query("f(a) g(b)"), Err(LqlError::Parse(_))), "trailing input");
    }

    #[test]
    fn unary_minus() {
        let q = parse_query("X is -Y + 1").unwrap();
        assert_eq!(q[0].to_string(), "is(X, +(-(0, Y), 1))");
    }
}
