//! # lql
//!
//! LQL is the deductive (Datalog/Prolog-style) query language of
//! LabBase, as specified by the LabFlow-1 benchmark (Bonner, Shrufi &
//! Rozen, EDBT 1996, Sections 6–8). "It is a deductive language in the
//! tradition of Datalog and Prolog, and is very similar to the query
//! language used at the Genome Center."
//!
//! The crate provides:
//!
//! * a parser for clauses and queries ([`parse_program`],
//!   [`parse_query`]);
//! * an SLD evaluator with negation-as-failure, `setof` (duplicates
//!   eliminated, per the paper), `findall`, `count`, and arithmetic
//!   ([`Session`]);
//! * LabBase-backed base predicates (`state/2`, `recent/3`,
//!   `history_event/3`, `involves/2`, class predicates, …) and the
//!   Section-8 update predicates (`assert`/`retract` of `state` facts,
//!   `create_material`, `record_step`, …);
//! * the LabFlow-1 standard view library ([`stdlib::LABFLOW_RULES`]),
//!   including the paper's quoted workflow-transition rule.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use labbase::{LabBase, AttrType, schema::attrs};
//! use labflow_storage::{MemStore, StorageManager};
//! use lql::{Session, stdlib::labflow_program};
//!
//! let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
//! let db = LabBase::create(store).unwrap();
//! let t = db.begin().unwrap();
//! db.define_material_class(t, "clone", None).unwrap();
//! db.define_step_class(t, "determine_sequence",
//!     attrs(&[("sequence", labbase::AttrType::Dna)])).unwrap();
//! db.commit(t).unwrap();
//!
//! let program = labflow_program();
//! let txn = db.begin().unwrap();
//! let session = Session::with_txn(&db, &program, txn);
//! // Create a material and move it through the paper's transition.
//! session.query(r#"create_material(clone, "c1", 0, M),
//!                  assert(state(M, waiting_for_sequencing))"#).unwrap();
//! let moved = session.query("move(M)").unwrap();
//! assert_eq!(moved.len(), 1);
//! db.commit(txn).unwrap();
//! assert_eq!(db.count_in_state("waiting_for_incorporation").unwrap(), 1);
//! # let _ = AttrType::Dna;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod dbpred;
mod error;
mod eval;
mod parser;
pub mod stdlib;
mod token;
mod unify;

pub use ast::{Rule, Term};
pub use error::{LqlError, Result};
pub use eval::{Bindings, Program, Session, PRELUDE};
pub use parser::{parse_program, parse_query};
pub use unify::{cmp_terms, Subst};

#[cfg(test)]
mod tests {
    use super::*;
    use labbase::schema::attrs;
    use labbase::{AttrType, LabBase, Value};
    use labflow_storage::{MemStore, StorageManager};
    use std::sync::Arc;

    fn db() -> LabBase {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        let db = LabBase::create(store).unwrap();
        let t = db.begin().unwrap();
        db.define_material_class(t, "material", None).unwrap();
        db.define_material_class(t, "clone", Some("material")).unwrap();
        db.define_material_class(t, "tclone", Some("clone")).unwrap();
        db.define_step_class(
            t,
            "determine_sequence",
            attrs(&[("sequence", AttrType::Dna), ("quality", AttrType::Real)]),
        )
        .unwrap();
        db.define_step_class(t, "assemble_sequence", attrs(&[("sequence", AttrType::Dna)]))
            .unwrap();
        db.commit(t).unwrap();
        db
    }

    fn seed(db: &LabBase) -> (labbase::MaterialId, labbase::MaterialId) {
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "clone-a", 0).unwrap();
        let b = db.create_material(t, "tclone", "tclone-b", 1).unwrap();
        db.record_step(
            t,
            "determine_sequence",
            10,
            &[a],
            vec![
                ("sequence".into(), Value::dna("ACGT").unwrap()),
                ("quality".into(), Value::Real(0.95)),
            ],
        )
        .unwrap();
        db.record_step(
            t,
            "determine_sequence",
            20,
            &[b],
            vec![
                ("sequence".into(), Value::dna("GGCC").unwrap()),
                ("quality".into(), Value::Real(0.5)),
            ],
        )
        .unwrap();
        db.set_state(t, a, "waiting_for_sequencing", 10).unwrap();
        db.set_state(t, b, "done", 20).unwrap();
        db.commit(t).unwrap();
        (a, b)
    }

    #[test]
    fn pure_logic_without_db_predicates() {
        let d = db();
        let mut p = Program::new();
        p.load(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Z) :- parent(X, Y), anc(Y, Z).\n\
             parent(a, b). parent(b, c). parent(c, d).",
        )
        .unwrap();
        let s = Session::new(&d, &p);
        let rows = s.query("anc(a, X)").unwrap();
        let xs: Vec<String> = rows.iter().map(|r| r[0].1.to_string()).collect();
        assert_eq!(xs, vec!["b", "c", "d"]);
        assert!(s.prove("anc(a, d)").unwrap());
        assert!(!s.prove("anc(d, a)").unwrap());
    }

    #[test]
    fn member_append_prelude() {
        let d = db();
        let p = Program::new();
        let s = Session::new(&d, &p);
        assert_eq!(s.query("member(X, [1, 2, 3])").unwrap().len(), 3);
        let rows = s.query("append([1, 2], [3], L)").unwrap();
        assert_eq!(rows[0][0].1.to_string(), "[1, 2, 3]");
        let rows = s.query("append(X, Y, [1, 2])").unwrap();
        assert_eq!(rows.len(), 3, "all splits of a 2-list");
        assert!(s.prove("last([1, 2, 3], 3)").unwrap());
    }

    #[test]
    fn arithmetic_and_comparison() {
        let d = db();
        let p = Program::new();
        let s = Session::new(&d, &p);
        let rows = s.query("X is 2 + 3 * 4, X > 10, Y is X mod 5").unwrap();
        assert_eq!(rows[0][0].1, Term::Int(14));
        assert_eq!(rows[0][1].1, Term::Int(4));
        assert!(s.query("X is 1 / 0").is_err());
        assert!(!s.prove("1 > 2").unwrap());
        assert!(s.prove("1.5 < 2").unwrap());
    }

    #[test]
    fn negation_as_failure() {
        let d = db();
        let mut p = Program::new();
        p.load("p(1). p(2). q(2).").unwrap();
        let s = Session::new(&d, &p);
        let rows = s.query("p(X), \\+ q(X)").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].1, Term::Int(1));
    }

    #[test]
    fn disjunction() {
        let d = db();
        let mut p = Program::new();
        p.load("p(1). q(2).").unwrap();
        let s = Session::new(&d, &p);
        let rows = s.query("(p(X) ; q(X))").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn db_state_and_class_predicates() {
        let d = db();
        let (a, _b) = seed(&d);
        let p = Program::new();
        let s = Session::new(&d, &p);
        let rows = s.query("state(M, waiting_for_sequencing)").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].1, Term::Oid(a.oid()));
        assert_eq!(s.query("clone(M)").unwrap().len(), 2, "clone + tclone");
        assert_eq!(s.query("tclone(M)").unwrap().len(), 1);
        assert_eq!(s.query("material(M)").unwrap().len(), 2);
        let rows = s.query("tclone(M), state(M, S)").unwrap();
        assert_eq!(rows[0][1].1, Term::Atom("done".into()));
    }

    #[test]
    fn recent_and_history_predicates() {
        let d = db();
        seed(&d);
        let p = Program::new();
        let s = Session::new(&d, &p);
        let rows = s.query("material_name(M, \"clone-a\"), recent(M, quality, Q)").unwrap();
        assert_eq!(rows[0][1].1, Term::Real(0.95));
        let rows = s
            .query("material_name(M, \"clone-a\"), history_event(M, S, T), attr(S, sequence, V)")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][3].1, Term::Str("ACGT".into()));
        let rows = s.query("material_name(M, \"clone-a\"), involves(S, M)").unwrap();
        assert_eq!(rows.len(), 1);
        // recent_at: as-of query.
        let rows =
            s.query("material_name(M, \"clone-a\"), recent_at(M, quality, 15, V)").unwrap();
        assert_eq!(rows[0][1].1, Term::Real(0.95));
        let rows = s.query("material_name(M, \"clone-a\"), recent_at(M, quality, 5, V)").unwrap();
        assert!(rows.is_empty(), "no value before valid time 10");
    }

    #[test]
    fn setof_and_count() {
        let d = db();
        seed(&d);
        let mut p = Program::new();
        p.load("quality_of(M, Q) :- clone(M), recent(M, quality, Q).").unwrap();
        let s = Session::new(&d, &p);
        let rows = s.query("setof(Q, quality_of(_, Q), Set)").unwrap();
        // Q is the template variable (stays unbound); Set carries the answer.
        let set = rows[0].iter().find(|(n, _)| n == "Set").unwrap();
        assert_eq!(set.1.to_string(), "[0.5, 0.95]");
        let rows = s.query("count(quality_of(_, _), N)").unwrap();
        let n = rows[0].iter().find(|(v, _)| v == "N").unwrap();
        assert_eq!(n.1, Term::Int(2));
        let rows = s.query("findall(Q, quality_of(_, Q), L), length(L, N)").unwrap();
        let n = rows[0].iter().find(|(v, _)| v == "N").unwrap();
        assert_eq!(n.1, Term::Int(2));
    }

    #[test]
    fn paper_transition_rule_moves_material() {
        let d = db();
        let (a, _) = seed(&d);
        let program = stdlib::labflow_program();
        let txn = d.begin().unwrap();
        let s = Session::with_txn(&d, &program, txn);
        s.set_now(30);
        let rows = s.query("move(M)").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].1, Term::Oid(a.oid()));
        d.commit(txn).unwrap();
        assert_eq!(d.state_of(a).unwrap().as_deref(), Some("waiting_for_incorporation"));
        let txn = d.begin().unwrap();
        let s = Session::with_txn(&d, &program, txn);
        assert_eq!(s.query("move(M)").unwrap().len(), 0);
        d.commit(txn).unwrap();
    }

    #[test]
    fn updates_require_txn() {
        let d = db();
        seed(&d);
        let p = Program::new();
        let s = Session::new(&d, &p);
        assert!(matches!(
            s.query("create_material(clone, \"x\", 0, M)"),
            Err(LqlError::NoTransaction)
        ));
        assert!(matches!(
            s.query("material(M), assert(state(M, s))"),
            Err(LqlError::NoTransaction)
        ));
    }

    #[test]
    fn create_and_record_via_lql() {
        let d = db();
        let p = Program::new();
        let txn = d.begin().unwrap();
        let s = Session::with_txn(&d, &p, txn);
        let rows = s
            .query(
                r#"create_material(clone, "c9", 5, M),
                   record_step(determine_sequence, 6, [M],
                               [sequence = "ACGTAA", quality = 0.7], S),
                   recent(M, quality, Q)"#,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        let q = rows[0].iter().find(|(n, _)| n == "Q").unwrap();
        assert_eq!(q.1, Term::Real(0.7));
        d.commit(txn).unwrap();
        assert_eq!(d.count_class("clone", false).unwrap(), 1);
    }

    #[test]
    fn sets_via_lql() {
        let d = db();
        seed(&d);
        let p = Program::new();
        let txn = d.begin().unwrap();
        let s = Session::with_txn(&d, &p, txn);
        s.query("create_set(hits)").unwrap();
        s.query("clone(M), assert(in_set(hits, M))").unwrap();
        d.commit(txn).unwrap();
        assert_eq!(d.set_members("hits").unwrap().len(), 2);
        let s = Session::new(&d, &p);
        assert_eq!(s.query("in_set(hits, M)").unwrap().len(), 2);
        // retract one.
        let txn = d.begin().unwrap();
        let s = Session::with_txn(&d, &p, txn);
        assert_eq!(s.query("in_set(hits, M), retract(in_set(hits, M))").unwrap().len(), 2);
        d.commit(txn).unwrap();
        assert!(d.set_members("hits").unwrap().is_empty());
    }

    #[test]
    fn stdlib_views_work_end_to_end() {
        let d = db();
        seed(&d);
        let program = stdlib::labflow_program();
        let s = Session::new(&d, &program);
        let rows = s.query("good_quality(M, Q)").unwrap();
        assert_eq!(rows.len(), 1);
        let rows = s.query("count_in_state(clone, done, N)").unwrap();
        assert_eq!(rows[0][0].1, Term::Int(1), "N is the only variable");
        let rows = s.query("material_name(M, \"clone-a\"), history_size(M, N)").unwrap();
        assert_eq!(rows[0][1].1, Term::Int(1));
        let rows = s.query("material_name(M, \"tclone-b\"), sequences_of(M, Set)").unwrap();
        assert_eq!(rows[0][1].1.to_string(), "[\"GGCC\"]");
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let d = db();
        let p = Program::new();
        let s = Session::new(&d, &p);
        assert!(matches!(s.query("no_such_thing(X)"), Err(LqlError::Eval(_))));
    }

    #[test]
    fn query_limit_stops_early() {
        let d = db();
        seed(&d);
        let p = Program::new();
        let s = Session::new(&d, &p);
        assert_eq!(s.query_limit("clone(M)", 1).unwrap().len(), 1);
        assert_eq!(s.query_limit("clone(M)", 0).unwrap().len(), 0);
    }

    #[test]
    fn depth_limit_guards_runaway_recursion() {
        let d = db();
        let mut p = Program::empty();
        p.load("loop(X) :- loop(X).").unwrap();
        let s = Session::new(&d, &p);
        assert!(matches!(s.query("loop(1)"), Err(LqlError::DepthLimit(_))));
    }

    #[test]
    fn once_commits_to_first_solution() {
        let d = db();
        let mut p = Program::new();
        p.load("p(1). p(2). p(3).").unwrap();
        let s = Session::new(&d, &p);
        let rows = s.query("once(p(X))").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].1, Term::Int(1));
    }
}

#[cfg(test)]
mod builtin_tests {
    use super::*;
    use labbase::{AttrType, LabBase, Value};
    use labflow_storage::{MemStore, StorageManager};
    use std::sync::Arc;

    fn session_db() -> LabBase {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        LabBase::create(store).unwrap()
    }

    #[test]
    fn aggregates_sum_min_max() {
        let d = session_db();
        let mut p = Program::new();
        p.load("score(a, 3). score(b, 10). score(c, 5).").unwrap();
        let s = Session::new(&d, &p);
        let rows = s.query("sum(V, score(_, V), Total)").unwrap();
        let total = rows[0].iter().find(|(v, _)| v == "Total").unwrap();
        assert_eq!(total.1, Term::Int(18));
        let rows = s.query("min_of(V, score(_, V), M), max_of(V, score(_, V), X)").unwrap();
        let m = rows[0].iter().find(|(v, _)| v == "M").unwrap();
        let x = rows[0].iter().find(|(v, _)| v == "X").unwrap();
        assert_eq!(m.1, Term::Int(3));
        assert_eq!(x.1, Term::Int(10));
        // Sum over nothing is 0; min over nothing fails.
        let rows = s.query("sum(V, score(z, V), T)").unwrap();
        assert_eq!(rows[0].iter().find(|(v, _)| v == "T").unwrap().1, Term::Int(0));
        assert!(s.query("min_of(V, score(z, V), _)").unwrap().is_empty());
    }

    #[test]
    fn between_generates_and_checks() {
        let d = session_db();
        let p = Program::new();
        let s = Session::new(&d, &p);
        let rows = s.query("between(2, 5, X)").unwrap();
        let got: Vec<Term> = rows.into_iter().map(|mut r| r.remove(0).1).collect();
        assert_eq!(got, vec![Term::Int(2), Term::Int(3), Term::Int(4), Term::Int(5)]);
        assert!(s.prove("between(1, 10, 7)").unwrap());
        assert!(!s.prove("between(1, 10, 11)").unwrap());
        assert!(s.query("between(5, 1, X)").unwrap().is_empty(), "empty range");
    }

    #[test]
    fn nth0_both_modes() {
        let d = session_db();
        let p = Program::new();
        let s = Session::new(&d, &p);
        let rows = s.query("nth0(1, [a, b, c], X)").unwrap();
        assert_eq!(rows[0].iter().find(|(v, _)| v == "X").unwrap().1, Term::Atom("b".into()));
        let rows = s.query("nth0(N, [a, b, c], b)").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].1, Term::Int(1));
        assert_eq!(s.query("nth0(N, [a, b, a], a)").unwrap().len(), 2);
    }

    #[test]
    fn sort_and_msort() {
        let d = session_db();
        let p = Program::new();
        let s = Session::new(&d, &p);
        let rows = s.query("msort([3, 1, 2, 1], L)").unwrap();
        assert_eq!(rows[0][0].1.to_string(), "[1, 1, 2, 3]");
        let rows = s.query("sort([3, 1, 2, 1], L)").unwrap();
        assert_eq!(rows[0][0].1.to_string(), "[1, 2, 3]");
    }

    #[test]
    fn reverse_and_forall_prelude() {
        let d = session_db();
        let mut p = Program::new();
        p.load("even(2). even(4). num(2). num(4). num(5).").unwrap();
        let s = Session::new(&d, &p);
        let rows = s.query("reverse([1, 2, 3], R)").unwrap();
        assert_eq!(rows[0][0].1.to_string(), "[3, 2, 1]");
        assert!(s.prove("forall(even(X), num(X))").unwrap());
        assert!(!s.prove("forall(num(X), even(X))").unwrap(), "5 is not even");
    }

    #[test]
    fn aggregate_over_db_predicates() {
        // sum the history sizes of all materials via the db predicates.
        let d = session_db();
        let t = d.begin().unwrap();
        d.define_material_class(t, "clone", None).unwrap();
        d.define_step_class(t, "s", labbase::schema::attrs(&[("v", AttrType::Int)]))
            .unwrap();
        let a = d.create_material(t, "clone", "a", 0).unwrap();
        let b = d.create_material(t, "clone", "b", 0).unwrap();
        d.record_step(t, "s", 1, &[a], vec![("v".into(), Value::Int(10))]).unwrap();
        d.record_step(t, "s", 2, &[a], vec![("v".into(), Value::Int(20))]).unwrap();
        d.record_step(t, "s", 3, &[b], vec![("v".into(), Value::Int(5))]).unwrap();
        d.commit(t).unwrap();
        let mut p = Program::new();
        p.load("val(M, V) :- clone(M), recent(M, v, V).").unwrap();
        let s = Session::new(&d, &p);
        let rows = s.query("sum(V, val(_, V), T)").unwrap();
        assert_eq!(rows[0].iter().find(|(v, _)| v == "T").unwrap().1, Term::Int(25));
        let rows = s.query("max_of(V, val(_, V), X)").unwrap();
        assert_eq!(rows[0].iter().find(|(v, _)| v == "X").unwrap().1, Term::Int(20));
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use labbase::{schema::attrs, AttrType, LabBase, Value};
    use labflow_storage::{MemStore, StorageManager};
    use std::sync::Arc;

    #[test]
    fn history_between_predicate() {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        let d = LabBase::create(store).unwrap();
        let t = d.begin().unwrap();
        d.define_material_class(t, "clone", None).unwrap();
        d.define_step_class(t, "s", attrs(&[("v", AttrType::Int)])).unwrap();
        let m = d.create_material(t, "clone", "m", 0).unwrap();
        for vt in [10i64, 20, 30] {
            d.record_step(t, "s", vt, &[m], vec![("v".into(), Value::Int(vt))]).unwrap();
        }
        d.commit(t).unwrap();
        let p = Program::new();
        let sess = Session::new(&d, &p);
        let rows = sess
            .query("material_name(M, \"m\"), history_between(M, 15, 30, S, T)")
            .unwrap();
        let times: Vec<&Term> =
            rows.iter().map(|r| &r.iter().find(|(v, _)| v == "T").unwrap().1).collect();
        assert_eq!(times, vec![&Term::Int(30), &Term::Int(20)]);
        // Count events in a window via the aggregate.
        let rows = sess
            .query("material_name(M, \"m\"), count(history_between(M, 0, 100, _, _), N)")
            .unwrap();
        assert_eq!(rows[0].iter().find(|(v, _)| v == "N").unwrap().1, Term::Int(3));
    }
}
