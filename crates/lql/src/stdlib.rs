//! The LabFlow-1 view library: the benchmark's standard rules, written
//! in LQL itself (paper Sections 7–8).
//!
//! The centerpiece is the family of workflow-transition rules in the
//! shape the paper quotes:
//!
//! ```text
//! move(M) :- state(M, waiting_for_sequencing), test_sequencing_ok(M),
//!            retract(state(M, waiting_for_sequencing)),
//!            assert(state(M, waiting_for_incorporation)).
//! test_sequencing_ok(M) :- ...
//! ```
//!
//! plus the tracking/report queries of Section 8: most-recent lookups,
//! set/list generation, and counting.

use crate::eval::Program;

/// The LabFlow-1 standard rules.
pub const LABFLOW_RULES: &str = r#"
% ---- workflow transitions (paper Section 8.2) --------------------------
% The generic transition: move M from S1 to S2 if its guard holds.
% retract/1 fails unless M is actually in S1, making transitions safe
% to attempt on any material.
transition(M, S1, S2) :-
    retract(state(M, S1)),
    assert(state(M, S2)).

% The exact transition quoted in the paper. The sequencing test has an
% empty premise there ("no constraints on the transition"), so the guard
% always succeeds.
move(M) :-
    state(M, waiting_for_sequencing),
    test_sequencing_ok(M),
    retract(state(M, waiting_for_sequencing)),
    assert(state(M, waiting_for_incorporation)).

test_sequencing_ok(_).

% ---- workflow tracking (Section 8.3) ------------------------------------
% Where is material M and what produced its latest value of attribute A?
tracking(M, State, A, V) :-
    state(M, State),
    recent(M, A, V).

% The step that provided M's most-recent value of A, with its time.
provenance(M, A, S, T) :-
    history_event(M, S, T),
    attr(S, A, _).

% ---- most-recent views (Section 7) --------------------------------------
% A material's current sequence (the hottest lab query). `material(M)`
% generates when M is unbound; `recent/3` then does the O(1) lookup.
current_sequence(M, Seq) :- material(M), recent(M, sequence, Seq).

% Quality gate: materials whose latest quality beats a threshold.
good_quality(M, Q) :- material(M), recent(M, quality, Q), Q >= 0.9.

% ---- set and list generation (Section 8.4) ------------------------------
% All sequences ever determined for M (BLAST-style list generation).
sequences_of(M, Set) :-
    setof(Seq, history_seq(M, Seq), Set).
history_seq(M, Seq) :-
    history_event(M, S, _),
    attr(S, sequence, Seq).

% Materials of a class currently in a state (report driver).
class_in_state(C, State, M) :-
    class_of(M, C),
    state(M, State).

% ---- counting (Section 8.5) ----------------------------------------------
% How many materials of class C are in state S?
count_in_state(C, S, N) :-
    count(class_in_state(C, S, _), N).

% How many events does M's history hold?
history_size(M, N) :-
    count(history_event(M, _, _), N).
"#;

/// A [`Program`] with the prelude and the LabFlow-1 rules loaded.
pub fn labflow_program() -> Program {
    let mut p = Program::new();
    p.load(LABFLOW_RULES).expect("LabFlow-1 stdlib parses");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdlib_parses() {
        let p = labflow_program();
        assert!(p.len() > 10);
    }
}
