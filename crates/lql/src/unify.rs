//! Substitutions and unification (no occurs check, standard Prolog
//! practice), with a trail for cheap backtracking.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::ast::Term;

/// A substitution: variable name → term, with an undo trail.
#[derive(Default, Debug)]
pub struct Subst {
    map: HashMap<String, Term>,
    trail: Vec<String>,
}

impl Subst {
    /// Empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Current trail position; pass to [`Subst::undo_to`] to backtrack.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Undo all bindings made after `mark`.
    pub fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail length checked");
            self.map.remove(&var);
        }
    }

    fn bind(&mut self, var: &str, term: Term) {
        self.map.insert(var.to_string(), term);
        self.trail.push(var.to_string());
    }

    /// Follow variable bindings one level at a time until reaching a
    /// non-variable or an unbound variable.
    pub fn walk(&self, term: &Term) -> Term {
        let mut cur = term.clone();
        while let Term::Var(v) = &cur {
            match self.map.get(v) {
                Some(next) => cur = next.clone(),
                None => break,
            }
        }
        cur
    }

    /// Fully resolve a term: walk and recurse into structure.
    pub fn resolve(&self, term: &Term) -> Term {
        let t = self.walk(term);
        match t {
            Term::List(items, tail) => {
                let mut out_items: Vec<Term> = items.iter().map(|i| self.resolve(i)).collect();
                let mut out_tail = None;
                if let Some(tail) = tail {
                    match self.resolve(&tail) {
                        Term::List(mut more, t2) => {
                            out_items.append(&mut more);
                            out_tail = t2;
                        }
                        other => out_tail = Some(Box::new(other)),
                    }
                }
                Term::List(out_items, out_tail)
            }
            Term::Compound(name, args) => {
                Term::Compound(name, args.iter().map(|a| self.resolve(a)).collect())
            }
            other => other,
        }
    }

    /// Unify two terms under this substitution. On failure the caller
    /// must [`Subst::undo_to`] its own mark (partial bindings may remain).
    pub fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let a = self.walk(a);
        let b = self.walk(b);
        match (&a, &b) {
            (Term::Var(v), _) => {
                if let Term::Var(w) = &b {
                    if v == w {
                        return true;
                    }
                }
                self.bind(v, b.clone());
                true
            }
            (_, Term::Var(w)) => {
                self.bind(w, a.clone());
                true
            }
            (Term::Atom(x), Term::Atom(y)) => x == y,
            (Term::Int(x), Term::Int(y)) => x == y,
            (Term::Real(x), Term::Real(y)) => x == y,
            (Term::Int(x), Term::Real(y)) | (Term::Real(y), Term::Int(x)) => *x as f64 == *y,
            (Term::Str(x), Term::Str(y)) => x == y,
            (Term::Oid(x), Term::Oid(y)) => x == y,
            (Term::Compound(f, xs), Term::Compound(g, ys)) => {
                if f != g || xs.len() != ys.len() {
                    return false;
                }
                xs.iter().zip(ys).all(|(x, y)| self.unify(x, y))
            }
            (Term::List(..), Term::List(..)) => self.unify_lists(&a, &b),
            _ => false,
        }
    }

    fn unify_lists(&mut self, a: &Term, b: &Term) -> bool {
        let (mut ai, at) = match a {
            Term::List(items, tail) => (items.clone().into_iter(), tail.clone()),
            _ => unreachable!(),
        };
        let (mut bi, bt) = match b {
            Term::List(items, tail) => (items.clone().into_iter(), tail.clone()),
            _ => unreachable!(),
        };
        loop {
            match (ai.next(), bi.next()) {
                (Some(x), Some(y)) => {
                    if !self.unify(&x, &y) {
                        return false;
                    }
                }
                (None, Some(y)) => {
                    // a ran out of items; its tail must absorb y + rest.
                    let rest: Vec<Term> = std::iter::once(y).chain(bi).collect();
                    let rest_list = Term::List(rest, bt);
                    return match at {
                        Some(t) => self.unify(&t, &rest_list),
                        None => false,
                    };
                }
                (Some(x), None) => {
                    let rest: Vec<Term> = std::iter::once(x).chain(ai).collect();
                    let rest_list = Term::List(rest, at);
                    return match bt {
                        Some(t) => self.unify(&t, &rest_list),
                        None => false,
                    };
                }
                (None, None) => {
                    return match (at, bt) {
                        (None, None) => true,
                        (Some(t), None) | (None, Some(t)) => self.unify(&t, &Term::nil()),
                        (Some(x), Some(y)) => self.unify(&x, &y),
                    };
                }
            }
        }
    }
}

/// Total order over ground terms (for `setof` sorting): by kind rank,
/// then value. Variables sort first by name (should not appear in ground
/// output, but the order must still be total).
pub fn cmp_terms(a: &Term, b: &Term) -> Ordering {
    fn rank(t: &Term) -> u8 {
        match t {
            Term::Var(_) => 0,
            Term::Int(_) | Term::Real(_) => 1,
            Term::Atom(_) => 2,
            Term::Str(_) => 3,
            Term::Oid(_) => 4,
            Term::List(..) => 5,
            Term::Compound(..) => 6,
        }
    }
    match (a, b) {
        (Term::Int(x), Term::Int(y)) => x.cmp(y),
        (Term::Real(x), Term::Real(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Term::Int(x), Term::Real(y)) => {
            (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal)
        }
        (Term::Real(x), Term::Int(y)) => {
            x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal)
        }
        (Term::Var(x), Term::Var(y)) => x.cmp(y),
        (Term::Atom(x), Term::Atom(y)) => x.cmp(y),
        (Term::Str(x), Term::Str(y)) => x.cmp(y),
        (Term::Oid(x), Term::Oid(y)) => x.cmp(y),
        (Term::List(xs, xt), Term::List(ys, yt)) => {
            for (x, y) in xs.iter().zip(ys) {
                let o = cmp_terms(x, y);
                if o != Ordering::Equal {
                    return o;
                }
            }
            xs.len().cmp(&ys.len()).then_with(|| xt.is_some().cmp(&yt.is_some()))
        }
        (Term::Compound(f, xs), Term::Compound(g, ys)) => f
            .cmp(g)
            .then_with(|| xs.len().cmp(&ys.len()))
            .then_with(|| {
                for (x, y) in xs.iter().zip(ys) {
                    let o = cmp_terms(x, y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                Ordering::Equal
            }),
        _ => rank(a).cmp(&rank(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> Term {
        Term::Var(n.into())
    }
    fn atom(n: &str) -> Term {
        Term::Atom(n.into())
    }

    #[test]
    fn simple_unification() {
        let mut s = Subst::new();
        assert!(s.unify(&var("X"), &Term::Int(3)));
        assert_eq!(s.resolve(&var("X")), Term::Int(3));
        assert!(s.unify(&var("X"), &Term::Int(3)));
        assert!(!s.unify(&var("X"), &Term::Int(4)));
    }

    #[test]
    fn compound_unification_binds_through() {
        let mut s = Subst::new();
        let a = Term::Compound("f".into(), vec![var("X"), atom("b")]);
        let b = Term::Compound("f".into(), vec![atom("a"), var("Y")]);
        assert!(s.unify(&a, &b));
        assert_eq!(s.resolve(&var("X")), atom("a"));
        assert_eq!(s.resolve(&var("Y")), atom("b"));
    }

    #[test]
    fn functor_or_arity_mismatch_fails() {
        let mut s = Subst::new();
        assert!(!s.unify(
            &Term::Compound("f".into(), vec![atom("a")]),
            &Term::Compound("g".into(), vec![atom("a")])
        ));
        assert!(!s.unify(
            &Term::Compound("f".into(), vec![atom("a")]),
            &Term::Compound("f".into(), vec![atom("a"), atom("b")])
        ));
    }

    #[test]
    fn backtracking_undoes_bindings() {
        let mut s = Subst::new();
        let m = s.mark();
        assert!(s.unify(&var("X"), &Term::Int(1)));
        s.undo_to(m);
        assert!(s.unify(&var("X"), &Term::Int(2)));
        assert_eq!(s.resolve(&var("X")), Term::Int(2));
    }

    #[test]
    fn list_with_tail_unifies() {
        let mut s = Subst::new();
        // [1, 2 | T] = [1, 2, 3, 4]
        let a = Term::List(vec![Term::Int(1), Term::Int(2)], Some(Box::new(var("T"))));
        let b = Term::list(vec![Term::Int(1), Term::Int(2), Term::Int(3), Term::Int(4)]);
        assert!(s.unify(&a, &b));
        assert_eq!(s.resolve(&var("T")), Term::list(vec![Term::Int(3), Term::Int(4)]));
    }

    #[test]
    fn head_tail_destructuring() {
        let mut s = Subst::new();
        // [H|T] = [a]  => H=a, T=[]
        let a = Term::List(vec![var("H")], Some(Box::new(var("T"))));
        let b = Term::list(vec![atom("a")]);
        assert!(s.unify(&a, &b));
        assert_eq!(s.resolve(&var("H")), atom("a"));
        assert_eq!(s.resolve(&var("T")), Term::nil());
        // [H|T] = [] fails
        let mut s = Subst::new();
        assert!(!s.unify(&Term::List(vec![var("H")], Some(Box::new(var("T")))), &Term::nil()));
    }

    #[test]
    fn tail_against_tail() {
        let mut s = Subst::new();
        let a = Term::List(vec![Term::Int(1)], Some(Box::new(var("T1"))));
        let b = Term::List(vec![Term::Int(1)], Some(Box::new(var("T2"))));
        assert!(s.unify(&a, &b));
        assert!(s.unify(&var("T1"), &Term::list(vec![Term::Int(9)])));
        assert_eq!(s.resolve(&var("T2")), Term::list(vec![Term::Int(9)]));
    }

    #[test]
    fn resolve_flattens_bound_tails() {
        let mut s = Subst::new();
        assert!(s.unify(&var("T"), &Term::list(vec![Term::Int(2)])));
        let partial = Term::List(vec![Term::Int(1)], Some(Box::new(var("T"))));
        assert_eq!(s.resolve(&partial), Term::list(vec![Term::Int(1), Term::Int(2)]));
    }

    #[test]
    fn int_real_mixed_unify() {
        let mut s = Subst::new();
        assert!(s.unify(&Term::Int(2), &Term::Real(2.0)));
        assert!(!s.unify(&Term::Int(2), &Term::Real(2.5)));
    }

    #[test]
    fn cmp_is_total_and_sorts() {
        let mut v = vec![
            Term::Str("b".into()),
            Term::Int(3),
            atom("z"),
            Term::Int(1),
            atom("a"),
            Term::Str("a".into()),
        ];
        v.sort_by(cmp_terms);
        assert_eq!(
            v,
            vec![
                Term::Int(1),
                Term::Int(3),
                atom("a"),
                atom("z"),
                Term::Str("a".into()),
                Term::Str("b".into()),
            ]
        );
    }
}
