//! Terms, clauses, and programs.

use std::fmt;

use labbase::Value;
use labflow_storage::Oid;

/// An LQL term.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// Logic variable.
    Var(String),
    /// Atom (lowercase identifier), e.g. `waiting_for_sequencing`.
    Atom(String),
    /// Integer.
    Int(i64),
    /// Float.
    Real(f64),
    /// String literal.
    Str(String),
    /// Object reference (materials, steps, sets).
    Oid(Oid),
    /// Proper or partial list: elements plus optional tail variable.
    List(Vec<Term>, Option<Box<Term>>),
    /// Compound term `functor(args…)`, also used for infix goals like
    /// `=(X, Y)`.
    Compound(String, Vec<Term>),
}

impl Term {
    /// The empty list.
    pub fn nil() -> Term {
        Term::List(Vec::new(), None)
    }

    /// A proper list from elements.
    pub fn list(items: Vec<Term>) -> Term {
        Term::List(items, None)
    }

    /// Functor name and arity of a callable term (atoms are 0-ary).
    pub fn functor(&self) -> Option<(&str, usize)> {
        match self {
            Term::Atom(name) => Some((name, 0)),
            Term::Compound(name, args) => Some((name, args.len())),
            _ => None,
        }
    }

    /// Whether the term contains no variables (after substitution).
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::List(items, tail) => {
                items.iter().all(Term::is_ground)
                    && tail.as_ref().is_none_or(|t| t.is_ground())
            }
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }

    /// Collect variable names (with duplicates) into `out`.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Term::Var(v) => out.push(v.clone()),
            Term::List(items, tail) => {
                for t in items {
                    t.vars(out);
                }
                if let Some(t) = tail {
                    t.vars(out);
                }
            }
            Term::Compound(_, args) => {
                for a in args {
                    a.vars(out);
                }
            }
            _ => {}
        }
    }

    /// Convert a LabBase [`Value`] into a term.
    pub fn from_value(v: &Value) -> Term {
        match v {
            Value::Null => Term::Atom("null".into()),
            Value::Bool(b) => Term::Atom(if *b { "true".into() } else { "false".into() }),
            Value::Int(i) => Term::Int(*i),
            Value::Real(r) => Term::Real(*r),
            Value::Str(s) => Term::Str(s.clone()),
            Value::Time(t) => Term::Int(*t),
            Value::Ref(oid) => Term::Oid(*oid),
            Value::Dna(s) => Term::Str(s.clone()),
            Value::List(items) => Term::List(items.iter().map(Term::from_value).collect(), None),
        }
    }

    /// Convert a ground term into a LabBase [`Value`], if possible.
    pub fn to_value(&self) -> Option<Value> {
        match self {
            Term::Atom(a) if a == "null" => Some(Value::Null),
            Term::Atom(a) if a == "true" => Some(Value::Bool(true)),
            Term::Atom(a) if a == "false" => Some(Value::Bool(false)),
            Term::Atom(a) => Some(Value::Str(a.clone())),
            Term::Int(i) => Some(Value::Int(*i)),
            Term::Real(r) => Some(Value::Real(*r)),
            Term::Str(s) => Some(Value::Str(s.clone())),
            Term::Oid(oid) => Some(Value::Ref(*oid)),
            Term::List(items, None) => {
                let mut vs = Vec::with_capacity(items.len());
                for t in items {
                    vs.push(t.to_value()?);
                }
                Some(Value::List(vs))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Atom(a) => write!(f, "{a}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::Real(r) => write!(f, "{r}"),
            Term::Str(s) => write!(f, "{s:?}"),
            Term::Oid(oid) => write!(f, "{oid}"),
            Term::List(items, tail) => {
                write!(f, "[")?;
                for (i, t) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                if let Some(t) = tail {
                    write!(f, "|{t}")?;
                }
                write!(f, "]")
            }
            Term::Compound(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One clause: `head :- body.` (facts have an empty body).
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Clause head.
    pub head: Term,
    /// Body goals, in order.
    pub body: Vec<Term>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.body.is_empty() {
            write!(f, "{}.", self.head)
        } else {
            write!(f, "{} :- ", self.head)?;
            for (i, g) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
            write!(f, ".")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functor_and_ground() {
        let t = Term::Compound("state".into(), vec![Term::Var("M".into()), Term::Atom("s".into())]);
        assert_eq!(t.functor(), Some(("state", 2)));
        assert!(!t.is_ground());
        assert!(Term::Atom("a".into()).is_ground());
        assert_eq!(Term::Atom("a".into()).functor(), Some(("a", 0)));
        assert_eq!(Term::Int(3).functor(), None);
    }

    #[test]
    fn vars_collects_nested() {
        let t = Term::List(
            vec![Term::Var("A".into()), Term::Compound("f".into(), vec![Term::Var("B".into())])],
            Some(Box::new(Term::Var("T".into()))),
        );
        let mut vs = Vec::new();
        t.vars(&mut vs);
        assert_eq!(vs, vec!["A", "B", "T"]);
    }

    #[test]
    fn value_round_trip() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(4),
            Value::Real(0.5),
            Value::Str("x".into()),
            Value::Ref(Oid::from_raw(8)),
            Value::List(vec![Value::Int(1), Value::Str("two".into())]),
        ];
        for v in &values {
            let t = Term::from_value(v);
            let back = t.to_value().unwrap();
            match (v, &back) {
                // Bool goes through atoms true/false.
                (Value::Bool(b), Value::Bool(b2)) => assert_eq!(b, b2),
                _ => assert_eq!(&back, v),
            }
        }
        // Dna and Time lose their flavor (become Str / Int) — documented.
        assert_eq!(Term::from_value(&Value::Time(9)), Term::Int(9));
        assert!(Term::Var("X".into()).to_value().is_none());
    }

    #[test]
    fn display_forms() {
        let t = Term::Compound(
            "f".into(),
            vec![Term::list(vec![Term::Int(1), Term::Int(2)]), Term::Str("s".into())],
        );
        assert_eq!(t.to_string(), "f([1, 2], \"s\")");
        let r = Rule {
            head: Term::Compound("p".into(), vec![Term::Var("X".into())]),
            body: vec![Term::Atom("q".into())],
        };
        assert_eq!(r.to_string(), "p(X) :- q.");
    }
}
