//! Lexer for LQL, the Prolog/Datalog-style query language of LabBase
//! (paper Section 6).

use crate::error::{LqlError, Result};

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Lowercase identifier: `state`, `waiting_for_sequencing`.
    Atom(String),
    /// Variable: `X`, `Material`, `_G1`.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Real(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `|`
    Bar,
    /// `.` end of clause
    Dot,
    /// `:-`
    Neck,
    /// `?-`
    Query,
    /// `;`
    Semicolon,
    /// An operator symbol: `=`, `\=`, `<`, `=<`, `>=`, `is`, `+`, …
    Op(String),
    /// `\+` negation as failure
    Naf,
}

/// Tokenize LQL source. `%` starts a line comment.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '%' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '|' => {
                out.push(Token::Bar);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while i < n {
                    let ch = bytes[i] as char;
                    if ch == '"' {
                        closed = true;
                        i += 1;
                        break;
                    }
                    if ch == '\\' && i + 1 < n {
                        i += 1;
                        let esc = bytes[i] as char;
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    } else {
                        s.push(ch);
                    }
                    i += 1;
                }
                if !closed {
                    return Err(LqlError::Lex("unterminated string literal".into()));
                }
                out.push(Token::Str(s));
            }
            '?' if i + 1 < n && bytes[i + 1] == b'-' => {
                out.push(Token::Query);
                i += 2;
            }
            ':' if i + 1 < n && bytes[i + 1] == b'-' => {
                out.push(Token::Neck);
                i += 2;
            }
            '\\' if i + 1 < n && bytes[i + 1] == b'+' => {
                out.push(Token::Naf);
                i += 2;
            }
            '\\' if i + 1 < n && bytes[i + 1] == b'=' => {
                if i + 2 < n && bytes[i + 2] == b'=' {
                    out.push(Token::Op("\\==".into()));
                    i += 3;
                } else {
                    out.push(Token::Op("\\=".into()));
                    i += 2;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == b'<' {
                    out.push(Token::Op("=<".into()));
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Token::Op("==".into()));
                    i += 2;
                } else {
                    out.push(Token::Op("=".into()));
                    i += 1;
                }
            }
            '<' => {
                out.push(Token::Op("<".into()));
                i += 1;
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Token::Op(">=".into()));
                    i += 2;
                } else {
                    out.push(Token::Op(">".into()));
                    i += 1;
                }
            }
            '+' => {
                out.push(Token::Op("+".into()));
                i += 1;
            }
            '-' => {
                // Negative number literal if followed directly by a digit
                // and preceded by something that cannot end an expression.
                let starts_number = i + 1 < n && bytes[i + 1].is_ascii_digit();
                let prev_ends_expr = matches!(
                    out.last(),
                    Some(Token::Int(_))
                        | Some(Token::Real(_))
                        | Some(Token::Var(_))
                        | Some(Token::Atom(_))
                        | Some(Token::RParen)
                        | Some(Token::RBracket)
                );
                if starts_number && !prev_ends_expr {
                    let (tok, used) = lex_number(&src[i..])?;
                    out.push(tok);
                    i += used;
                } else {
                    out.push(Token::Op("-".into()));
                    i += 1;
                }
            }
            '*' => {
                out.push(Token::Op("*".into()));
                i += 1;
            }
            '/' => {
                out.push(Token::Op("/".into()));
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let (tok, used) = lex_number(&src[i..])?;
                out.push(tok);
                i += used;
            }
            c if c.is_ascii_lowercase() => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                if word == "is" || word == "mod" {
                    out.push(Token::Op(word.into()));
                } else {
                    out.push(Token::Atom(word.into()));
                }
            }
            c if c.is_ascii_uppercase() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Var(src[start..i].into()));
            }
            other => {
                return Err(LqlError::Lex(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

fn lex_number(src: &str) -> Result<(Token, usize)> {
    let bytes = src.as_bytes();
    let mut i = 0;
    if bytes[0] == b'-' {
        i = 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_real = false;
    if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        is_real = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text = &src[..i];
    if is_real {
        text.parse::<f64>()
            .map(|v| (Token::Real(v), i))
            .map_err(|_| LqlError::Lex(format!("bad real literal '{text}'")))
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|_| LqlError::Lex(format!("bad integer literal '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_clause() {
        let toks = tokenize("move(M) :- state(M, waiting), \\+ done(M).").unwrap();
        assert_eq!(toks[0], Token::Atom("move".into()));
        assert_eq!(toks[1], Token::LParen);
        assert_eq!(toks[2], Token::Var("M".into()));
        assert!(toks.contains(&Token::Neck));
        assert!(toks.contains(&Token::Naf));
        assert_eq!(toks.last(), Some(&Token::Dot));
    }

    #[test]
    fn numbers_including_negative_and_real() {
        let toks = tokenize("f(1, -2, 3.5, 4-5, X-1).").unwrap();
        assert!(toks.contains(&Token::Int(-2)));
        assert!(toks.contains(&Token::Real(3.5)));
        // `4-5` is subtraction, not 4 and -5.
        let minus_count = toks.iter().filter(|t| **t == Token::Op("-".into())).count();
        assert_eq!(minus_count, 2);
    }

    #[test]
    fn decimal_number_vs_end_dot() {
        let toks = tokenize("f(3.5).").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Atom("f".into()),
                Token::LParen,
                Token::Real(3.5),
                Token::RParen,
                Token::Dot
            ]
        );
        let toks = tokenize("f(3).").unwrap();
        assert!(toks.contains(&Token::Int(3)));
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize(r#"name(M, "clone \"A\"\n")."#).unwrap();
        assert!(toks.iter().any(|t| matches!(t, Token::Str(s) if s == "clone \"A\"\n")));
        assert!(matches!(tokenize(r#"x("unterminated"#), Err(LqlError::Lex(_))));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("a. % comment with , tokens :- \n b.").unwrap();
        assert_eq!(
            toks,
            vec![Token::Atom("a".into()), Token::Dot, Token::Atom("b".into()), Token::Dot]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("X =< Y, X >= Z, X \\= W, A == B, C \\== D, E < F, G > H").unwrap();
        for op in ["=<", ">=", "\\=", "==", "\\==", "<", ">"] {
            assert!(toks.contains(&Token::Op(op.into())), "missing {op}");
        }
    }

    #[test]
    fn is_and_mod_are_operators() {
        let toks = tokenize("X is 4 mod 3").unwrap();
        assert_eq!(toks[1], Token::Op("is".into()));
        assert!(toks.contains(&Token::Op("mod".into())));
    }

    #[test]
    fn lists_and_bars() {
        let toks = tokenize("[H|T]").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LBracket,
                Token::Var("H".into()),
                Token::Bar,
                Token::Var("T".into()),
                Token::RBracket
            ]
        );
    }

    #[test]
    fn bad_char_is_error() {
        assert!(matches!(tokenize("a @ b"), Err(LqlError::Lex(_))));
    }
}
