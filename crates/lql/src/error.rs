//! LQL error type.

use std::fmt;

use labbase::LabError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, LqlError>;

/// Errors produced by the query language.
#[derive(Debug)]
pub enum LqlError {
    /// Lexical error.
    Lex(String),
    /// Parse error.
    Parse(String),
    /// Runtime evaluation error (type errors, unbound arguments where a
    /// binding is required, arithmetic on non-numbers, …).
    Eval(String),
    /// The goal recursed past the engine's depth limit.
    DepthLimit(usize),
    /// An update predicate was used without an open transaction.
    NoTransaction,
    /// An error from the LabBase layer.
    Lab(LabError),
}

impl fmt::Display for LqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LqlError::Lex(msg) => write!(f, "lex error: {msg}"),
            LqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            LqlError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            LqlError::DepthLimit(n) => write!(f, "depth limit {n} exceeded"),
            LqlError::NoTransaction => {
                write!(f, "update predicate requires an open transaction")
            }
            LqlError::Lab(e) => write!(f, "labbase: {e}"),
        }
    }
}

impl std::error::Error for LqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LqlError::Lab(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LabError> for LqlError {
    fn from(e: LabError) -> Self {
        LqlError::Lab(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases = vec![
            LqlError::Lex("x".into()),
            LqlError::Parse("y".into()),
            LqlError::Eval("z".into()),
            LqlError::DepthLimit(100),
            LqlError::NoTransaction,
            LqlError::Lab(LabError::NoMaterials),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
