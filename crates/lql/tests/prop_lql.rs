//! Property-based tests for LQL: unification laws, substitution
//! consistency, display/parse round trips, and evaluator sanity on
//! generated list programs.

use proptest::prelude::*;

use lql::{cmp_terms, parse_query, Program, Session, Subst, Term};

/// Generate ground data terms (no variables), bounded depth.
fn ground_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Term::Int),
        // Reals with a guaranteed fractional part so Display always
        // prints a '.' (integral f64s print like ints and would not
        // round-trip through the parser as Reals).
        (-1000i64..1000, 1u32..1000).prop_map(|(a, b)| {
            let frac = b as f64 / 1000.0;
            Term::Real(if a >= 0 { a as f64 + frac } else { a as f64 - frac })
        }),
        "[a-z][a-z0-9_]{0,6}".prop_map(Term::Atom),
        "[ -~&&[^\"\\\\]]{0,8}".prop_map(Term::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Term::list),
            ("[a-z][a-z0-9_]{0,5}", proptest::collection::vec(inner, 1..4))
                .prop_map(|(f, args)| Term::Compound(f, args)),
        ]
    })
}

/// Terms with variables sprinkled in.
fn open_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        2 => "[A-Z][a-z0-9]{0,3}".prop_map(Term::Var),
        2 => any::<i64>().prop_map(Term::Int),
        1 => "[a-z][a-z0-9_]{0,6}".prop_map(Term::Atom),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Term::list),
            ("[a-z][a-z0-9_]{0,5}", proptest::collection::vec(inner, 1..3))
                .prop_map(|(f, args)| Term::Compound(f, args)),
        ]
    })
}

proptest! {
    /// Ground terms unify with themselves and resolve unchanged.
    #[test]
    fn ground_self_unification(t in ground_term()) {
        let mut s = Subst::new();
        prop_assert!(s.unify(&t, &t));
        prop_assert_eq!(s.resolve(&t), t);
    }

    /// A variable unified with a ground term resolves to that term,
    /// and backtracking undoes the binding.
    #[test]
    fn bind_resolve_undo(t in ground_term()) {
        let mut s = Subst::new();
        let v = Term::Var("X".into());
        let mark = s.mark();
        prop_assert!(s.unify(&v, &t));
        prop_assert_eq!(s.resolve(&v), t.clone());
        s.undo_to(mark);
        prop_assert_eq!(s.resolve(&v), v);
    }

    /// Unification is symmetric on ground terms (succeeds iff equal).
    #[test]
    fn ground_unification_is_equality(a in ground_term(), b in ground_term()) {
        let mut s1 = Subst::new();
        let mut s2 = Subst::new();
        let ab = s1.unify(&a, &b);
        let ba = s2.unify(&b, &a);
        prop_assert_eq!(ab, ba);
        // For ground terms without numeric coercion pairs, unify == eq.
        if ab {
            prop_assert_eq!(cmp_terms(&a, &b), std::cmp::Ordering::Equal);
        }
    }

    /// If an open pattern unifies with a ground term, resolving the
    /// pattern afterwards yields a term that unifies with the ground one
    /// in a fresh substitution (soundness of the computed unifier).
    #[test]
    fn unifier_is_sound(pattern in open_term(), ground in ground_term()) {
        let mut s = Subst::new();
        if s.unify(&pattern, &ground) {
            let resolved = s.resolve(&pattern);
            let mut fresh = Subst::new();
            prop_assert!(fresh.unify(&resolved, &ground),
                "resolved pattern {resolved} no longer matches {ground}");
        }
    }

    /// cmp_terms is a total order: antisymmetric and transitive on samples.
    #[test]
    fn cmp_terms_total_order(a in ground_term(), b in ground_term(), c in ground_term()) {
        use std::cmp::Ordering;
        prop_assert_eq!(cmp_terms(&a, &a), Ordering::Equal);
        prop_assert_eq!(cmp_terms(&a, &b), cmp_terms(&b, &a).reverse());
        if cmp_terms(&a, &b) != Ordering::Greater && cmp_terms(&b, &c) != Ordering::Greater {
            prop_assert_ne!(cmp_terms(&a, &c), Ordering::Greater);
        }
    }

    /// Display output of ground data terms re-parses to the same term.
    #[test]
    fn display_parse_round_trip(t in ground_term()) {
        let text = t.to_string();
        let parsed = parse_query(&text);
        prop_assume!(parsed.is_ok()); // e.g. reals that picked up an exponent
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &t, "{} reparsed differently", text);
    }

    /// member/2 enumerates exactly the list elements, in order.
    #[test]
    fn member_enumerates_list(items in proptest::collection::vec(-50i64..50, 0..12)) {
        let store: std::sync::Arc<dyn labflow_storage::StorageManager> =
            std::sync::Arc::new(labflow_storage::MemStore::ostore_mm());
        let db = labbase::LabBase::create(store).unwrap();
        let program = Program::new();
        let session = Session::new(&db, &program);
        let list = items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let rows = session.query(&format!("member(X, [{list}])")).unwrap();
        let got: Vec<i64> = rows
            .iter()
            .map(|r| match &r[0].1 {
                Term::Int(i) => *i,
                other => panic!("non-int {other}"),
            })
            .collect();
        prop_assert_eq!(got, items);
    }

    /// append/3 really concatenates.
    #[test]
    fn append_concatenates(
        xs in proptest::collection::vec(0i64..20, 0..8),
        ys in proptest::collection::vec(0i64..20, 0..8),
    ) {
        let store: std::sync::Arc<dyn labflow_storage::StorageManager> =
            std::sync::Arc::new(labflow_storage::MemStore::ostore_mm());
        let db = labbase::LabBase::create(store).unwrap();
        let program = Program::new();
        let session = Session::new(&db, &program);
        let fmt = |v: &[i64]| v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let rows = session
            .query(&format!("append([{}], [{}], L)", fmt(&xs), fmt(&ys)))
            .unwrap();
        prop_assert_eq!(rows.len(), 1);
        let mut want: Vec<Term> = xs.iter().map(|&i| Term::Int(i)).collect();
        want.extend(ys.iter().map(|&i| Term::Int(i)));
        prop_assert_eq!(&rows[0][0].1, &Term::list(want));
    }

    /// setof sorts and dedupes whatever findall collects.
    #[test]
    fn setof_is_sorted_dedup_of_findall(items in proptest::collection::vec(-20i64..20, 1..15)) {
        let store: std::sync::Arc<dyn labflow_storage::StorageManager> =
            std::sync::Arc::new(labflow_storage::MemStore::ostore_mm());
        let db = labbase::LabBase::create(store).unwrap();
        let mut program = Program::new();
        let facts: String = items.iter().map(|i| format!("item({i}).\n")).collect();
        program.load(&facts).unwrap();
        let session = Session::new(&db, &program);
        let rows = session.query("setof(X, item(X), S)").unwrap();
        let Term::List(got, None) = &rows[0].iter().find(|(v, _)| v == "S").unwrap().1 else {
            panic!("setof did not bind a list");
        };
        let mut want: Vec<i64> = items.clone();
        want.sort_unstable();
        want.dedup();
        let got: Vec<i64> = got
            .iter()
            .map(|t| match t {
                Term::Int(i) => *i,
                other => panic!("non-int {other}"),
            })
            .collect();
        prop_assert_eq!(got, want);
    }
}
