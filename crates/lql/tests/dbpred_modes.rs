//! Mode coverage for every database predicate: each supported
//! bound/unbound combination, plus the error modes (unbound arguments
//! where the predicate requires a binding).

use std::sync::Arc;

use labbase::{schema::attrs, AttrType, LabBase, MaterialId, StepId, Value};
use labflow_storage::{MemStore, StorageManager};
use lql::{LqlError, Program, Session, Term};

struct Fixture {
    db: LabBase,
    clone_a: MaterialId,
    tclone_b: MaterialId,
    step_1: StepId,
}

fn fixture() -> Fixture {
    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    let db = LabBase::create(store).unwrap();
    let t = db.begin().unwrap();
    db.define_material_class(t, "material", None).unwrap();
    db.define_material_class(t, "clone", Some("material")).unwrap();
    db.define_material_class(t, "tclone", Some("material")).unwrap();
    db.define_step_class(
        t,
        "determine_sequence",
        attrs(&[("sequence", AttrType::Dna), ("quality", AttrType::Real)]),
    )
    .unwrap();
    let clone_a = db.create_material(t, "clone", "clone-a", 0).unwrap();
    let tclone_b = db.create_material(t, "tclone", "tclone-b", 1).unwrap();
    let step_1 = db
        .record_step(
            t,
            "determine_sequence",
            10,
            &[tclone_b, clone_a],
            vec![
                ("sequence".into(), Value::dna("ACGT").unwrap()),
                ("quality".into(), Value::Real(0.8)),
            ],
        )
        .unwrap();
    db.set_state(t, clone_a, "waiting_for_assembly", 10).unwrap();
    db.set_state(t, tclone_b, "waiting_for_sequencing", 10).unwrap();
    db.create_set(t, "queue").unwrap();
    db.add_to_set(t, "queue", tclone_b).unwrap();
    db.commit(t).unwrap();
    Fixture { db, clone_a, tclone_b, step_1 }
}

fn rows(f: &Fixture, q: &str) -> Vec<Vec<(String, Term)>> {
    let p = Program::new();
    let out = Session::new(&f.db, &p).query(q).unwrap();
    out
}

fn must_err(f: &Fixture, q: &str) {
    let p = Program::new();
    let r = Session::new(&f.db, &p).query(q);
    assert!(matches!(r, Err(LqlError::Eval(_))), "expected Eval error for {q}, got {r:?}");
}

#[test]
fn material_both_modes() {
    let f = fixture();
    assert_eq!(rows(&f, "material(M)").len(), 2);
    // Check mode through a join.
    assert_eq!(rows(&f, "material_name(M, \"clone-a\"), material(M)").len(), 1);
}

#[test]
fn state_all_three_modes() {
    let f = fixture();
    // Fully free: enumerates every (material, state) pair.
    assert_eq!(rows(&f, "state(M, S)").len(), 2);
    // State bound.
    let r = rows(&f, "state(M, waiting_for_assembly)");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].1, Term::Oid(f.clone_a.oid()));
    // Material bound (via join), state free.
    let r = rows(&f, "material_name(M, \"tclone-b\"), state(M, S)");
    assert_eq!(r[0][1].1, Term::Atom("waiting_for_sequencing".into()));
    // Both bound: check.
    assert_eq!(rows(&f, "material_name(M, \"tclone-b\"), state(M, waiting_for_sequencing)").len(), 1);
    assert!(rows(&f, "material_name(M, \"tclone-b\"), state(M, finished)").is_empty());
}

#[test]
fn state_count_requires_bound_state() {
    let f = fixture();
    let r = rows(&f, "state_count(waiting_for_assembly, N)");
    assert_eq!(r[0][0].1, Term::Int(1));
    must_err(&f, "state_count(S, N)");
}

#[test]
fn recent_modes() {
    let f = fixture();
    // Attr bound.
    let r = rows(&f, "material_name(M, \"clone-a\"), recent(M, quality, Q)");
    assert_eq!(r[0][1].1, Term::Real(0.8));
    // Attr free: enumerates all cached attributes (+ the outcome-free fixture has 2).
    let r = rows(&f, "material_name(M, \"clone-a\"), recent(M, A, V)");
    assert_eq!(r.len(), 2);
    // Material unbound: error, not silent failure.
    must_err(&f, "recent(M, quality, Q)");
}

#[test]
fn history_and_attr_and_involves() {
    let f = fixture();
    let r = rows(&f, "material_name(M, \"clone-a\"), history_event(M, S, T)");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][2].1, Term::Int(10));
    must_err(&f, "history_event(M, S, T)");

    // attr: S bound, name free enumerates; name bound filters.
    let r = rows(&f, "material_name(M, \"clone-a\"), history_event(M, S, _), attr(S, A, V)");
    assert_eq!(r.len(), 2);
    let r = rows(
        &f,
        "material_name(M, \"clone-a\"), history_event(M, S, _), attr(S, quality, V)",
    );
    assert_eq!(r.len(), 1);
    must_err(&f, "attr(S, quality, V)");

    // involves from the step side lists both materials.
    let r = rows(&f, "material_name(M, \"clone-a\"), history_event(M, S, _), involves(S, M2)");
    assert_eq!(r.len(), 2);
    // involves from the material side.
    let r = rows(&f, "material_name(M, \"tclone-b\"), involves(S, M)");
    assert_eq!(r.len(), 1);
    must_err(&f, "involves(S, M)");
}

#[test]
fn valid_time_and_step_class() {
    let f = fixture();
    let r = rows(&f, "material_name(M, \"clone-a\"), history_event(M, S, _), valid_time(S, T)");
    assert_eq!(r[0][2].1, Term::Int(10));
    let r = rows(&f, "material_name(M, \"clone-a\"), history_event(M, S, _), step_class(S, C)");
    assert_eq!(r[0][2].1, Term::Atom("determine_sequence".into()));
    must_err(&f, "valid_time(S, T)");
    must_err(&f, "step_class(S, C)");
}

#[test]
fn class_of_modes() {
    let f = fixture();
    let r = rows(&f, "material_name(M, \"clone-a\"), class_of(M, C)");
    assert_eq!(r[0][1].1, Term::Atom("clone".into()));
    // Class bound: extent (with subclasses of material).
    assert_eq!(rows(&f, "class_of(M, material)").len(), 2);
    assert_eq!(rows(&f, "class_of(M, clone)").len(), 1);
    must_err(&f, "class_of(M, C)");
}

#[test]
fn class_predicates_and_step_class_check() {
    let f = fixture();
    assert_eq!(rows(&f, "clone(M)").len(), 1);
    assert_eq!(rows(&f, "material(M), clone(M)").len(), 1, "check mode filters");
    // A step-class predicate in check mode.
    let r = rows(
        &f,
        "material_name(M, \"clone-a\"), history_event(M, S, _), determine_sequence(S)",
    );
    assert_eq!(r.len(), 1);
    // Enumeration of step instances is rejected with guidance.
    must_err(&f, "determine_sequence(S)");
    let _ = f.step_1;
}

#[test]
fn sets_and_names() {
    let f = fixture();
    assert_eq!(rows(&f, "set_name(S)").len(), 1);
    let r = rows(&f, "in_set(queue, M)");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].1, Term::Oid(f.tclone_b.oid()));
    // Unknown set fails (not an error) so views can probe.
    assert!(rows(&f, "in_set(nonexistent, M)").is_empty());
    must_err(&f, "in_set(S, M)");
    // material_name full enumeration.
    assert_eq!(rows(&f, "material_name(M, N)").len(), 2);
    // Unknown name fails cleanly.
    assert!(rows(&f, "material_name(M, \"nope\")").is_empty());
}

#[test]
fn update_predicate_error_modes() {
    let f = fixture();
    let p = Program::new();
    let txn = f.db.begin().unwrap();
    let s = Session::with_txn(&f.db, &p, txn);
    // Unknown fact shape in assert.
    assert!(matches!(
        s.query("assert(color(1, red))"),
        Err(LqlError::Eval(_))
    ));
    // create_material with unbound class.
    assert!(matches!(
        s.query("create_material(C, \"x\", 0, M)"),
        Err(LqlError::Eval(_))
    ));
    // record_step with a non-list material argument.
    assert!(matches!(
        s.query("record_step(determine_sequence, 1, notalist, [], S)"),
        Err(LqlError::Eval(_))
    ));
    // retract of a state the material is not in fails, not errors.
    let r = s
        .query("material_name(M, \"clone-a\"), retract(state(M, finished))")
        .unwrap();
    assert!(r.is_empty());
    f.db.commit(txn).unwrap();
    // State unchanged by the failed retract.
    assert_eq!(
        f.db.state_of(f.clone_a).unwrap().as_deref(),
        Some("waiting_for_assembly")
    );
}
