//! Workflow states (the `state(M, S)` predicate of the paper's Section 8)
//! and the in-memory state index that serves the workload's driver query
//! ("give me materials waiting in state S").
//!
//! The authoritative state lives in each `sm_material` record; the index
//! is a cache, built lazily by scanning class extents after open and
//! maintained incrementally afterwards.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::{Mutex, RwLock};

use labflow_storage::{Oid, TxnId};

use crate::db::{LabBase, Rd};
use crate::error::Result;
use crate::ids::{MaterialId, ValidTime};

/// Number of state-name shards. Sized so concurrent sessions working in
/// different workflow states rarely contend on the same lock.
const STATE_SHARDS: usize = 16;

fn shard_of(state: &str) -> usize {
    // FNV-1a over the state atom.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in state.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % STATE_SHARDS
}

/// In-memory map: state atom → set of material oids (BTreeSet for
/// deterministic iteration, which keeps benchmark runs reproducible).
///
/// Sharded by a hash of the state name so concurrent sessions updating
/// disjoint states take disjoint locks; readers take only the shard they
/// query. Stateless materials live in their own lock. The `built` flag
/// is the usual lazy-build latch: mutators no-op until the first query
/// forces a full extent scan.
pub(crate) struct StateIndex {
    built: AtomicBool,
    /// Serializes build/invalidate so only one thread scans extents.
    build_lock: Mutex<()>,
    shards: Vec<RwLock<HashMap<String, BTreeSet<u64>>>>,
    /// Materials known to exist but with no state set.
    stateless: RwLock<BTreeSet<u64>>,
}

impl StateIndex {
    pub(crate) fn new() -> StateIndex {
        StateIndex {
            built: AtomicBool::new(false),
            build_lock: Mutex::new(()),
            shards: (0..STATE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            stateless: RwLock::new(BTreeSet::new()),
        }
    }

    pub(crate) fn is_built(&self) -> bool {
        self.built.load(Ordering::Acquire)
    }

    pub(crate) fn invalidate(&self) {
        let _g = self.build_lock.lock();
        self.built.store(false, Ordering::Release);
        for shard in &self.shards {
            shard.write().clear();
        }
        self.stateless.write().clear();
    }

    /// Replace the whole index with a freshly scanned snapshot.
    fn install(&self, by_state: HashMap<String, BTreeSet<u64>>, stateless: BTreeSet<u64>) {
        for shard in &self.shards {
            shard.write().clear();
        }
        for (state, set) in by_state {
            self.shards[shard_of(&state)].write().insert(state, set);
        }
        *self.stateless.write() = stateless;
        self.built.store(true, Ordering::Release);
    }

    pub(crate) fn note_created(&self, mat: Oid) {
        if self.is_built() {
            self.stateless.write().insert(mat.raw());
        }
    }

    pub(crate) fn note_state(&self, mat: Oid, old: Option<&str>, new: Option<&str>) {
        if !self.is_built() {
            return;
        }
        match old {
            Some(s) => {
                if let Some(set) = self.shards[shard_of(s)].write().get_mut(s) {
                    set.remove(&mat.raw());
                }
            }
            None => {
                self.stateless.write().remove(&mat.raw());
            }
        }
        match new {
            Some(s) => {
                self.shards[shard_of(s)]
                    .write()
                    .entry(s.to_string())
                    .or_default()
                    .insert(mat.raw());
            }
            None => {
                self.stateless.write().insert(mat.raw());
            }
        }
    }

    /// Drop materials from the index entirely (their creation aborted).
    /// Callers reverse any state transitions first, so the oids sit in
    /// the stateless set — but sweep the state shards too in case a
    /// transition was recorded before the index was built.
    pub(crate) fn forget<I: Iterator<Item = Oid>>(&self, oids: I) {
        if !self.is_built() {
            return;
        }
        let raws: Vec<u64> = oids.map(|o| o.raw()).collect();
        if raws.is_empty() {
            return;
        }
        {
            let mut stateless = self.stateless.write();
            for raw in &raws {
                stateless.remove(raw);
            }
        }
        for shard in &self.shards {
            let mut shard = shard.write();
            for set in shard.values_mut() {
                for raw in &raws {
                    set.remove(raw);
                }
            }
        }
    }

    fn members_of(&self, state: &str, limit: usize) -> Vec<MaterialId> {
        self.shards[shard_of(state)]
            .read()
            .get(state)
            .map(|set| {
                set.iter().take(limit).map(|&o| MaterialId::from(Oid::from_raw(o))).collect()
            })
            .unwrap_or_default()
    }

    fn count_of(&self, state: &str) -> usize {
        self.shards[shard_of(state)].read().get(state).map_or(0, |s| s.len())
    }

    fn census(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            out.extend(
                shard.iter().filter(|(_, s)| !s.is_empty()).map(|(k, s)| (k.clone(), s.len())),
            );
        }
        out.sort();
        out
    }
}

impl LabBase {
    fn ensure_state_index(&self) -> Result<()> {
        self.ensure_state_index_rd(Rd::Latest)
    }

    fn ensure_state_index_rd(&self, rd: Rd) -> Result<()> {
        if self.state_index.is_built() {
            return Ok(());
        }
        // Serialize builders; losers of the race find the index ready.
        let _build = self.state_index.build_lock.lock();
        if self.state_index.is_built() {
            return Ok(());
        }
        // Scan every class extent from the builder's own consistent
        // view: the committed catalog for `Latest`, the transaction's
        // view for `In(txn)`. The live in-memory catalog can run ahead
        // of both (extent heads prepended by still-open transactions),
        // and those heads would not be readable here.
        let cat = crate::schema::Catalog::decode(&self.rd_bytes(rd, self.catalog_oid)?)?;
        let heads: Vec<Oid> =
            cat.material_classes().iter().map(|mc| mc.extent_head).collect();
        let mut by_state: HashMap<String, BTreeSet<u64>> = HashMap::new();
        let mut stateless = BTreeSet::new();
        for head in heads {
            let mut cur = head;
            while !cur.is_nil() {
                let rec = self.read_material_rec_rd(rd, cur)?;
                if rec.state.is_empty() {
                    stateless.insert(cur.raw());
                } else {
                    by_state.entry(rec.state.clone()).or_default().insert(cur.raw());
                }
                cur = rec.ext_next;
            }
        }
        self.state_index.install(by_state, stateless);
        Ok(())
    }

    /// Set `mat`'s workflow state at valid time `vt`, returning the
    /// `(old, new)` pair so sessions can undo the index update on abort.
    pub(crate) fn set_state_recording(
        &self,
        txn: TxnId,
        mat: MaterialId,
        state: &str,
        vt: ValidTime,
    ) -> Result<(Option<String>, Option<String>)> {
        let mut rec = self.read_material_rec_rd(Rd::In(txn), mat.oid())?;
        let old = if rec.state.is_empty() { None } else { Some(rec.state.clone()) };
        rec.state = state.to_string();
        rec.state_time = vt;
        self.write_material_rec(txn, mat.oid(), &rec)?;
        let new = if state.is_empty() { None } else { Some(state.to_string()) };
        self.state_index.note_state(mat.oid(), old.as_deref(), new.as_deref());
        Ok((old, new))
    }

    /// Set `mat`'s workflow state at valid time `vt` (the
    /// `retract(state(M,s1)), assert(state(M,s2))` transition of the
    /// paper's workflow rules).
    pub fn set_state(
        &self,
        txn: TxnId,
        mat: MaterialId,
        state: &str,
        vt: ValidTime,
    ) -> Result<()> {
        self.set_state_recording(txn, mat, state, vt)?;
        Ok(())
    }

    /// Clear `mat`'s workflow state (material leaves the workflow).
    pub fn clear_state(&self, txn: TxnId, mat: MaterialId, vt: ValidTime) -> Result<()> {
        self.set_state(txn, mat, "", vt)
    }

    /// The material's current state, if any (committed state).
    pub fn state_of(&self, mat: MaterialId) -> Result<Option<String>> {
        self.state_of_rd(Rd::Latest, mat)
    }

    /// The material's current state as seen by the open transaction
    /// `txn`, including its own uncommitted transitions.
    pub fn state_of_in(&self, txn: TxnId, mat: MaterialId) -> Result<Option<String>> {
        self.state_of_rd(Rd::In(txn), mat)
    }

    pub(crate) fn state_of_rd(&self, rd: Rd, mat: MaterialId) -> Result<Option<String>> {
        let rec = self.read_material_rec_rd(rd, mat.oid())?;
        Ok(if rec.state.is_empty() { None } else { Some(rec.state) })
    }

    /// Up to `limit` materials currently in `state`, in deterministic
    /// (oid) order. This is the workload driver: "pick the next batch of
    /// materials waiting for step X".
    pub fn in_state(&self, state: &str, limit: usize) -> Result<Vec<MaterialId>> {
        self.ensure_state_index()?;
        Ok(self.state_index.members_of(state, limit))
    }

    /// [`in_state`](Self::in_state) from inside an open transaction: if
    /// the lazy index build is forced here, it scans through `txn`'s
    /// view so the transaction's own uncommitted materials are indexed.
    pub fn in_state_in(&self, txn: TxnId, state: &str, limit: usize) -> Result<Vec<MaterialId>> {
        self.ensure_state_index_rd(Rd::In(txn))?;
        Ok(self.state_index.members_of(state, limit))
    }

    /// Number of materials currently in `state`.
    pub fn count_in_state(&self, state: &str) -> Result<usize> {
        self.ensure_state_index()?;
        Ok(self.state_index.count_of(state))
    }

    /// [`count_in_state`](Self::count_in_state) from inside an open
    /// transaction (see [`in_state_in`](Self::in_state_in)).
    pub fn count_in_state_in(&self, txn: TxnId, state: &str) -> Result<usize> {
        self.ensure_state_index_rd(Rd::In(txn))?;
        Ok(self.state_index.count_of(state))
    }

    /// All states with at least one material, with counts, sorted by
    /// state name. (The paper's workflow-monitoring report.)
    pub fn state_census(&self) -> Result<Vec<(String, usize)>> {
        self.ensure_state_index()?;
        Ok(self.state_index.census())
    }

    /// [`state_census`](Self::state_census) from inside an open
    /// transaction (see [`in_state_in`](Self::in_state_in)).
    pub fn state_census_in(&self, txn: TxnId) -> Result<Vec<(String, usize)>> {
        self.ensure_state_index_rd(Rd::In(txn))?;
        Ok(self.state_index.census())
    }
}

#[cfg(test)]
mod tests {
    use crate::db::tests::mem_db;
    use crate::db::LabBase;
    use labflow_storage::{MemStore, StorageManager};
    use std::sync::Arc;

    #[test]
    fn set_and_query_state() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.set_state(t, a, "waiting_for_sequencing", 5).unwrap();
        db.set_state(t, b, "waiting_for_sequencing", 6).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.state_of(a).unwrap().as_deref(), Some("waiting_for_sequencing"));
        assert_eq!(db.count_in_state("waiting_for_sequencing").unwrap(), 2);
        let picked = db.in_state("waiting_for_sequencing", 1).unwrap();
        assert_eq!(picked.len(), 1);
        assert_eq!(db.in_state("nonexistent", 10).unwrap().len(), 0);
    }

    #[test]
    fn transition_moves_between_states() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.set_state(t, a, "waiting_for_sequencing", 1).unwrap();
        db.set_state(t, a, "waiting_for_incorporation", 2).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.count_in_state("waiting_for_sequencing").unwrap(), 0);
        assert_eq!(db.count_in_state("waiting_for_incorporation").unwrap(), 1);
        assert_eq!(db.state_of(a).unwrap().as_deref(), Some("waiting_for_incorporation"));
        let info = db.material(a).unwrap();
        assert_eq!(info.state_time, 2);
    }

    #[test]
    fn clear_state_removes_from_census() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.set_state(t, a, "ready", 1).unwrap();
        db.clear_state(t, a, 2).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.state_of(a).unwrap(), None);
        assert_eq!(db.count_in_state("ready").unwrap(), 0);
    }

    #[test]
    fn census_counts_all_states() {
        let db = mem_db();
        let t = db.begin().unwrap();
        for i in 0..5 {
            let m = db.create_material(t, "clone", &format!("c{i}"), 0).unwrap();
            let state = if i < 3 { "s_early" } else { "s_late" };
            db.set_state(t, m, state, 1).unwrap();
        }
        db.commit(t).unwrap();
        assert_eq!(
            db.state_census().unwrap(),
            vec![("s_early".to_string(), 3), ("s_late".to_string(), 2)]
        );
    }

    #[test]
    fn index_rebuilds_after_reopen() {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        let db = LabBase::create(store.clone()).unwrap();
        let t = db.begin().unwrap();
        db.define_material_class(t, "clone", None).unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.set_state(t, a, "queued", 1).unwrap();
        db.set_state(t, b, "queued", 1).unwrap();
        db.commit(t).unwrap();
        drop(db);
        // Fresh LabBase over the same (memory) store: index must rebuild
        // from the material records via the extent walk.
        let db = LabBase::open(store).unwrap();
        assert_eq!(db.count_in_state("queued").unwrap(), 2);
        let t = db.begin().unwrap();
        db.set_state(t, a, "done", 2).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.count_in_state("queued").unwrap(), 1);
        assert_eq!(db.count_in_state("done").unwrap(), 1);
    }
}
