//! Workflow states (the `state(M, S)` predicate of the paper's Section 8)
//! and the in-memory state index that serves the workload's driver query
//! ("give me materials waiting in state S").
//!
//! The authoritative state lives in each `sm_material` record; the index
//! is a cache, built lazily by scanning class extents after open and
//! maintained incrementally afterwards.

use std::collections::{BTreeSet, HashMap};

use labflow_storage::{Oid, TxnId};

use crate::db::LabBase;
use crate::error::Result;
use crate::ids::{MaterialId, ValidTime};

/// In-memory map: state atom → set of material oids (BTreeSet for
/// deterministic iteration, which keeps benchmark runs reproducible).
pub(crate) struct StateIndex {
    built: bool,
    by_state: HashMap<String, BTreeSet<u64>>,
    /// Materials known to exist but with no state set.
    stateless: BTreeSet<u64>,
}

impl StateIndex {
    pub(crate) fn new() -> StateIndex {
        StateIndex { built: false, by_state: HashMap::new(), stateless: BTreeSet::new() }
    }

    pub(crate) fn invalidate(&mut self) {
        self.built = false;
        self.by_state.clear();
        self.stateless.clear();
    }

    pub(crate) fn note_created(&mut self, mat: Oid) {
        if self.built {
            self.stateless.insert(mat.raw());
        }
    }

    fn note_state(&mut self, mat: Oid, old: Option<&str>, new: Option<&str>) {
        if !self.built {
            return;
        }
        match old {
            Some(s) => {
                if let Some(set) = self.by_state.get_mut(s) {
                    set.remove(&mat.raw());
                }
            }
            None => {
                self.stateless.remove(&mat.raw());
            }
        }
        match new {
            Some(s) => {
                self.by_state.entry(s.to_string()).or_default().insert(mat.raw());
            }
            None => {
                self.stateless.insert(mat.raw());
            }
        }
    }
}

impl LabBase {
    fn ensure_state_index(&self) -> Result<()> {
        {
            let index = self.state_index.lock();
            if index.built {
                return Ok(());
            }
        }
        // Build outside the lock-held read path: scan every class extent.
        let heads: Vec<Oid> = self.with_catalog(|c| {
            c.material_classes().iter().map(|mc| mc.extent_head).collect()
        });
        let mut by_state: HashMap<String, BTreeSet<u64>> = HashMap::new();
        let mut stateless = BTreeSet::new();
        for head in heads {
            let mut cur = head;
            while !cur.is_nil() {
                let rec = self.read_material_rec(cur)?;
                if rec.state.is_empty() {
                    stateless.insert(cur.raw());
                } else {
                    by_state.entry(rec.state.clone()).or_default().insert(cur.raw());
                }
                cur = rec.ext_next;
            }
        }
        let mut index = self.state_index.lock();
        index.by_state = by_state;
        index.stateless = stateless;
        index.built = true;
        Ok(())
    }

    /// Set `mat`'s workflow state at valid time `vt` (the
    /// `retract(state(M,s1)), assert(state(M,s2))` transition of the
    /// paper's workflow rules).
    pub fn set_state(
        &self,
        txn: TxnId,
        mat: MaterialId,
        state: &str,
        vt: ValidTime,
    ) -> Result<()> {
        let mut rec = self.read_material_rec(mat.oid())?;
        let old = if rec.state.is_empty() { None } else { Some(rec.state.clone()) };
        rec.state = state.to_string();
        rec.state_time = vt;
        self.write_material_rec(txn, mat.oid(), &rec)?;
        self.state_index.lock().note_state(
            mat.oid(),
            old.as_deref(),
            if state.is_empty() { None } else { Some(state) },
        );
        Ok(())
    }

    /// Clear `mat`'s workflow state (material leaves the workflow).
    pub fn clear_state(&self, txn: TxnId, mat: MaterialId, vt: ValidTime) -> Result<()> {
        self.set_state(txn, mat, "", vt)
    }

    /// The material's current state, if any.
    pub fn state_of(&self, mat: MaterialId) -> Result<Option<String>> {
        let rec = self.read_material_rec(mat.oid())?;
        Ok(if rec.state.is_empty() { None } else { Some(rec.state) })
    }

    /// Up to `limit` materials currently in `state`, in deterministic
    /// (oid) order. This is the workload driver: "pick the next batch of
    /// materials waiting for step X".
    pub fn in_state(&self, state: &str, limit: usize) -> Result<Vec<MaterialId>> {
        self.ensure_state_index()?;
        let index = self.state_index.lock();
        Ok(index
            .by_state
            .get(state)
            .map(|set| {
                set.iter().take(limit).map(|&o| MaterialId::from(Oid::from_raw(o))).collect()
            })
            .unwrap_or_default())
    }

    /// Number of materials currently in `state`.
    pub fn count_in_state(&self, state: &str) -> Result<usize> {
        self.ensure_state_index()?;
        Ok(self.state_index.lock().by_state.get(state).map_or(0, |s| s.len()))
    }

    /// All states with at least one material, with counts, sorted by
    /// state name. (The paper's workflow-monitoring report.)
    pub fn state_census(&self) -> Result<Vec<(String, usize)>> {
        self.ensure_state_index()?;
        let index = self.state_index.lock();
        let mut out: Vec<(String, usize)> = index
            .by_state
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(k, s)| (k.clone(), s.len()))
            .collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::db::tests::mem_db;
    use crate::db::LabBase;
    use labflow_storage::{MemStore, StorageManager};
    use std::sync::Arc;

    #[test]
    fn set_and_query_state() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.set_state(t, a, "waiting_for_sequencing", 5).unwrap();
        db.set_state(t, b, "waiting_for_sequencing", 6).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.state_of(a).unwrap().as_deref(), Some("waiting_for_sequencing"));
        assert_eq!(db.count_in_state("waiting_for_sequencing").unwrap(), 2);
        let picked = db.in_state("waiting_for_sequencing", 1).unwrap();
        assert_eq!(picked.len(), 1);
        assert_eq!(db.in_state("nonexistent", 10).unwrap().len(), 0);
    }

    #[test]
    fn transition_moves_between_states() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.set_state(t, a, "waiting_for_sequencing", 1).unwrap();
        db.set_state(t, a, "waiting_for_incorporation", 2).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.count_in_state("waiting_for_sequencing").unwrap(), 0);
        assert_eq!(db.count_in_state("waiting_for_incorporation").unwrap(), 1);
        assert_eq!(db.state_of(a).unwrap().as_deref(), Some("waiting_for_incorporation"));
        let info = db.material(a).unwrap();
        assert_eq!(info.state_time, 2);
    }

    #[test]
    fn clear_state_removes_from_census() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.set_state(t, a, "ready", 1).unwrap();
        db.clear_state(t, a, 2).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.state_of(a).unwrap(), None);
        assert_eq!(db.count_in_state("ready").unwrap(), 0);
    }

    #[test]
    fn census_counts_all_states() {
        let db = mem_db();
        let t = db.begin().unwrap();
        for i in 0..5 {
            let m = db.create_material(t, "clone", &format!("c{i}"), 0).unwrap();
            let state = if i < 3 { "s_early" } else { "s_late" };
            db.set_state(t, m, state, 1).unwrap();
        }
        db.commit(t).unwrap();
        assert_eq!(
            db.state_census().unwrap(),
            vec![("s_early".to_string(), 3), ("s_late".to_string(), 2)]
        );
    }

    #[test]
    fn index_rebuilds_after_reopen() {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        let db = LabBase::create(store.clone()).unwrap();
        let t = db.begin().unwrap();
        db.define_material_class(t, "clone", None).unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.set_state(t, a, "queued", 1).unwrap();
        db.set_state(t, b, "queued", 1).unwrap();
        db.commit(t).unwrap();
        drop(db);
        // Fresh LabBase over the same (memory) store: index must rebuild
        // from the material records via the extent walk.
        let db = LabBase::open(store).unwrap();
        assert_eq!(db.count_in_state("queued").unwrap(), 2);
        let t = db.begin().unwrap();
        db.set_state(t, a, "done", 2).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.count_in_state("queued").unwrap(), 1);
        assert_eq!(db.count_in_state("done").unwrap(), 1);
    }
}
