//! The user-level schema: material classes (with is-a inheritance, per
//! the paper's two-level EER diagram of Figure 1) and *versioned* step
//! classes (the paper's schema-evolution mechanism, Section 5.1).
//!
//! Redefining a step class creates a new version; existing step instances
//! keep the version that created them forever, so "a schema change does
//! not result in a re-organization or migration of old data". The whole
//! user schema is itself data: one catalog object in the storage manager.

use std::collections::HashMap;

use labflow_storage::Oid;

use crate::enc::{Reader, Writer};
use crate::error::{LabError, Result};
use crate::ids::ClassId;
use crate::value::{AttrType, Value};

/// One attribute declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

/// One immutable version of a step class's attribute set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepClassVersion {
    /// Version number, starting at 1.
    pub version: u32,
    /// The attribute set of this version.
    pub attrs: Vec<AttrDef>,
}

impl StepClassVersion {
    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Validate `(name, value)` pairs against this version.
    pub fn validate(&self, class: &str, attrs: &[(String, Value)]) -> Result<()> {
        for (name, value) in attrs {
            let def = self.attr(name).ok_or_else(|| LabError::UnknownAttr {
                class: class.to_string(),
                attr: name.clone(),
            })?;
            if !value.conforms(def.ty) {
                return Err(LabError::TypeMismatch {
                    attr: name.clone(),
                    expected: def.ty.name(),
                    got: value.to_string(),
                });
            }
        }
        Ok(())
    }
}

/// A step class: a name plus the full version history of its attribute
/// sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepClass {
    /// Class id (shared id space with material classes).
    pub id: ClassId,
    /// Class name.
    pub name: String,
    /// All versions, oldest first. Never empty.
    pub versions: Vec<StepClassVersion>,
}

impl StepClass {
    /// The current (latest) version.
    pub fn current(&self) -> &StepClassVersion {
        // analyzer: allow(panic, "constructors create version 1 and versions are append-only, so the vec is never empty; the accessor is deliberately infallible")
        self.versions.last().expect("step class always has >= 1 version")
    }

    /// A specific version, if it exists.
    pub fn version(&self, v: u32) -> Option<&StepClassVersion> {
        self.versions.iter().find(|ver| ver.version == v)
    }
}

/// A material class, with optional is-a parent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaterialClass {
    /// Class id (shared id space with step classes).
    pub id: ClassId,
    /// Class name.
    pub name: String,
    /// is-a parent, if any.
    pub parent: Option<ClassId>,
    /// Head of the class extent (linked list through `sm_material`
    /// records); [`Oid::NIL`] when empty.
    pub extent_head: Oid,
    /// Cached number of direct instances.
    pub count: u64,
}

/// The whole user-level schema.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    materials: Vec<MaterialClass>,
    steps: Vec<StepClass>,
    mat_by_name: HashMap<String, usize>,
    step_by_name: HashMap<String, usize>,
    next_class: u32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog { next_class: 1, ..Default::default() }
    }

    fn name_taken(&self, name: &str) -> bool {
        self.mat_by_name.contains_key(name) || self.step_by_name.contains_key(name)
    }

    /// Define a material class, optionally a subclass of `parent`.
    pub fn define_material_class(&mut self, name: &str, parent: Option<&str>) -> Result<ClassId> {
        if self.name_taken(name) {
            return Err(LabError::DuplicateClass(name.to_string()));
        }
        let parent_id = match parent {
            Some(p) => Some(self.material_class(p)?.id),
            None => None,
        };
        let id = ClassId(self.next_class);
        self.next_class += 1;
        self.mat_by_name.insert(name.to_string(), self.materials.len());
        self.materials.push(MaterialClass {
            id,
            name: name.to_string(),
            parent: parent_id,
            extent_head: Oid::NIL,
            count: 0,
        });
        Ok(id)
    }

    /// Define a step class with its initial attribute set (version 1).
    pub fn define_step_class(&mut self, name: &str, attrs: Vec<AttrDef>) -> Result<ClassId> {
        if self.name_taken(name) {
            return Err(LabError::DuplicateClass(name.to_string()));
        }
        Self::check_attr_names(&attrs)?;
        let id = ClassId(self.next_class);
        self.next_class += 1;
        self.step_by_name.insert(name.to_string(), self.steps.len());
        self.steps.push(StepClass {
            id,
            name: name.to_string(),
            versions: vec![StepClassVersion { version: 1, attrs }],
        });
        Ok(id)
    }

    /// Redefine a step class: appends a new version with `attrs` and
    /// returns its version number. Old instances keep their version —
    /// the paper's no-migration schema evolution.
    pub fn redefine_step_class(&mut self, name: &str, attrs: Vec<AttrDef>) -> Result<u32> {
        Self::check_attr_names(&attrs)?;
        let idx = *self
            .step_by_name
            .get(name)
            .ok_or_else(|| LabError::UnknownClass(name.to_string()))?;
        let class = &mut self.steps[idx];
        let version = class.current().version + 1;
        class.versions.push(StepClassVersion { version, attrs });
        Ok(version)
    }

    fn check_attr_names(attrs: &[AttrDef]) -> Result<()> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(LabError::DuplicateClass(format!("duplicate attribute '{}'", a.name)));
            }
        }
        Ok(())
    }

    /// Material class by name.
    pub fn material_class(&self, name: &str) -> Result<&MaterialClass> {
        self.mat_by_name
            .get(name)
            .map(|&i| &self.materials[i])
            .ok_or_else(|| LabError::UnknownClass(name.to_string()))
    }

    /// Mutable material class by id.
    pub fn material_class_mut(&mut self, id: ClassId) -> Result<&mut MaterialClass> {
        self.material_class_mut_opt(id).ok_or_else(|| LabError::UnknownClass(id.to_string()))
    }

    /// Mutable material class by id, `None` when unknown — for unwind
    /// paths that must not themselves be fallible (a `?` there would
    /// swallow the error being unwound and leave the shared cache
    /// holding the rolled-back mutation).
    pub(crate) fn material_class_mut_opt(&mut self, id: ClassId) -> Option<&mut MaterialClass> {
        self.materials.iter_mut().find(|c| c.id == id)
    }

    /// Material class by id.
    pub fn material_class_by_id(&self, id: ClassId) -> Result<&MaterialClass> {
        self.materials
            .iter()
            .find(|c| c.id == id)
            .ok_or_else(|| LabError::UnknownClass(id.to_string()))
    }

    /// Step class by name.
    pub fn step_class(&self, name: &str) -> Result<&StepClass> {
        self.step_by_name
            .get(name)
            .map(|&i| &self.steps[i])
            .ok_or_else(|| LabError::UnknownClass(name.to_string()))
    }

    /// Step class by id.
    pub fn step_class_by_id(&self, id: ClassId) -> Result<&StepClass> {
        self.steps
            .iter()
            .find(|c| c.id == id)
            .ok_or_else(|| LabError::UnknownClass(id.to_string()))
    }

    /// All material classes.
    pub fn material_classes(&self) -> &[MaterialClass] {
        &self.materials
    }

    /// All step classes.
    pub fn step_classes(&self) -> &[StepClass] {
        &self.steps
    }

    /// Whether material class `child` is `ancestor` or inherits from it.
    pub fn is_a(&self, child: ClassId, ancestor: ClassId) -> bool {
        let mut cur = Some(child);
        while let Some(id) = cur {
            if id == ancestor {
                return true;
            }
            cur = self.materials.iter().find(|c| c.id == id).and_then(|c| c.parent);
        }
        false
    }

    // ---- persistence ------------------------------------------------------

    /// Encode the catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.next_class);
        w.u32(self.materials.len() as u32);
        for m in &self.materials {
            w.u32(m.id.0);
            w.str(&m.name);
            w.u32(m.parent.map_or(0, |p| p.0));
            w.u64(m.extent_head.raw());
            w.u64(m.count);
        }
        w.u32(self.steps.len() as u32);
        for s in &self.steps {
            w.u32(s.id.0);
            w.str(&s.name);
            w.u32(s.versions.len() as u32);
            for v in &s.versions {
                w.u32(v.version);
                w.u32(v.attrs.len() as u32);
                for a in &v.attrs {
                    w.str(&a.name);
                    a.ty.encode(&mut w);
                }
            }
        }
        w.finish()
    }

    /// Decode a catalog.
    pub fn decode(data: &[u8]) -> Result<Catalog> {
        let mut r = Reader::new(data);
        let next_class = r.u32()?;
        let nmat = r.u32()? as usize;
        let mut materials = Vec::with_capacity(nmat);
        let mut mat_by_name = HashMap::with_capacity(nmat);
        for i in 0..nmat {
            let id = ClassId(r.u32()?);
            let name = r.str()?;
            let parent_raw = r.u32()?;
            let parent = if parent_raw == 0 { None } else { Some(ClassId(parent_raw)) };
            let extent_head = Oid::from_raw(r.u64()?);
            let count = r.u64()?;
            mat_by_name.insert(name.clone(), i);
            materials.push(MaterialClass { id, name, parent, extent_head, count });
        }
        let nstep = r.u32()? as usize;
        let mut steps = Vec::with_capacity(nstep);
        let mut step_by_name = HashMap::with_capacity(nstep);
        for i in 0..nstep {
            let id = ClassId(r.u32()?);
            let name = r.str()?;
            let nver = r.u32()? as usize;
            let mut versions = Vec::with_capacity(nver);
            for _ in 0..nver {
                let version = r.u32()?;
                let nattr = r.u32()? as usize;
                let mut attrs = Vec::with_capacity(nattr);
                for _ in 0..nattr {
                    let name = r.str()?;
                    let ty = AttrType::decode(&mut r)?;
                    attrs.push(AttrDef { name, ty });
                }
                versions.push(StepClassVersion { version, attrs });
            }
            if versions.is_empty() {
                return Err(LabError::Decode(format!("step class '{name}' has no versions")));
            }
            step_by_name.insert(name.clone(), i);
            steps.push(StepClass { id, name, versions });
        }
        Ok(Catalog { materials, steps, mat_by_name, step_by_name, next_class })
    }
}

/// Shorthand for building attribute lists.
pub fn attrs(defs: &[(&str, AttrType)]) -> Vec<AttrDef> {
    defs.iter().map(|(n, t)| AttrDef { name: n.to_string(), ty: *t }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.define_material_class("material", None).unwrap();
        c.define_material_class("clone", Some("material")).unwrap();
        c.define_material_class("tclone", Some("clone")).unwrap();
        c.define_step_class(
            "determine_sequence",
            attrs(&[("sequence", AttrType::Dna), ("quality", AttrType::Real)]),
        )
        .unwrap();
        c
    }

    #[test]
    fn define_and_lookup() {
        let c = sample();
        assert_eq!(c.material_class("clone").unwrap().name, "clone");
        assert_eq!(c.step_class("determine_sequence").unwrap().current().version, 1);
        assert!(c.material_class("gel").is_err());
        assert!(c.step_class("clone").is_err(), "material names are not step names");
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let mut c = sample();
        assert!(matches!(
            c.define_material_class("clone", None),
            Err(LabError::DuplicateClass(_))
        ));
        assert!(matches!(
            c.define_step_class("clone", vec![]),
            Err(LabError::DuplicateClass(_))
        ));
        assert!(matches!(
            c.define_material_class("determine_sequence", None),
            Err(LabError::DuplicateClass(_))
        ));
    }

    #[test]
    fn is_a_walks_parent_chain() {
        let c = sample();
        let mat = c.material_class("material").unwrap().id;
        let clone = c.material_class("clone").unwrap().id;
        let tclone = c.material_class("tclone").unwrap().id;
        assert!(c.is_a(tclone, tclone));
        assert!(c.is_a(tclone, clone));
        assert!(c.is_a(tclone, mat));
        assert!(!c.is_a(mat, tclone));
    }

    #[test]
    fn evolution_appends_versions_and_preserves_old() {
        let mut c = sample();
        let v2 = c
            .redefine_step_class(
                "determine_sequence",
                attrs(&[
                    ("sequence", AttrType::Dna),
                    ("quality", AttrType::Real),
                    ("machine", AttrType::Str),
                ]),
            )
            .unwrap();
        assert_eq!(v2, 2);
        let class = c.step_class("determine_sequence").unwrap();
        assert_eq!(class.current().version, 2);
        assert!(class.current().attr("machine").is_some());
        let v1 = class.version(1).unwrap();
        assert!(v1.attr("machine").is_none(), "old version untouched");
        assert!(class.version(3).is_none());
    }

    #[test]
    fn redefine_unknown_class_fails() {
        let mut c = sample();
        assert!(matches!(c.redefine_step_class("nope", vec![]), Err(LabError::UnknownClass(_))));
    }

    #[test]
    fn validation_catches_unknown_attr_and_type() {
        let c = sample();
        let v = c.step_class("determine_sequence").unwrap().current();
        v.validate(
            "determine_sequence",
            &[("sequence".into(), Value::dna("ACGT").unwrap()), ("quality".into(), Value::Int(9))],
        )
        .unwrap();
        assert!(matches!(
            v.validate("determine_sequence", &[("lane".into(), Value::Int(1))]),
            Err(LabError::UnknownAttr { .. })
        ));
        assert!(matches!(
            v.validate("determine_sequence", &[("quality".into(), Value::Bool(true))]),
            Err(LabError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_attrs_rejected() {
        let mut c = Catalog::new();
        let err = c
            .define_step_class("s", attrs(&[("a", AttrType::Int), ("a", AttrType::Str)]))
            .unwrap_err();
        assert!(matches!(err, LabError::DuplicateClass(_)));
    }

    #[test]
    fn catalog_encode_decode_round_trip() {
        let mut c = sample();
        c.redefine_step_class(
            "determine_sequence",
            attrs(&[("sequence", AttrType::Dna), ("machine", AttrType::Str)]),
        )
        .unwrap();
        // Simulate extent bookkeeping.
        let clone_id = c.material_class("clone").unwrap().id;
        let m = c.material_class_mut(clone_id).unwrap();
        m.extent_head = Oid::from_raw(77);
        m.count = 12;

        let bytes = c.encode();
        let d = Catalog::decode(&bytes).unwrap();
        assert_eq!(d.material_classes().len(), 3);
        assert_eq!(d.step_classes().len(), 1);
        assert_eq!(d.material_class("clone").unwrap().extent_head, Oid::from_raw(77));
        assert_eq!(d.material_class("clone").unwrap().count, 12);
        assert_eq!(d.step_class("determine_sequence").unwrap().versions.len(), 2);
        // Ids keep being unique after reload.
        let mut d = d;
        let new_id = d.define_material_class("gel", None).unwrap();
        assert!(d.material_classes().iter().filter(|c| c.id == new_id).count() == 1);
        assert!(!c.material_classes().iter().any(|c| c.id == new_id));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Catalog::decode(&[1, 2, 3]).is_err());
    }
}
