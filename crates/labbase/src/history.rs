//! Event-history maintenance: newest-first per-material history lists,
//! ordered by **valid time** (paper Section 7).
//!
//! "Steps can be entered into the database in any order, and there is no
//! guarantee that a step being entered is the most recent" — so insertion
//! walks from the head to the correct valid-time position, and the
//! most-recent cache ([`crate::smrecord::RecentRecord`]) only absorbs
//! values with newer-or-equal valid times.

use labflow_storage::{ClusterHint, Oid, TxnId};

use crate::db::{LabBase, Rd, SEG_HISTORY};
use crate::error::{LabError, Result};
use crate::ids::{MaterialId, StepId, ValidTime};
use crate::smrecord::HistoryNode;

/// One entry of a material's history, newest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryEntry {
    /// The step instance.
    pub step: StepId,
    /// Its valid time.
    pub valid_time: ValidTime,
}

impl LabBase {
    pub(crate) fn read_node(&self, rd: Rd, oid: Oid) -> Result<HistoryNode> {
        HistoryNode::decode(&self.rd_bytes(rd, oid)?)
    }

    fn write_node(&self, txn: TxnId, oid: Oid, node: &HistoryNode) -> Result<()> {
        Ok(self.store.update(txn, oid, &node.encode())?)
    }

    /// Link `step` into `mat`'s history at the position its valid time
    /// demands. Newest-first; ties go before existing equal-time nodes.
    pub(crate) fn link_event(
        &self,
        txn: TxnId,
        mat: Oid,
        step: Oid,
        valid_time: ValidTime,
    ) -> Result<()> {
        let rd = Rd::In(txn);
        let mut mrec = self.read_material_rec_rd(rd, mat)?;
        let hint = ClusterHint::near(mat);
        if mrec.history_head.is_nil() {
            let node = HistoryNode { step, valid_time, next: Oid::NIL };
            let node_oid = self.store.allocate(txn, SEG_HISTORY, hint, &node.encode())?;
            mrec.history_head = node_oid;
            return self.write_material_rec(txn, mat, &mrec);
        }
        let head = self.read_node(rd, mrec.history_head)?;
        if valid_time >= head.valid_time {
            // Common case: the new event is the most recent.
            let node = HistoryNode { step, valid_time, next: mrec.history_head };
            let node_oid = self.store.allocate(txn, SEG_HISTORY, hint, &node.encode())?;
            mrec.history_head = node_oid;
            return self.write_material_rec(txn, mat, &mrec);
        }
        // Out-of-order arrival: walk to the insertion point.
        let mut prev_oid = mrec.history_head;
        let mut prev = head;
        loop {
            if prev.next.is_nil() {
                let node = HistoryNode { step, valid_time, next: Oid::NIL };
                let node_oid = self.store.allocate(txn, SEG_HISTORY, hint, &node.encode())?;
                prev.next = node_oid;
                return self.write_node(txn, prev_oid, &prev);
            }
            let next_oid = prev.next;
            let next = self.read_node(rd, next_oid)?;
            if valid_time >= next.valid_time {
                let node = HistoryNode { step, valid_time, next: next_oid };
                let node_oid = self.store.allocate(txn, SEG_HISTORY, hint, &node.encode())?;
                prev.next = node_oid;
                return self.write_node(txn, prev_oid, &prev);
            }
            prev_oid = next_oid;
            prev = next;
        }
    }

    pub(crate) fn history_rd(&self, rd: Rd, mat: MaterialId) -> Result<Vec<HistoryEntry>> {
        let mrec = self.read_material_rec_rd(rd, mat.oid())?;
        let mut out = Vec::new();
        let mut cur = mrec.history_head;
        while !cur.is_nil() {
            let node = self.read_node(rd, cur)?;
            out.push(HistoryEntry { step: StepId::from(node.step), valid_time: node.valid_time });
            cur = node.next;
        }
        Ok(out)
    }

    /// The material's full history, newest first (committed state).
    pub fn history(&self, mat: MaterialId) -> Result<Vec<HistoryEntry>> {
        self.history_rd(Rd::Latest, mat)
    }

    /// The material's full history as seen by the open transaction
    /// `txn`, including events it has recorded but not yet committed.
    pub fn history_in(&self, txn: TxnId, mat: MaterialId) -> Result<Vec<HistoryEntry>> {
        self.history_rd(Rd::In(txn), mat)
    }

    /// Number of events in the material's history.
    pub fn history_len(&self, mat: MaterialId) -> Result<usize> {
        Ok(self.history(mat)?.len())
    }

    /// The value of `attr` for `mat` **as of** valid time `at`: the value
    /// recorded by the newest step with `valid_time <= at` that carries
    /// the attribute. Walks the history and faults in step payloads —
    /// the historical-query path of the benchmark.
    pub fn as_of(
        &self,
        mat: MaterialId,
        attr: &str,
        at: ValidTime,
    ) -> Result<Option<(ValidTime, crate::value::Value)>> {
        self.as_of_rd(Rd::Latest, mat, attr, at)
    }

    pub(crate) fn as_of_rd(
        &self,
        rd: Rd,
        mat: MaterialId,
        attr: &str,
        at: ValidTime,
    ) -> Result<Option<(ValidTime, crate::value::Value)>> {
        let mrec = self.read_material_rec_rd(rd, mat.oid())?;
        let mut cur = mrec.history_head;
        while !cur.is_nil() {
            let node = self.read_node(rd, cur)?;
            if node.valid_time <= at {
                let step = self.read_step_rec_rd(rd, node.step)?;
                if let Some(v) = step.attr(attr) {
                    return Ok(Some((node.valid_time, v.clone())));
                }
            }
            cur = node.next;
        }
        Ok(None)
    }

    /// Every attribute's value **as of** valid time `at`: the full
    /// material snapshot the lab would have seen then. Walks the history
    /// once, newest-first, taking the first (= most recent ≤ `at`)
    /// occurrence of each attribute.
    pub fn recent_all_at(
        &self,
        mat: MaterialId,
        at: ValidTime,
    ) -> Result<Vec<(String, ValidTime, crate::value::Value)>> {
        self.recent_all_at_rd(Rd::Latest, mat, at)
    }

    pub(crate) fn recent_all_at_rd(
        &self,
        rd: Rd,
        mat: MaterialId,
        at: ValidTime,
    ) -> Result<Vec<(String, ValidTime, crate::value::Value)>> {
        let mrec = self.read_material_rec_rd(rd, mat.oid())?;
        let mut out: Vec<(String, ValidTime, crate::value::Value)> = Vec::new();
        let mut cur = mrec.history_head;
        while !cur.is_nil() {
            let node = self.read_node(rd, cur)?;
            if node.valid_time <= at {
                let step = self.read_step_rec_rd(rd, node.step)?;
                for (name, value) in &step.attrs {
                    if !out.iter().any(|(n, _, _)| n == name) {
                        out.push((name.clone(), node.valid_time, value.clone()));
                    }
                }
            }
            cur = node.next;
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// History entries with valid time in `[from, to]`, newest first —
    /// the audit-trail range query behind "what happened to M last week".
    pub fn history_between(
        &self,
        mat: MaterialId,
        from: ValidTime,
        to: ValidTime,
    ) -> Result<Vec<HistoryEntry>> {
        self.history_between_rd(Rd::Latest, mat, from, to)
    }

    pub(crate) fn history_between_rd(
        &self,
        rd: Rd,
        mat: MaterialId,
        from: ValidTime,
        to: ValidTime,
    ) -> Result<Vec<HistoryEntry>> {
        let mrec = self.read_material_rec_rd(rd, mat.oid())?;
        let mut out = Vec::new();
        let mut cur = mrec.history_head;
        while !cur.is_nil() {
            let node = self.read_node(rd, cur)?;
            if node.valid_time < from {
                break; // sorted newest-first: nothing older qualifies
            }
            if node.valid_time <= to {
                out.push(HistoryEntry {
                    step: StepId::from(node.step),
                    valid_time: node.valid_time,
                });
            }
            cur = node.next;
        }
        Ok(out)
    }

    /// Retract a step instance: unlink it from every involved material's
    /// history, recompute any most-recent entries it provided, and free
    /// the event object. The inverse of
    /// [`record_step`](LabBase::record_step).
    pub fn retract_step(&self, txn: TxnId, step: StepId) -> Result<()> {
        let rec = self.read_step_rec_rd(Rd::In(txn), step.oid())?;
        for &mat in &rec.materials {
            self.unlink_event(txn, mat, step.oid())?;
            self.recompute_after_retract(txn, mat, step.oid())?;
        }
        self.store.free(txn, step.oid())?;
        Ok(())
    }

    fn unlink_event(&self, txn: TxnId, mat: Oid, step: Oid) -> Result<()> {
        let rd = Rd::In(txn);
        let mut mrec = self.read_material_rec_rd(rd, mat)?;
        if mrec.history_head.is_nil() {
            return Err(LabError::UnknownStep(StepId::from(step)));
        }
        let head = self.read_node(rd, mrec.history_head)?;
        if head.step == step {
            let dead = mrec.history_head;
            mrec.history_head = head.next;
            self.write_material_rec(txn, mat, &mrec)?;
            self.store.free(txn, dead)?;
            return Ok(());
        }
        let mut prev_oid = mrec.history_head;
        let mut prev = head;
        while !prev.next.is_nil() {
            let next_oid = prev.next;
            let next = self.read_node(rd, next_oid)?;
            if next.step == step {
                prev.next = next.next;
                self.write_node(txn, prev_oid, &prev)?;
                self.store.free(txn, next_oid)?;
                return Ok(());
            }
            prev_oid = next_oid;
            prev = next;
        }
        Err(LabError::UnknownStep(StepId::from(step)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::tests::mem_db;
    use crate::value::Value;

    fn seq_attrs(q: f64) -> Vec<(String, Value)> {
        vec![("quality".into(), Value::Real(q))]
    }

    #[test]
    fn history_is_newest_first() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "c1", 0).unwrap();
        let s1 = db.record_step(t, "determine_sequence", 10, &[m], seq_attrs(0.1)).unwrap();
        let s2 = db.record_step(t, "determine_sequence", 20, &[m], seq_attrs(0.2)).unwrap();
        let s3 = db.record_step(t, "determine_sequence", 30, &[m], seq_attrs(0.3)).unwrap();
        db.commit(t).unwrap();
        let h = db.history(m).unwrap();
        assert_eq!(
            h.iter().map(|e| e.step).collect::<Vec<_>>(),
            vec![s3, s2, s1],
            "newest first"
        );
        assert_eq!(h.iter().map(|e| e.valid_time).collect::<Vec<_>>(), vec![30, 20, 10]);
        assert_eq!(db.history_len(m).unwrap(), 3);
    }

    #[test]
    fn out_of_order_insertion_lands_in_valid_time_position() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "c1", 0).unwrap();
        db.record_step(t, "determine_sequence", 10, &[m], seq_attrs(0.1)).unwrap();
        db.record_step(t, "determine_sequence", 30, &[m], seq_attrs(0.3)).unwrap();
        // Arrives last, belongs in the middle.
        db.record_step(t, "determine_sequence", 20, &[m], seq_attrs(0.2)).unwrap();
        // Arrives last, belongs at the very end.
        db.record_step(t, "determine_sequence", 5, &[m], seq_attrs(0.05)).unwrap();
        db.commit(t).unwrap();
        let times: Vec<_> = db.history(m).unwrap().iter().map(|e| e.valid_time).collect();
        assert_eq!(times, vec![30, 20, 10, 5]);
    }

    #[test]
    fn as_of_walks_valid_time() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "c1", 0).unwrap();
        db.record_step(t, "determine_sequence", 10, &[m], seq_attrs(0.1)).unwrap();
        db.record_step(t, "determine_sequence", 20, &[m], seq_attrs(0.2)).unwrap();
        db.record_step(t, "determine_sequence", 30, &[m], seq_attrs(0.3)).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.as_of(m, "quality", 25).unwrap(), Some((20, Value::Real(0.2))));
        assert_eq!(db.as_of(m, "quality", 30).unwrap(), Some((30, Value::Real(0.3))));
        assert_eq!(db.as_of(m, "quality", 9).unwrap(), None);
        assert_eq!(db.as_of(m, "sequence", 100).unwrap(), None, "attr never recorded");
    }

    #[test]
    fn shared_step_appears_in_every_material_history() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        let s = db.record_step(t, "determine_sequence", 5, &[a, b], seq_attrs(0.5)).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.history(a).unwrap()[0].step, s);
        assert_eq!(db.history(b).unwrap()[0].step, s);
    }

    #[test]
    fn retract_step_unlinks_everywhere_and_frees() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        let s1 = db.record_step(t, "determine_sequence", 10, &[a, b], seq_attrs(0.1)).unwrap();
        let s2 = db.record_step(t, "determine_sequence", 20, &[a], seq_attrs(0.2)).unwrap();
        db.retract_step(t, s1).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.history(a).unwrap().iter().map(|e| e.step).collect::<Vec<_>>(), vec![s2]);
        assert!(db.history(b).unwrap().is_empty());
        assert!(matches!(db.step(s1), Err(LabError::UnknownStep(_))));
    }

    #[test]
    fn retract_middle_and_head_of_list() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        let s1 = db.record_step(t, "determine_sequence", 10, &[m], seq_attrs(0.1)).unwrap();
        let s2 = db.record_step(t, "determine_sequence", 20, &[m], seq_attrs(0.2)).unwrap();
        let s3 = db.record_step(t, "determine_sequence", 30, &[m], seq_attrs(0.3)).unwrap();
        // The transaction's own splices are pending until commit, so the
        // mid-transaction checks go through the read-your-own-writes view.
        db.retract_step(t, s2).unwrap(); // middle
        assert_eq!(
            db.history_in(t, m).unwrap().iter().map(|e| e.step).collect::<Vec<_>>(),
            vec![s3, s1]
        );
        db.retract_step(t, s3).unwrap(); // head
        assert_eq!(
            db.history_in(t, m).unwrap().iter().map(|e| e.step).collect::<Vec<_>>(),
            vec![s1]
        );
        db.retract_step(t, s1).unwrap(); // last
        assert!(db.history_in(t, m).unwrap().is_empty());
        db.commit(t).unwrap();
        assert!(db.history(m).unwrap().is_empty());
    }

    #[test]
    fn recent_all_at_snapshots_every_attribute() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        db.record_step(
            t,
            "determine_sequence",
            10,
            &[m],
            vec![
                ("quality".into(), Value::Real(0.1)),
                ("sequence".into(), Value::dna("AAAA").unwrap()),
            ],
        )
        .unwrap();
        db.record_step(t, "determine_sequence", 20, &[m], seq_attrs(0.2)).unwrap();
        db.commit(t).unwrap();
        // At t=15: both attrs from the t=10 step.
        let snap = db.recent_all_at(m, 15).unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "quality");
        assert_eq!(snap[0].1, 10);
        // At t=25: quality refreshed at 20, sequence still from 10.
        let snap = db.recent_all_at(m, 25).unwrap();
        let quality = snap.iter().find(|(n, _, _)| n == "quality").unwrap();
        let sequence = snap.iter().find(|(n, _, _)| n == "sequence").unwrap();
        assert_eq!(quality.1, 20);
        assert_eq!(sequence.1, 10);
        // Before anything happened: empty.
        assert!(db.recent_all_at(m, 5).unwrap().is_empty());
    }

    #[test]
    fn history_between_respects_bounds() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        for vt in [10, 20, 30, 40] {
            db.record_step(t, "determine_sequence", vt, &[m], seq_attrs(vt as f64)).unwrap();
        }
        db.commit(t).unwrap();
        let mid = db.history_between(m, 15, 35).unwrap();
        assert_eq!(mid.iter().map(|e| e.valid_time).collect::<Vec<_>>(), vec![30, 20]);
        let all = db.history_between(m, 0, 100).unwrap();
        assert_eq!(all.len(), 4);
        assert!(db.history_between(m, 50, 100).unwrap().is_empty());
        assert!(db.history_between(m, 35, 15).unwrap().is_empty(), "inverted range");
        // Inclusive bounds.
        let exact = db.history_between(m, 20, 30).unwrap();
        assert_eq!(exact.iter().map(|e| e.valid_time).collect::<Vec<_>>(), vec![30, 20]);
    }

    #[test]
    fn empty_history_reads_fine() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        db.commit(t).unwrap();
        assert!(db.history(m).unwrap().is_empty());
        assert_eq!(db.as_of(m, "quality", 100).unwrap(), None);
    }
}
