//! Typed wrappers distinguishing material and step object ids.

use std::fmt;

use labflow_storage::Oid;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
        pub struct $name(Oid);

        impl $name {
            /// The underlying storage oid.
            pub fn oid(self) -> Oid {
                self.0
            }
        }

        impl From<Oid> for $name {
            fn from(oid: Oid) -> Self {
                $name(oid)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0.raw())
            }
        }
    };
}

id_newtype!(
    /// Identifies a material instance (`sm_material` record).
    MaterialId,
    "m"
);
id_newtype!(
    /// Identifies a step instance (`sm_step` record) — one event in the
    /// workflow history.
    StepId,
    "s"
);

/// Identifies a material or step class in the user-level schema.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A valid time, in abstract workload ticks. The paper stresses that
/// "most recent" is defined over *valid* time, not transaction time:
/// steps may be entered out of order.
pub type ValidTime = i64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_distinctly() {
        let m = MaterialId::from(Oid::from_raw(5));
        let s = StepId::from(Oid::from_raw(5));
        assert_eq!(m.to_string(), "m5");
        assert_eq!(s.to_string(), "s5");
        assert_eq!(m.oid(), s.oid());
        assert_eq!(ClassId(2).to_string(), "c2");
    }
}
