//! Whole-database integrity checking — LabBase's `fsck`.
//!
//! Walks every structure the fixed storage schema defines and
//! cross-checks the invariants the rest of the crate relies on:
//!
//! * class extents are well-formed chains of decodable `sm_material`s,
//!   and their lengths match the catalog's cached counts;
//! * every history list is sorted newest-first by valid time, every node
//!   points at a decodable `sm_step` that `involves` the material, and
//!   every step's class/version exists in the catalog;
//! * every most-recent cache entry is provided by a step in the
//!   material's history, carries that step's value, and is the *newest*
//!   provider of its attribute;
//! * every material-set member is a live material.
//!
//! Returns a report rather than failing fast, so operators (and the
//! benchmark harness) can see all damage at once.

use std::collections::HashSet;

use crate::db::LabBase;
use crate::error::Result;
use crate::ids::MaterialId;

/// Outcome of [`LabBase::check_integrity`].
#[derive(Debug, Default, Clone)]
pub struct IntegrityReport {
    /// Materials visited.
    pub materials: u64,
    /// Distinct step instances visited.
    pub steps: u64,
    /// History nodes visited.
    pub history_nodes: u64,
    /// Set memberships visited.
    pub set_members: u64,
    /// Everything that is wrong, one line each (empty = healthy).
    pub problems: Vec<String>,
}

impl IntegrityReport {
    /// Whether the database passed every check.
    pub fn is_healthy(&self) -> bool {
        self.problems.is_empty()
    }
}

impl LabBase {
    /// Run the full integrity check. Read-only; cost is a complete scan
    /// of every extent, history, cache, and set.
    pub fn check_integrity(&self) -> Result<IntegrityReport> {
        let mut report = IntegrityReport::default();
        let mut seen_steps: HashSet<u64> = HashSet::new();

        let classes: Vec<(String, u64)> = self.with_catalog(|c| {
            c.material_classes().iter().map(|mc| (mc.name.clone(), mc.count)).collect()
        });

        for (class, cached_count) in &classes {
            let extent = match self.class_extent(class, false) {
                Ok(e) => e,
                Err(e) => {
                    report.problems.push(format!("extent of '{class}' unreadable: {e}"));
                    continue;
                }
            };
            if extent.len() as u64 != *cached_count {
                report.problems.push(format!(
                    "class '{class}': cached count {cached_count} != extent length {}",
                    extent.len()
                ));
            }
            for mat in extent {
                report.materials += 1;
                self.check_material(mat, &mut report, &mut seen_steps)?;
            }
        }

        // Sets reference live materials.
        for set in self.set_names() {
            match self.set_members(&set) {
                Ok(members) => {
                    for m in members {
                        report.set_members += 1;
                        if !self.material_exists(m) {
                            report
                                .problems
                                .push(format!("set '{set}' references dead material {m}"));
                        }
                    }
                }
                Err(e) => report.problems.push(format!("set '{set}' unreadable: {e}")),
            }
        }

        report.steps = seen_steps.len() as u64;
        Ok(report)
    }

    fn check_material(
        &self,
        mat: MaterialId,
        report: &mut IntegrityReport,
        seen_steps: &mut HashSet<u64>,
    ) -> Result<()> {
        let history = match self.history(mat) {
            Ok(h) => h,
            Err(e) => {
                report.problems.push(format!("history of {mat} unreadable: {e}"));
                return Ok(());
            }
        };
        // Sorted newest-first.
        for w in history.windows(2) {
            if w[0].valid_time < w[1].valid_time {
                report.problems.push(format!(
                    "history of {mat} out of order: {} before {}",
                    w[0].valid_time, w[1].valid_time
                ));
                break;
            }
        }
        for entry in &history {
            report.history_nodes += 1;
            seen_steps.insert(entry.step.oid().raw());
            let info = match self.step(entry.step) {
                Ok(i) => i,
                Err(e) => {
                    report
                        .problems
                        .push(format!("{mat}: history step {} unreadable: {e}", entry.step));
                    continue;
                }
            };
            if info.valid_time != entry.valid_time {
                report.problems.push(format!(
                    "{mat}: node time {} != step {} time {}",
                    entry.valid_time, entry.step, info.valid_time
                ));
            }
            if !info.materials.contains(&mat) {
                report.problems.push(format!(
                    "{mat}: step {} does not involve the material whose history holds it",
                    entry.step
                ));
            }
            if self.step_schema(entry.step).is_err() {
                report.problems.push(format!(
                    "{mat}: step {} references a missing class version",
                    entry.step
                ));
            }
        }

        // Most-recent cache: every entry backed by the newest provider.
        match self.recent_all(mat) {
            Ok(entries) => {
                for (attr, recent) in entries {
                    match self.recent_uncached(mat, &attr)? {
                        None => report.problems.push(format!(
                            "{mat}: cache has '{attr}' but no history step provides it"
                        )),
                        Some(derived) => {
                            if derived.valid_time != recent.valid_time
                                || derived.value != recent.value
                            {
                                report.problems.push(format!(
                                    "{mat}: cache '{attr}' = {} @{} but history derives {} @{}",
                                    recent.value,
                                    recent.valid_time,
                                    derived.value,
                                    derived.valid_time
                                ));
                            }
                        }
                    }
                }
            }
            Err(e) => report.problems.push(format!("recent cache of {mat} unreadable: {e}")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::db::tests::mem_db;
    use crate::value::Value;

    #[test]
    fn healthy_database_passes() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.record_step(
            t,
            "determine_sequence",
            10,
            &[a, b],
            vec![("quality".into(), Value::Real(0.9))],
        )
        .unwrap();
        db.record_step(t, "determine_sequence", 5, &[a], vec![]).unwrap();
        db.set_state(t, a, "s", 10).unwrap();
        db.create_set(t, "q").unwrap();
        db.add_to_set(t, "q", b).unwrap();
        db.commit(t).unwrap();

        let report = db.check_integrity().unwrap();
        assert!(report.is_healthy(), "problems: {:?}", report.problems);
        assert_eq!(report.materials, 2);
        assert_eq!(report.steps, 2);
        assert_eq!(report.history_nodes, 3, "shared step counted per history");
        assert_eq!(report.set_members, 1);
    }

    #[test]
    fn empty_database_passes() {
        let db = mem_db();
        let report = db.check_integrity().unwrap();
        assert!(report.is_healthy());
        assert_eq!(report.materials, 0);
    }

    #[test]
    fn retraction_keeps_database_healthy() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let s1 = db
            .record_step(t, "determine_sequence", 10, &[a], vec![("quality".into(), Value::Real(0.1))])
            .unwrap();
        db.record_step(t, "determine_sequence", 20, &[a], vec![("quality".into(), Value::Real(0.2))])
            .unwrap();
        db.retract_step(t, s1).unwrap();
        db.commit(t).unwrap();
        let report = db.check_integrity().unwrap();
        assert!(report.is_healthy(), "problems: {:?}", report.problems);
        assert_eq!(report.steps, 1);
    }

    #[test]
    fn corrupted_cache_is_detected() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.record_step(t, "determine_sequence", 10, &[a], vec![("quality".into(), Value::Real(0.5))])
            .unwrap();
        db.commit(t).unwrap();
        // Sabotage in a second transaction: overwrite the (now committed)
        // recent cache with a bogus value through the storage layer.
        let t = db.begin().unwrap();
        let mrec = db.read_material_rec(a.oid()).unwrap();
        let mut cache = db.read_recent_rec(mrec.recent).unwrap();
        cache.entries[0].value = Value::Real(9.9);
        db.store().update(t, mrec.recent, &cache.encode()).unwrap();
        db.commit(t).unwrap();

        let report = db.check_integrity().unwrap();
        assert!(!report.is_healthy());
        assert!(report.problems[0].contains("cache 'quality'"), "{:?}", report.problems);
    }

    #[test]
    fn dead_set_member_is_detected() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.create_set(t, "q").unwrap();
        db.add_to_set(t, "q", a).unwrap();
        // Sabotage: free the material record out from under the set
        // (and its extent — so also expect a count mismatch).
        db.store().free(t, a.oid()).unwrap();
        db.commit(t).unwrap();
        let report = db.check_integrity().unwrap();
        assert!(!report.is_healthy());
        assert!(report
            .problems
            .iter()
            .any(|p| p.contains("dead material") || p.contains("unreadable")));
    }
}
