//! Per-client sessions: one open transaction plus the in-memory cache
//! footprint it has accumulated.
//!
//! The raw [`LabBase::begin`]/[`LabBase::abort`] API is safe but blunt:
//! because the shared caches (state index, name index, catalog) may have
//! absorbed updates from the aborting transaction, `abort` invalidates
//! them wholesale and every session pays to rebuild. A [`Session`]
//! instead records which cache entries *its own* transaction touched —
//! materials created, state transitions made, catalog/sets-directory
//! rewrites — and on abort undoes exactly that footprint, leaving other
//! sessions' warm cache entries intact. This is what makes abort-and-
//! retry affordable under multi-client lock contention.

use labflow_storage::{wait_snapshot, Oid, Snapshot, TxnId, WaitSnapshot};

use crate::db::LabBase;
use crate::error::Result;
use crate::history::HistoryEntry;
use crate::ids::{ClassId, MaterialId, StepId, ValidTime};
use crate::recent::Recent;
use crate::schema::AttrDef;
use crate::value::Value;
use crate::view::View;

/// The in-memory cache entries one transaction has touched.
#[derive(Default)]
pub(crate) struct Footprint {
    /// Materials created: `(oid, external name)`. On abort these are
    /// removed from the state and name indexes.
    pub created: Vec<(Oid, String)>,
    /// State transitions `(material, old, new)` in execution order. On
    /// abort they are replayed in reverse against the state index.
    pub state_changes: Vec<(Oid, Option<String>, Option<String>)>,
    /// The catalog object was rewritten (schema change).
    pub catalog_dirty: bool,
    /// The sets directory was rewritten (set created/dropped).
    pub sets_dirty: bool,
}

/// One client's open transaction on a [`LabBase`].
///
/// Dropping an unfinished session aborts it (best-effort); call
/// [`Session::commit`] or [`Session::abort`] explicitly to observe
/// errors. Reads do not need the session — use the [`LabBase`] query API
/// directly.
pub struct Session<'a> {
    db: &'a LabBase,
    txn: TxnId,
    /// The snapshot pinned when the session began: the committed state
    /// the session's transaction started from. Queries through
    /// [`Session::view`] read this stable cut; released on
    /// commit/abort/drop so version GC can move past it.
    snap: Snapshot,
    footprint: Footprint,
    finished: bool,
    waits_at_begin: WaitSnapshot,
}

impl LabBase {
    /// Begin a transaction wrapped in a footprint-tracking session. Also
    /// pins a snapshot of the committed state at session start, so the
    /// session can run consistent reads against its starting point.
    pub fn session(&self) -> Result<Session<'_>> {
        self.check_writable()?;
        let txn = self.store.begin()?;
        let snap = match self.store.begin_snapshot() {
            Ok(s) => s,
            Err(e) => {
                let _ = self.store.abort(txn);
                return Err(e.into());
            }
        };
        self.sessions_open.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        Ok(Session {
            db: self,
            txn,
            snap,
            footprint: Footprint::default(),
            finished: false,
            waits_at_begin: wait_snapshot(),
        })
    }
}

impl<'a> Session<'a> {
    /// The underlying transaction id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The database this session runs against.
    pub fn db(&self) -> &'a LabBase {
        self.db
    }

    /// The snapshot pinned when this session began.
    pub fn snapshot(&self) -> Snapshot {
        self.snap
    }

    /// A read view at the session's begin snapshot: the committed state
    /// the transaction started from, unaffected by concurrent commits
    /// *and* by this session's own uncommitted writes. The view borrows
    /// the session (not just the database), so the borrow checker keeps
    /// it from outliving the snapshot pin that commit/abort/drop
    /// release — a view can never read at an unpinned LSN that version
    /// GC may already have trimmed.
    pub fn view(&self) -> Result<View<'_>> {
        self.db.view_at(self.snap)
    }

    // ---- own-writes reads --------------------------------------------------
    //
    // Conveniences that read through the open transaction, so the
    // session observes objects it created or modified moments earlier.

    /// The material's history as this session sees it (see
    /// [`LabBase::history_in`]).
    pub fn history(&self, mat: MaterialId) -> Result<Vec<HistoryEntry>> {
        self.db.history_in(self.txn, mat)
    }

    /// Most-recent value of `attr` as this session sees it (see
    /// [`LabBase::recent_in`]).
    pub fn recent(&self, mat: MaterialId, attr: &str) -> Result<Option<Recent>> {
        self.db.recent_in(self.txn, mat, attr)
    }

    /// The material's workflow state as this session sees it (see
    /// [`LabBase::state_of_in`]).
    pub fn state_of(&self, mat: MaterialId) -> Result<Option<String>> {
        self.db.state_of_in(self.txn, mat)
    }

    /// Whether the material exists as this session sees it.
    pub fn material_exists(&self, mat: MaterialId) -> bool {
        self.db.view_in(self.txn).material_exists(mat)
    }

    /// The set's members as this session sees it (see
    /// [`LabBase::set_members_in`]).
    pub fn set_members(&self, name: &str) -> Result<Vec<MaterialId>> {
        self.db.set_members_in(self.txn, name)
    }

    /// Where this session's latency has gone so far: nanoseconds the
    /// calling thread spent blocked on object locks and in WAL group
    /// commit since the session began. Meaningful when the thread runs
    /// one session at a time (as the multi-client driver does).
    pub fn wait_profile(&self) -> WaitSnapshot {
        wait_snapshot().delta(&self.waits_at_begin)
    }

    /// Create a material (see [`LabBase::create_material`]).
    pub fn create_material(
        &mut self,
        class: &str,
        name: &str,
        created: ValidTime,
    ) -> Result<MaterialId> {
        let mat = self.db.create_material(self.txn, class, name, created)?;
        self.footprint.created.push((mat.oid(), name.to_string()));
        Ok(mat)
    }

    /// Record a workflow step (see [`LabBase::record_step`]). Steps touch
    /// only persistent objects, so they leave no cache footprint.
    pub fn record_step(
        &mut self,
        class: &str,
        valid_time: ValidTime,
        materials: &[MaterialId],
        attrs: Vec<(String, Value)>,
    ) -> Result<StepId> {
        self.db.record_step(self.txn, class, valid_time, materials, attrs)
    }

    /// Set a material's workflow state (see [`LabBase::set_state`]).
    pub fn set_state(&mut self, mat: MaterialId, state: &str, vt: ValidTime) -> Result<()> {
        let (old, new) = self.db.set_state_recording(self.txn, mat, state, vt)?;
        self.footprint.state_changes.push((mat.oid(), old, new));
        Ok(())
    }

    /// Clear a material's workflow state.
    pub fn clear_state(&mut self, mat: MaterialId, vt: ValidTime) -> Result<()> {
        self.set_state(mat, "", vt)
    }

    /// Define a material class (see [`LabBase::define_material_class`]).
    pub fn define_material_class(&mut self, name: &str, parent: Option<&str>) -> Result<ClassId> {
        let id = self.db.define_material_class(self.txn, name, parent)?;
        self.footprint.catalog_dirty = true;
        Ok(id)
    }

    /// Define a step class (see [`LabBase::define_step_class`]).
    pub fn define_step_class(&mut self, name: &str, attrs: Vec<AttrDef>) -> Result<ClassId> {
        let id = self.db.define_step_class(self.txn, name, attrs)?;
        self.footprint.catalog_dirty = true;
        Ok(id)
    }

    /// Redefine a step class (see [`LabBase::redefine_step_class`]).
    pub fn redefine_step_class(&mut self, name: &str, attrs: Vec<AttrDef>) -> Result<u32> {
        let version = self.db.redefine_step_class(self.txn, name, attrs)?;
        self.footprint.catalog_dirty = true;
        Ok(version)
    }

    /// Create a material set (see [`LabBase::create_set`]).
    pub fn create_set(&mut self, name: &str) -> Result<()> {
        self.db.create_set(self.txn, name)?;
        self.footprint.sets_dirty = true;
        Ok(())
    }

    /// Drop a material set (see [`LabBase::drop_set`]).
    pub fn drop_set(&mut self, name: &str) -> Result<()> {
        self.db.drop_set(self.txn, name)?;
        self.footprint.sets_dirty = true;
        Ok(())
    }

    /// Add a material to a set (rewrites only the persistent set object).
    pub fn add_to_set(&mut self, name: &str, mat: MaterialId) -> Result<()> {
        self.db.add_to_set(self.txn, name, mat)
    }

    /// Commit the transaction. The footprint is discarded — committed
    /// cache updates are correct as applied.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        self.resolve();
        let fp = std::mem::take(&mut self.footprint);
        self.db.commit(self.txn).inspect_err(|_| {
            // A failed commit (e.g. an exhausted WAL-force retry budget)
            // discards the pending versions like an abort, so the shared
            // caches must be rolled back the same way — otherwise the
            // next writer reads this transaction's dead mutations (a
            // stale extent head, a phantom state) out of the cache.
            let _ = self.db.undo_footprint_caches(&fp);
        })
    }

    /// Abort the transaction, undoing only this session's cache
    /// footprint instead of invalidating the shared indexes.
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        self.resolve();
        let fp = std::mem::take(&mut self.footprint);
        self.db.abort_with_footprint(self.txn, &fp)
    }

    /// Release the snapshot pin and tick the open-sessions gauge down.
    /// Called exactly once per session, on commit/abort/drop.
    fn resolve(&self) {
        self.db.store.release_snapshot(self.snap);
        self.db.sessions_open.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.resolve();
            let fp = std::mem::take(&mut self.footprint);
            let _ = self.db.abort_with_footprint(self.txn, &fp);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::db::tests::mem_db;
    use crate::value::Value;

    /// Regression: an aborting creator must repair the shared catalog
    /// cache *before* its storage locks release. Repairing after left a
    /// window where a racing creator (blocked on the catalog lock) read
    /// the aborted transaction's extent head out of the cache and
    /// chained its committed material onto an object the rollback
    /// erased — a dangling pointer in the committed extent chain, seen
    /// as `unknown material` errors from extent scans under the
    /// concurrent server workload.
    #[test]
    fn aborting_creator_never_leaks_extent_heads_to_racing_creators() {
        const ROUNDS: i64 = 200;
        let db = mem_db();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..ROUNDS {
                    let mut s = db.session().unwrap();
                    if s.create_material("clone", &format!("ghost-{i}"), i).is_ok() {
                        s.abort().unwrap();
                    }
                }
            });
            scope.spawn(|| {
                for i in 0..ROUNDS {
                    // Retry on contention outcomes (wound-wait may kill
                    // one side); every name must commit exactly once.
                    loop {
                        let mut s = db.session().unwrap();
                        if s.create_material("clone", &format!("kept-{i}"), i).is_ok() {
                            s.commit().unwrap();
                            break;
                        }
                    }
                }
            });
        });
        // The committed extent chain must be fully walkable and contain
        // exactly the committed materials.
        let ext = db.class_extent("clone", false).unwrap();
        assert_eq!(ext.len(), ROUNDS as usize, "extent chain intact");
        for i in 0..ROUNDS {
            assert!(
                db.find_material(&format!("kept-{i}")).unwrap().is_some(),
                "committed kept-{i} resolvable"
            );
            assert_eq!(db.find_material(&format!("ghost-{i}")).unwrap(), None);
        }
    }

    #[test]
    fn session_commit_behaves_like_plain_txn() {
        let db = mem_db();
        let mut s = db.session().unwrap();
        let m = s.create_material("clone", "c1", 0).unwrap();
        s.set_state(m, "queued", 1).unwrap();
        s.record_step(
            "determine_sequence",
            2,
            &[m],
            vec![("quality".into(), Value::Real(0.5))],
        )
        .unwrap();
        s.commit().unwrap();
        assert_eq!(db.state_of(m).unwrap().as_deref(), Some("queued"));
        assert_eq!(db.count_in_state("queued").unwrap(), 1);
        assert_eq!(db.find_material("c1").unwrap(), Some(m));
    }

    #[test]
    fn session_abort_undoes_created_material_in_caches() {
        let db = mem_db();
        // Warm the indexes first so the abort has something to undo.
        let mut s = db.session().unwrap();
        let keep = s.create_material("clone", "keep", 0).unwrap();
        s.set_state(keep, "ready", 1).unwrap();
        s.commit().unwrap();
        assert_eq!(db.count_in_state("ready").unwrap(), 1);
        db.find_material("keep").unwrap().unwrap();

        let mut s = db.session().unwrap();
        let gone = s.create_material("clone", "gone", 2).unwrap();
        s.set_state(gone, "ready", 3).unwrap();
        s.abort().unwrap();

        assert_eq!(db.count_in_state("ready").unwrap(), 1);
        assert_eq!(db.find_material("gone").unwrap(), None);
        assert_eq!(db.find_material("keep").unwrap(), Some(keep));
        assert!(!db.material_exists(gone));
    }

    #[test]
    fn session_abort_restores_prior_state_through_chained_transitions() {
        let db = mem_db();
        let mut s = db.session().unwrap();
        let m = s.create_material("clone", "m", 0).unwrap();
        s.set_state(m, "start", 1).unwrap();
        s.commit().unwrap();
        assert_eq!(db.count_in_state("start").unwrap(), 1);

        let mut s = db.session().unwrap();
        s.set_state(m, "middle", 2).unwrap();
        s.set_state(m, "end", 3).unwrap();
        s.clear_state(m, 4).unwrap();
        s.abort().unwrap();

        assert_eq!(db.state_of(m).unwrap().as_deref(), Some("start"));
        assert_eq!(db.count_in_state("start").unwrap(), 1);
        assert_eq!(db.count_in_state("middle").unwrap(), 0);
        assert_eq!(db.count_in_state("end").unwrap(), 0);
    }

    #[test]
    fn dropped_session_aborts() {
        let db = mem_db();
        {
            let mut s = db.session().unwrap();
            s.create_material("clone", "phantom", 0).unwrap();
            // Dropped without commit.
        }
        assert_eq!(db.find_material("phantom").unwrap(), None);
    }

    #[test]
    fn session_abort_reloads_dirty_catalog_and_sets() {
        let db = mem_db();
        let mut s = db.session().unwrap();
        s.define_material_class("gel", None).unwrap();
        s.create_set("queue").unwrap();
        s.abort().unwrap();
        db.with_catalog(|c| {
            assert!(c.material_class("gel").is_err(), "aborted class must vanish");
            assert!(c.material_class("clone").is_ok());
        });
        assert!(db.set_names().is_empty());
    }
}
