//! Compact binary encoding helpers shared by all LabBase record types.
//!
//! Hand-rolled little-endian framing rather than a general serializer:
//! the storage schema is fixed (that is the paper's point — see Table 1),
//! so the encoder can be minimal and allocation-light.

use crate::error::{LabError, Result};

/// Append-only writer over a byte vector.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::with_capacity(64) }
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian f64.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked reader over encoded bytes.
pub struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `data` from the beginning.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.data.len() {
            return Err(LabError::Decode(format!(
                "truncated record: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.data.len()
            )));
        }
        let s = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Take exactly `N` bytes as an array (for the fixed-width readers;
    /// `take` has already bounds-checked, so the conversion is by
    /// construction — but a typed error keeps the decode path panic-free
    /// even if that coupling ever breaks).
    fn arr<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| LabError::Decode("truncated fixed-width field".into()))
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.arr::<1>()?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.arr()?))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.arr()?))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.arr()?))
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.arr()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| LabError::Decode("invalid UTF-8 in string field".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(3.5);
        w.str("materials & steps");
        w.bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert_eq!(r.str().unwrap(), "materials & steps");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.str("hello");
        let buf = w.finish();
        let mut r = Reader::new(&buf[..buf.len() - 2]);
        assert!(matches!(r.str(), Err(LabError::Decode(_))));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE, 0x00]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.str(), Err(LabError::Decode(_))));
    }
}
