//! LabBase error type.

use std::fmt;

use labflow_storage::StorageError;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LabError>;

/// Errors produced by the LabBase layer.
#[derive(Debug)]
pub enum LabError {
    /// An error from the underlying storage manager.
    Storage(StorageError),
    /// A record failed to decode (schema corruption).
    Decode(String),
    /// Unknown material or step class name.
    UnknownClass(String),
    /// A class with this name already exists.
    DuplicateClass(String),
    /// The material id does not name a material.
    UnknownMaterial(crate::ids::MaterialId),
    /// The step id does not name a step instance.
    UnknownStep(crate::ids::StepId),
    /// No material set with this name exists.
    UnknownSet(String),
    /// A set with this name already exists.
    DuplicateSet(String),
    /// An attribute is not part of the step class's current version.
    UnknownAttr {
        /// Step class name.
        class: String,
        /// Offending attribute.
        attr: String,
    },
    /// An attribute value does not match its declared type.
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// Declared type.
        expected: &'static str,
        /// Supplied value rendering.
        got: String,
    },
    /// A step must involve at least one material.
    NoMaterials,
    /// The database root is missing or malformed.
    BadRoot(String),
    /// The database is serving as a replication follower: it applies
    /// shipped transactions and serves snapshot reads, but refuses
    /// local write transactions until promoted.
    ReadOnly,
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::Storage(e) => write!(f, "storage: {e}"),
            LabError::Decode(msg) => write!(f, "decode: {msg}"),
            LabError::UnknownClass(name) => write!(f, "unknown class '{name}'"),
            LabError::DuplicateClass(name) => write!(f, "class '{name}' already defined"),
            LabError::UnknownMaterial(m) => write!(f, "unknown material {m}"),
            LabError::UnknownStep(s) => write!(f, "unknown step {s}"),
            LabError::UnknownSet(name) => write!(f, "unknown material set '{name}'"),
            LabError::DuplicateSet(name) => write!(f, "material set '{name}' already exists"),
            LabError::UnknownAttr { class, attr } => {
                write!(f, "attribute '{attr}' is not in the current version of step class '{class}'")
            }
            LabError::TypeMismatch { attr, expected, got } => {
                write!(f, "attribute '{attr}' expects {expected}, got {got}")
            }
            LabError::NoMaterials => write!(f, "a step must involve at least one material"),
            LabError::BadRoot(msg) => write!(f, "bad database root: {msg}"),
            LabError::ReadOnly => {
                write!(f, "database is a replication follower (read-only until promoted)")
            }
        }
    }
}

impl std::error::Error for LabError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for LabError {
    fn from(e: StorageError) -> Self {
        LabError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MaterialId, StepId};
    use labflow_storage::Oid;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<LabError> = vec![
            LabError::Storage(StorageError::SingleUser),
            LabError::Decode("short".into()),
            LabError::UnknownClass("clone".into()),
            LabError::DuplicateClass("clone".into()),
            LabError::UnknownMaterial(MaterialId::from(Oid::from_raw(3))),
            LabError::UnknownStep(StepId::from(Oid::from_raw(4))),
            LabError::UnknownSet("queue".into()),
            LabError::DuplicateSet("queue".into()),
            LabError::UnknownAttr { class: "seq".into(), attr: "len".into() },
            LabError::TypeMismatch { attr: "len".into(), expected: "int", got: "\"x\"".into() },
            LabError::NoMaterials,
            LabError::BadRoot("missing".into()),
            LabError::ReadOnly,
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn storage_source_preserved() {
        let e = LabError::from(StorageError::SingleUser);
        assert!(std::error::Error::source(&e).is_some());
    }
}
