//! The LabBase database facade.
//!
//! LabBase is the paper's "workflow wrapper" (Architecture C): it
//! provides event histories, most-recent views, workflow states, and
//! dynamic schema evolution on top of an object storage manager that has
//! none of those things. The same LabBase code runs over every
//! [`StorageManager`] backend, which is what makes the benchmark a
//! storage-manager comparison.
//!
//! ## Segment map
//!
//! Per the paper's Section 5.1 (footnote 21), LabBase uses four
//! placement segments — "three of which contain relatively small amounts
//! of frequently accessed data and one of which contains a relatively
//! large amount of infrequently accessed data":
//!
//! | segment | contents | temperature |
//! |---|---|---|
//! | 0 | root, catalog, material sets | hot |
//! | 1 | `sm_material` + most-recent records | hot |
//! | 2 | history-list nodes | hot |
//! | 3 | `sm_step` payloads | **cold, large** |
//!
//! Backends without placement control (Texas) ignore the segment ids —
//! and pay for it, which is the experiment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use labflow_storage::{ClusterHint, Oid, SegmentId, Snapshot, StatsSnapshot, StorageManager, TxnId};

use crate::error::{LabError, Result};
use crate::ids::{ClassId, MaterialId, StepId, ValidTime};
use crate::schema::{AttrDef, Catalog};
use crate::session::Footprint;
use crate::smrecord::{RecentRecord, SmMaterial, SmStep};
use crate::state::StateIndex;
use crate::value::Value;

/// Segment for root, catalog, and material sets (hot, tiny).
pub const SEG_CATALOG: SegmentId = SegmentId(0);
/// Segment for `sm_material` and most-recent records (hot).
pub const SEG_MATERIAL: SegmentId = SegmentId(1);
/// Segment for history-list nodes (hot).
pub const SEG_HISTORY: SegmentId = SegmentId(2);
/// Segment for `sm_step` payloads (cold, large).
pub const SEG_STEP: SegmentId = SegmentId(3);

/// The database root lives at the first oid the store assigns.
const ROOT_OID: Oid = Oid::from_raw(1);
const ROOT_MAGIC: u32 = 0x4C_42_31_00; // "LB1\0"

/// Decoded material information for callers.
#[derive(Clone, Debug, PartialEq)]
pub struct MaterialInfo {
    /// The material id.
    pub id: MaterialId,
    /// Class name.
    pub class: String,
    /// Class id.
    pub class_id: ClassId,
    /// External name.
    pub name: String,
    /// Valid time of creation.
    pub created: ValidTime,
    /// Current workflow state (`None` if unset).
    pub state: Option<String>,
    /// Valid time of the last state change.
    pub state_time: ValidTime,
}

/// Decoded step information for callers.
#[derive(Clone, Debug, PartialEq)]
pub struct StepInfo {
    /// The step id.
    pub id: StepId,
    /// Class name.
    pub class: String,
    /// Class version in force when the step was recorded.
    pub version: u32,
    /// Valid time of the event.
    pub valid_time: ValidTime,
    /// Involved materials.
    pub materials: Vec<MaterialId>,
    /// Result attributes.
    pub attrs: Vec<(String, Value)>,
}

pub(crate) struct SetsDir {
    pub by_name: HashMap<String, Oid>,
}

impl SetsDir {
    fn encode(&self) -> Vec<u8> {
        let mut w = crate::enc::Writer::new();
        let mut entries: Vec<(&String, &Oid)> = self.by_name.iter().collect();
        entries.sort();
        w.u32(entries.len() as u32);
        for (name, oid) in entries {
            w.str(name);
            w.u64(oid.raw());
        }
        w.finish()
    }

    pub(crate) fn decode(data: &[u8]) -> Result<SetsDir> {
        let mut r = crate::enc::Reader::new(data);
        let n = r.u32()? as usize;
        let mut by_name = HashMap::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            by_name.insert(name, Oid::from_raw(r.u64()?));
        }
        Ok(SetsDir { by_name })
    }
}

/// The lazy material-name index.
///
/// `map` is built on first use by [`LabBase::find_material`] from a scan
/// of the committed class extents, then kept fresh incrementally by
/// creations and footprint aborts. The scan cannot see materials whose
/// creating transaction is still open — and a concurrently *committing*
/// creation can land after the scan sampled the catalog but before the
/// map is installed, which would hide that name from lookups forever.
/// So creations that run while `map` is unbuilt park their name in
/// `pending` (tagged with the creating transaction, so an abort that
/// has no footprint can still withdraw exactly its own entries), and
/// the builder merges `pending` into its scanned map under the same
/// write lock before installing. Invariant: whenever `map` is `Some`,
/// `pending` is empty.
#[derive(Default)]
pub(crate) struct NameIndex {
    pub(crate) map: Option<HashMap<String, Oid>>,
    pub(crate) pending: Vec<(String, Oid, TxnId)>,
}

impl NameIndex {
    /// Note a (possibly still uncommitted) material creation by `txn`.
    /// Mirrors the paper-facing behavior: once noted, the name resolves
    /// even before commit; an abort withdraws it via [`note_aborted`].
    ///
    /// [`note_aborted`]: NameIndex::note_aborted
    pub(crate) fn note_created(&mut self, name: &str, oid: Oid, txn: TxnId) {
        match self.map.as_mut() {
            Some(map) => {
                map.insert(name.to_string(), oid);
            }
            None => self.pending.push((name.to_string(), oid, txn)),
        }
    }

    /// Withdraw a name after its creating transaction aborted.
    pub(crate) fn note_aborted(&mut self, name: &str) {
        if let Some(map) = self.map.as_mut() {
            map.remove(name);
        }
        self.pending.retain(|(n, _, _)| n != name);
    }
}

/// How a record read resolves object visibility. Every internal read in
/// LabBase is threaded through this so the same traversal code serves
/// three access paths: the live committed state, a transaction's own
/// uncommitted writes, and a pinned snapshot.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Rd {
    /// Latest committed state (what the storage manager's plain `read`
    /// returns after the MVCC refactor).
    Latest,
    /// Through an open transaction: committed state plus the
    /// transaction's own pending writes. Every mutation-path traversal
    /// (history splicing, recent-cache maintenance, set rewrites) uses
    /// this, because they must observe objects the same transaction
    /// created moments earlier.
    In(TxnId),
    /// At a pinned snapshot LSN: a stable cut that never moves while
    /// writers commit. Used by [`View`](crate::View).
    At(Snapshot),
}

/// The LabBase database.
pub struct LabBase {
    pub(crate) store: Arc<dyn StorageManager>,
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) catalog_oid: Oid,
    pub(crate) sets_oid: Oid,
    pub(crate) sets: RwLock<SetsDir>,
    pub(crate) state_index: StateIndex,
    pub(crate) name_index: RwLock<NameIndex>,
    /// Sessions begun and not yet resolved (committed/aborted/dropped).
    /// The network front end asserts this gauge drains to zero on
    /// graceful shutdown.
    pub(crate) sessions_open: AtomicU64,
    /// When set, this database is a replication follower: shipped
    /// transactions are applied through the storage layer directly, and
    /// local write transactions ([`begin`]/[`session`]) are refused with
    /// [`LabError::ReadOnly`] until promotion clears the flag. Reads
    /// ([`view`]) stay available throughout.
    ///
    /// [`begin`]: LabBase::begin
    /// [`session`]: LabBase::session
    /// [`view`]: LabBase::view
    pub(crate) read_only: AtomicBool,
}

impl LabBase {
    /// Initialize a LabBase database in a **fresh** store.
    pub fn create(store: Arc<dyn StorageManager>) -> Result<LabBase> {
        let txn = store.begin()?;
        // Root must be the store's first allocation.
        let root = store.allocate(txn, SEG_CATALOG, ClusterHint::NONE, &[])?;
        if root != ROOT_OID {
            return Err(LabError::BadRoot(format!(
                "expected root at {ROOT_OID}, store assigned {root}; is the store empty?"
            )));
        }
        let catalog = Catalog::new();
        let catalog_oid = store.allocate(txn, SEG_CATALOG, ClusterHint::NONE, &catalog.encode())?;
        let sets = SetsDir { by_name: HashMap::new() };
        let sets_oid = store.allocate(txn, SEG_CATALOG, ClusterHint::NONE, &sets.encode())?;
        let mut w = crate::enc::Writer::new();
        w.u32(ROOT_MAGIC);
        w.u64(catalog_oid.raw());
        w.u64(sets_oid.raw());
        store.update(txn, root, &w.finish())?;
        store.commit(txn)?;
        Ok(LabBase {
            store,
            catalog: RwLock::new(catalog),
            catalog_oid,
            sets_oid,
            sets: RwLock::new(sets),
            state_index: StateIndex::new(),
            name_index: RwLock::new(NameIndex::default()),
            sessions_open: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
        })
    }

    /// Open a LabBase database in an existing store.
    pub fn open(store: Arc<dyn StorageManager>) -> Result<LabBase> {
        let root = store.read(ROOT_OID).map_err(|e| match e {
            labflow_storage::StorageError::UnknownObject(_) => {
                LabError::BadRoot("no root object; not a LabBase store".into())
            }
            e => LabError::Storage(e),
        })?;
        let mut r = crate::enc::Reader::new(&root);
        if r.u32()? != ROOT_MAGIC {
            return Err(LabError::BadRoot("bad magic".into()));
        }
        let catalog_oid = Oid::from_raw(r.u64()?);
        let sets_oid = Oid::from_raw(r.u64()?);
        let catalog = Catalog::decode(&store.read(catalog_oid)?)?;
        let sets = SetsDir::decode(&store.read(sets_oid)?)?;
        Ok(LabBase {
            store,
            catalog: RwLock::new(catalog),
            catalog_oid,
            sets_oid,
            sets: RwLock::new(sets),
            state_index: StateIndex::new(),
            name_index: RwLock::new(NameIndex::default()),
            sessions_open: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
        })
    }

    /// The underlying storage manager.
    pub fn store(&self) -> &Arc<dyn StorageManager> {
        &self.store
    }

    /// Number of [`Session`](crate::Session)s currently open (begun and
    /// not yet committed, aborted, or dropped).
    pub fn open_sessions(&self) -> u64 {
        self.sessions_open.load(Ordering::Acquire)
    }

    /// Mark (or unmark) this database as a read-only replication
    /// follower. While set, [`begin`](LabBase::begin) and
    /// [`session`](LabBase::session) fail with [`LabError::ReadOnly`];
    /// views keep working. Promotion flips the flag back off.
    pub fn set_read_only(&self, on: bool) {
        self.read_only.store(on, Ordering::Release);
    }

    /// Whether this database is currently refusing local writes.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Refuse local write transactions while in follower mode.
    pub(crate) fn check_writable(&self) -> Result<()> {
        if self.is_read_only() {
            return Err(LabError::ReadOnly);
        }
        Ok(())
    }

    /// Drop every derived in-memory cache and reload the schema-level
    /// ones from committed storage truth. A replication follower calls
    /// this after applying shipped transactions: the apply path writes
    /// through the storage engine directly, so the catalog / sets /
    /// state / name caches this wrapper keeps would otherwise go stale.
    /// Mirrors the cache-repair half of [`abort`](LabBase::abort).
    pub fn refresh_replica_caches(&self) -> Result<()> {
        let catalog = Catalog::decode(&self.rd_bytes(Rd::Latest, self.catalog_oid)?)?;
        *self.catalog.write() = catalog;
        let sets = SetsDir::decode(&self.rd_bytes(Rd::Latest, self.sets_oid)?)?;
        *self.sets.write() = sets;
        self.state_index.invalidate();
        let mut names = self.name_index.write();
        names.map = None;
        // A follower has no local writers, so no parked names to keep.
        names.pending.clear();
        Ok(())
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Result<TxnId> {
        self.check_writable()?;
        Ok(self.store.begin()?)
    }

    /// Commit a transaction.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        Ok(self.store.commit(txn)?)
    }

    /// Abort a transaction. NOTE: in-memory indexes (state, names,
    /// catalog cache) are rebuilt conservatively after an abort since the
    /// store rolled back underneath them. [`Session`](crate::Session)
    /// tracks its own footprint and aborts selectively instead.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        // Re-load shared caches from committed storage truth *before*
        // the abort releases this transaction's locks. `Rd::Latest`
        // skips the transaction's own pending writes, so it reads
        // exactly the state rollback restores — repairing afterwards
        // leaves a window where a writer blocked on our storage locks
        // acquires them and reads our uncommitted mutations out of the
        // shared cache (e.g. an extent head pointing at a material the
        // rollback is about to erase, breaking the committed chain).
        let catalog = Catalog::decode(&self.rd_bytes(Rd::Latest, self.catalog_oid)?)?;
        *self.catalog.write() = catalog;
        let sets = SetsDir::decode(&self.rd_bytes(Rd::Latest, self.sets_oid)?)?;
        *self.sets.write() = sets;
        self.state_index.invalidate();
        {
            // Drop the derived map, but keep names other in-flight
            // transactions parked while it was unbuilt: the rebuild's
            // committed-extent scan cannot see their still-uncommitted
            // materials, so discarding `pending` here would reintroduce
            // the lost-name race the park/merge protocol exists to
            // close. Only this transaction's own entries are withdrawn
            // — its creations roll back with the abort.
            let mut names = self.name_index.write();
            names.map = None;
            names.pending.retain(|(_, _, t)| *t != txn);
        }
        self.store.abort(txn)?;
        Ok(())
    }

    /// Abort a transaction, undoing only the in-memory cache entries the
    /// aborting session touched (its [`Footprint`]). Unlike [`abort`],
    /// this never discards the whole state or name index, so other
    /// sessions keep their warm caches.
    ///
    /// [`abort`]: LabBase::abort
    pub(crate) fn abort_with_footprint(&self, txn: TxnId, fp: &Footprint) -> Result<()> {
        // Every cache repair happens *before* `store.abort` — the abort
        // releases this transaction's storage locks, and a writer that
        // was blocked on them (lock-first discipline) must never see
        // this transaction's uncommitted mutations in the shared
        // caches. A stale extent head in the catalog cache, for
        // example, would chain the next committed material onto an
        // object the rollback erases, leaving a dangling pointer in
        // the committed extent chain.
        //
        self.undo_footprint_caches(fp)?;
        self.store.abort(txn)?;
        Ok(())
    }

    /// Roll the shared in-memory caches back to committed state for
    /// everything `fp` touched. Used on abort (before the storage locks
    /// release) and after a failed commit (the engine has already
    /// discarded the pending versions like an abort by then).
    pub(crate) fn undo_footprint_caches(&self, fp: &Footprint) -> Result<()> {
        // Reverse state transitions newest-first so a material that moved
        // several times lands back in its pre-transaction state.
        for (oid, old, new) in fp.state_changes.iter().rev() {
            self.state_index.note_state(*oid, new.as_deref(), old.as_deref());
        }
        // Materials created in the transaction vanish from the caches.
        if !fp.created.is_empty() {
            self.state_index.forget(fp.created.iter().map(|(oid, _)| *oid));
            let mut names = self.name_index.write();
            for (_, name) in &fp.created {
                names.note_aborted(name);
            }
        }
        // The catalog object is rewritten by schema changes *and* by
        // material creation (extent heads, counts); reload it from the
        // committed state (`Rd::Latest` skips this transaction's own
        // pending writes, so it reads exactly what rollback restores)
        // only when this session dirtied it.
        if fp.catalog_dirty || !fp.created.is_empty() {
            *self.catalog.write() = Catalog::decode(&self.rd_bytes(Rd::Latest, self.catalog_oid)?)?;
        }
        if fp.sets_dirty {
            *self.sets.write() = SetsDir::decode(&self.rd_bytes(Rd::Latest, self.sets_oid)?)?;
        }
        Ok(())
    }

    /// Checkpoint the underlying store.
    pub fn checkpoint(&self) -> Result<()> {
        Ok(self.store.checkpoint()?)
    }

    /// Storage statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.store.stats()
    }

    // ---- schema -----------------------------------------------------------

    /// Define a material class.
    pub fn define_material_class(
        &self,
        txn: TxnId,
        name: &str,
        parent: Option<&str>,
    ) -> Result<ClassId> {
        self.lock_catalog(txn)?;
        let mut catalog = self.catalog.write();
        let before = catalog.encode();
        let id = catalog.define_material_class(name, parent)?;
        if let Err(e) = self.store.update(txn, self.catalog_oid, &catalog.encode()) {
            // Failed store write (e.g. wounded): the schema change rolls
            // back with the transaction, so take it out of the shared
            // cache before the catalog lock can pass to another writer.
            *catalog = Catalog::decode(&before)?;
            return Err(e.into());
        }
        Ok(id)
    }

    /// Define a step class (version 1).
    pub fn define_step_class(
        &self,
        txn: TxnId,
        name: &str,
        attrs: Vec<AttrDef>,
    ) -> Result<ClassId> {
        self.lock_catalog(txn)?;
        let mut catalog = self.catalog.write();
        let before = catalog.encode();
        let id = catalog.define_step_class(name, attrs)?;
        if let Err(e) = self.store.update(txn, self.catalog_oid, &catalog.encode()) {
            // Failed store write (e.g. wounded): the schema change rolls
            // back with the transaction, so take it out of the shared
            // cache before the catalog lock can pass to another writer.
            *catalog = Catalog::decode(&before)?;
            return Err(e.into());
        }
        Ok(id)
    }

    /// Redefine a step class, returning the new version number. This is
    /// the paper's schema-evolution operation: constant-time, touching
    /// only the catalog object; no instance data is migrated.
    pub fn redefine_step_class(
        &self,
        txn: TxnId,
        name: &str,
        attrs: Vec<AttrDef>,
    ) -> Result<u32> {
        self.lock_catalog(txn)?;
        let mut catalog = self.catalog.write();
        let before = catalog.encode();
        let version = catalog.redefine_step_class(name, attrs)?;
        if let Err(e) = self.store.update(txn, self.catalog_oid, &catalog.encode()) {
            // Failed store write (e.g. wounded): the schema change rolls
            // back with the transaction, so take it out of the shared
            // cache before the catalog lock can pass to another writer.
            *catalog = Catalog::decode(&before)?;
            return Err(e.into());
        }
        Ok(version)
    }

    /// Run `f` with read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.read())
    }

    // ---- record I/O helpers ------------------------------------------------

    /// Raw bytes of `oid` under the visibility rule `rd`.
    pub(crate) fn rd_bytes(&self, rd: Rd, oid: Oid) -> labflow_storage::Result<Vec<u8>> {
        match rd {
            Rd::Latest => self.store.read(oid),
            Rd::In(txn) => self.store.read_for(txn, oid),
            Rd::At(snap) => self.store.read_at(&snap, oid),
        }
    }

    /// Whether `oid` exists under the visibility rule `rd`.
    pub(crate) fn rd_exists(&self, rd: Rd, oid: Oid) -> bool {
        match rd {
            Rd::Latest => self.store.exists(oid),
            Rd::In(txn) => self.store.exists_for(txn, oid),
            Rd::At(snap) => self.store.exists_at(&snap, oid),
        }
    }

    pub(crate) fn read_material_rec_rd(&self, rd: Rd, oid: Oid) -> Result<SmMaterial> {
        let bytes = self.rd_bytes(rd, oid).map_err(|e| match e {
            labflow_storage::StorageError::UnknownObject(o) => {
                LabError::UnknownMaterial(MaterialId::from(o))
            }
            e => LabError::Storage(e),
        })?;
        SmMaterial::decode(&bytes)
    }

    pub(crate) fn read_material_rec(&self, oid: Oid) -> Result<SmMaterial> {
        self.read_material_rec_rd(Rd::Latest, oid)
    }

    pub(crate) fn write_material_rec(&self, txn: TxnId, oid: Oid, rec: &SmMaterial) -> Result<()> {
        Ok(self.store.update(txn, oid, &rec.encode())?)
    }

    pub(crate) fn read_step_rec_rd(&self, rd: Rd, oid: Oid) -> Result<SmStep> {
        let bytes = self.rd_bytes(rd, oid).map_err(|e| match e {
            labflow_storage::StorageError::UnknownObject(o) => {
                LabError::UnknownStep(StepId::from(o))
            }
            e => LabError::Storage(e),
        })?;
        SmStep::decode(&bytes)
    }

    pub(crate) fn read_step_rec(&self, oid: Oid) -> Result<SmStep> {
        self.read_step_rec_rd(Rd::Latest, oid)
    }

    pub(crate) fn read_recent_rec_rd(&self, rd: Rd, oid: Oid) -> Result<RecentRecord> {
        if oid.is_nil() {
            return Ok(RecentRecord::default());
        }
        RecentRecord::decode(&self.rd_bytes(rd, oid)?)
    }

    #[cfg(test)]
    pub(crate) fn read_recent_rec(&self, oid: Oid) -> Result<RecentRecord> {
        self.read_recent_rec_rd(Rd::Latest, oid)
    }

    pub(crate) fn persist_sets_dir(&self, txn: TxnId) -> Result<()> {
        let dir = self.sets.read();
        self.store.update(txn, self.sets_oid, &dir.encode())?;
        Ok(())
    }

    /// Take `txn`'s exclusive storage lock on the catalog object.
    ///
    /// Every catalog writer calls this *before* touching the in-memory
    /// catalog latch. The catalog is the hottest write point in the
    /// system (every material creation bumps its class extent), and a
    /// transaction that blocked on the storage lock while holding the
    /// latch would stall every concurrent catalog *read* for the whole
    /// lock timeout — a cross-lock convoy in which each contention
    /// event costs a failed transaction. Lock-first, latch-second makes
    /// the wait happen with no latch held, so catalog writers serialize
    /// cleanly and readers never stall behind a waiter.
    pub(crate) fn lock_catalog(&self, txn: TxnId) -> Result<()> {
        Ok(self.store.lock_exclusive(txn, self.catalog_oid)?)
    }

    /// Take `txn`'s exclusive storage lock on the sets directory —
    /// same lock-first discipline as [`lock_catalog`](Self::lock_catalog).
    pub(crate) fn lock_sets(&self, txn: TxnId) -> Result<()> {
        Ok(self.store.lock_exclusive(txn, self.sets_oid)?)
    }

    // ---- materials ---------------------------------------------------------

    /// Create a material of class `class` named `name` at valid time
    /// `created`.
    pub fn create_material(
        &self,
        txn: TxnId,
        class: &str,
        name: &str,
        created: ValidTime,
    ) -> Result<MaterialId> {
        self.lock_catalog(txn)?;
        let mut catalog = self.catalog.write();
        let (class_id, ext_next, old_count) = {
            let mc = catalog.material_class(class)?;
            (mc.id, mc.extent_head, mc.count)
        };
        let rec = SmMaterial {
            class: class_id,
            name: name.to_string(),
            created,
            state: String::new(),
            state_time: created,
            history_head: Oid::NIL,
            recent: Oid::NIL,
            ext_next,
        };
        let oid = self.store.allocate(txn, SEG_MATERIAL, ClusterHint::NONE, &rec.encode())?;
        {
            let mc = catalog.material_class_mut(class_id)?;
            mc.extent_head = oid;
            mc.count += 1;
        }
        if let Err(e) = self.store.update(txn, self.catalog_oid, &catalog.encode()) {
            // A failed store write (e.g. this transaction was wounded
            // while holding the catalog lock) must not leave the new
            // head in the shared cache: the allocation rolls back with
            // the transaction, and the next creator would chain its
            // committed material onto the erased object. The restore is
            // infallible from the pre-mutation snapshot — a `?` here
            // would swallow the store error and leave the cache dirty.
            if let Some(mc) = catalog.material_class_mut_opt(class_id) {
                mc.extent_head = ext_next;
                mc.count = old_count;
            }
            return Err(e.into());
        }
        drop(catalog);
        self.name_index.write().note_created(name, oid, txn);
        self.state_index.note_created(oid);
        Ok(MaterialId::from(oid))
    }

    /// Decoded material info.
    pub fn material(&self, mat: MaterialId) -> Result<MaterialInfo> {
        let rec = self.read_material_rec(mat.oid())?;
        let catalog = self.catalog.read();
        let class = catalog.material_class_by_id(rec.class)?;
        Ok(MaterialInfo {
            id: mat,
            class: class.name.clone(),
            class_id: rec.class,
            name: rec.name,
            created: rec.created,
            state: if rec.state.is_empty() { None } else { Some(rec.state) },
            state_time: rec.state_time,
        })
    }

    /// Whether a material exists.
    pub fn material_exists(&self, mat: MaterialId) -> bool {
        self.store.exists(mat.oid())
    }

    // ---- steps (workflow tracking: the paper's Section 8.3) ----------------

    /// Record a workflow step: the core benchmark operation. Creates an
    /// `sm_step` event, links it into every involved material's history,
    /// and refreshes their most-recent caches — all inside `txn`.
    pub fn record_step(
        &self,
        txn: TxnId,
        class: &str,
        valid_time: ValidTime,
        materials: &[MaterialId],
        attrs: Vec<(String, Value)>,
    ) -> Result<StepId> {
        if materials.is_empty() {
            return Err(LabError::NoMaterials);
        }
        let (class_id, version) = {
            let catalog = self.catalog.read();
            let sc = catalog.step_class(class)?;
            let ver = sc.current();
            ver.validate(class, &attrs)?;
            (sc.id, ver.version)
        };
        // Verify the materials exist before touching anything. Materials
        // created earlier in this same transaction are still pending, so
        // the check must go through the transaction's own view.
        for m in materials {
            if !self.rd_exists(Rd::In(txn), m.oid()) {
                return Err(LabError::UnknownMaterial(*m));
            }
        }
        let rec = SmStep {
            class: class_id,
            version,
            valid_time,
            materials: materials.iter().map(|m| m.oid()).collect(),
            attrs,
        };
        // Step payloads go to the big cold segment, clustered near the
        // first involved material for the backends that can.
        let step_oid = self.store.allocate(
            txn,
            SEG_STEP,
            ClusterHint::near(materials[0].oid()),
            &rec.encode(),
        )?;
        for m in materials {
            self.link_event(txn, m.oid(), step_oid, valid_time)?;
            self.absorb_recent(txn, m.oid(), step_oid, valid_time, &rec.attrs)?;
        }
        Ok(StepId::from(step_oid))
    }

    /// Decoded step info.
    pub fn step(&self, step: StepId) -> Result<StepInfo> {
        let rec = self.read_step_rec(step.oid())?;
        let catalog = self.catalog.read();
        let class = catalog.step_class_by_id(rec.class)?;
        Ok(StepInfo {
            id: step,
            class: class.name.clone(),
            version: rec.version,
            valid_time: rec.valid_time,
            materials: rec.materials.into_iter().map(MaterialId::from).collect(),
            attrs: rec.attrs,
        })
    }

    /// The attribute set a step instance was created under (its class
    /// *version's* schema) — old instances keep old schemas forever.
    pub fn step_schema(&self, step: StepId) -> Result<Vec<AttrDef>> {
        let rec = self.read_step_rec(step.oid())?;
        let catalog = self.catalog.read();
        let class = catalog.step_class_by_id(rec.class)?;
        let ver = class.version(rec.version).ok_or_else(|| {
            LabError::Decode(format!("step {step} references missing version {}", rec.version))
        })?;
        Ok(ver.attrs.clone())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::schema::attrs;
    use crate::value::AttrType;
    use labflow_storage::MemStore;

    pub(crate) fn mem_db() -> LabBase {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        let db = LabBase::create(store).unwrap();
        let t = db.begin().unwrap();
        db.define_material_class(t, "material", None).unwrap();
        db.define_material_class(t, "clone", Some("material")).unwrap();
        db.define_step_class(
            t,
            "determine_sequence",
            attrs(&[("sequence", AttrType::Dna), ("quality", AttrType::Real)]),
        )
        .unwrap();
        db.commit(t).unwrap();
        db
    }

    #[test]
    fn create_open_round_trip() {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        let db = LabBase::create(store.clone()).unwrap();
        let t = db.begin().unwrap();
        db.define_material_class(t, "clone", None).unwrap();
        db.commit(t).unwrap();
        drop(db);
        let db = LabBase::open(store).unwrap();
        db.with_catalog(|c| {
            assert!(c.material_class("clone").is_ok());
        });
    }

    #[test]
    fn open_non_labbase_store_fails() {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        assert!(matches!(LabBase::open(store), Err(LabError::BadRoot(_))));
    }

    #[test]
    fn create_material_and_read_back() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "clone-1", 10).unwrap();
        db.commit(t).unwrap();
        let info = db.material(m).unwrap();
        assert_eq!(info.class, "clone");
        assert_eq!(info.name, "clone-1");
        assert_eq!(info.created, 10);
        assert_eq!(info.state, None);
        assert!(db.material_exists(m));
    }

    #[test]
    fn create_material_unknown_class_fails() {
        let db = mem_db();
        let t = db.begin().unwrap();
        assert!(matches!(
            db.create_material(t, "gel", "g1", 0),
            Err(LabError::UnknownClass(_))
        ));
        db.commit(t).unwrap();
    }

    #[test]
    fn record_step_validates() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "c1", 0).unwrap();
        // Unknown attr rejected.
        assert!(matches!(
            db.record_step(t, "determine_sequence", 5, &[m], vec![("lane".into(), 1i64.into())]),
            Err(LabError::UnknownAttr { .. })
        ));
        // Type mismatch rejected.
        assert!(matches!(
            db.record_step(
                t,
                "determine_sequence",
                5,
                &[m],
                vec![("quality".into(), Value::Bool(true))]
            ),
            Err(LabError::TypeMismatch { .. })
        ));
        // Empty material list rejected.
        assert!(matches!(
            db.record_step(t, "determine_sequence", 5, &[], vec![]),
            Err(LabError::NoMaterials)
        ));
        // Ghost material rejected.
        let ghost = MaterialId::from(Oid::from_raw(9999));
        assert!(matches!(
            db.record_step(t, "determine_sequence", 5, &[ghost], vec![]),
            Err(LabError::UnknownMaterial(_))
        ));
        // And a good one works.
        let s = db
            .record_step(
                t,
                "determine_sequence",
                5,
                &[m],
                vec![
                    ("sequence".into(), Value::dna("ACGT").unwrap()),
                    ("quality".into(), Value::Real(0.9)),
                ],
            )
            .unwrap();
        db.commit(t).unwrap();
        let info = db.step(s).unwrap();
        assert_eq!(info.class, "determine_sequence");
        assert_eq!(info.version, 1);
        assert_eq!(info.materials, vec![m]);
    }

    #[test]
    fn step_schema_pins_old_version() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "c1", 0).unwrap();
        let s1 = db
            .record_step(
                t,
                "determine_sequence",
                1,
                &[m],
                vec![("quality".into(), Value::Real(0.5))],
            )
            .unwrap();
        let v2 = db
            .redefine_step_class(
                t,
                "determine_sequence",
                attrs(&[("sequence", AttrType::Dna), ("machine", AttrType::Str)]),
            )
            .unwrap();
        assert_eq!(v2, 2);
        let s2 = db
            .record_step(
                t,
                "determine_sequence",
                2,
                &[m],
                vec![("machine".into(), "ABI-377".into())],
            )
            .unwrap();
        // Old attribute now rejected at the *current* version...
        assert!(matches!(
            db.record_step(
                t,
                "determine_sequence",
                3,
                &[m],
                vec![("quality".into(), Value::Real(0.1))]
            ),
            Err(LabError::UnknownAttr { .. })
        ));
        db.commit(t).unwrap();
        // ...but the old instance still decodes under its own schema.
        let schema1: Vec<String> =
            db.step_schema(s1).unwrap().into_iter().map(|a| a.name).collect();
        assert!(schema1.contains(&"quality".to_string()));
        let schema2: Vec<String> =
            db.step_schema(s2).unwrap().into_iter().map(|a| a.name).collect();
        assert!(schema2.contains(&"machine".to_string()));
        assert!(!schema2.contains(&"quality".to_string()));
        assert_eq!(db.step(s1).unwrap().version, 1);
        assert_eq!(db.step(s2).unwrap().version, 2);
    }

    #[test]
    fn abort_reloads_caches() {
        let db = mem_db();
        let t = db.begin().unwrap();
        db.define_material_class(t, "gel", None).unwrap();
        db.abort(t).unwrap();
        db.with_catalog(|c| {
            assert!(c.material_class("gel").is_err(), "aborted class must vanish");
            assert!(c.material_class("clone").is_ok());
        });
    }
}
