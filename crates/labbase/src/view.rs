//! Read-only views over a fixed visibility rule — the analytical read
//! path of the MVCC refactor.
//!
//! A [`View`] bundles a visibility rule ([`Rd`]) with the catalog and
//! sets directory *as seen under that rule*, so every traversal it runs
//! (extent scans, history walks, most-recent lookups) observes one
//! consistent cut of the database. The interesting case is the
//! snapshot-pinned view: the catalog object is itself versioned, so
//! decoding it through `read_at` yields extent heads that only reference
//! materials committed at or before the snapshot LSN — a full-history
//! analytical scan can run while writers commit, without ever seeing a
//! half-applied transaction and without taking a single object lock.

use labflow_storage::{Oid, Snapshot, TxnId};

use crate::db::{LabBase, MaterialInfo, Rd, SetsDir, StepInfo};
use crate::error::{LabError, Result};
use crate::history::HistoryEntry;
use crate::ids::{MaterialId, StepId, ValidTime};
use crate::recent::Recent;
use crate::schema::{AttrDef, Catalog};
use crate::value::Value;

/// A read-only view of the database under one visibility rule.
///
/// Obtained from [`LabBase::view`] (pinned snapshot, released on drop),
/// [`LabBase::view_in`] (an open transaction's read-your-own-writes
/// view), or [`Session::view`](crate::Session::view) (the session's
/// pinned snapshot). All methods are lock-free on the object store.
pub struct View<'a> {
    db: &'a LabBase,
    rd: Rd,
    /// Snapshot-pinned views carry the catalog decoded *at* the
    /// snapshot; `None` means "use the live in-memory catalog".
    catalog: Option<Catalog>,
    /// Likewise for the sets directory.
    sets: Option<SetsDir>,
    /// A snapshot this view opened itself and must release on drop.
    owned: Option<Snapshot>,
}

impl LabBase {
    /// Open a snapshot-pinned read view. Everything the view reads comes
    /// from the single commit LSN the snapshot was opened at; concurrent
    /// writers neither block it nor appear in it. The snapshot is
    /// released (unpinning version GC) when the view is dropped.
    pub fn view(&self) -> Result<View<'_>> {
        let snap = self.store.begin_snapshot()?;
        match self.view_at(snap) {
            Ok(mut v) => {
                v.owned = Some(snap);
                Ok(v)
            }
            Err(e) => {
                self.store.release_snapshot(snap);
                Err(e)
            }
        }
    }

    /// A read view at an externally managed snapshot (e.g. a
    /// [`Session`](crate::Session)'s). The caller keeps ownership: the
    /// snapshot is *not* released when the view drops.
    pub fn view_at(&self, snap: Snapshot) -> Result<View<'_>> {
        let rd = Rd::At(snap);
        let catalog = Catalog::decode(&self.rd_bytes(rd, self.catalog_oid)?)?;
        let sets = SetsDir::decode(&self.rd_bytes(rd, self.sets_oid)?)?;
        Ok(View { db: self, rd, catalog: Some(catalog), sets: Some(sets), owned: None })
    }

    /// A read view through an open transaction: committed state plus the
    /// transaction's own pending writes, with the live catalog (which
    /// already reflects the transaction's schema changes).
    pub fn view_in(&self, txn: TxnId) -> View<'_> {
        View { db: self, rd: Rd::In(txn), catalog: None, sets: None, owned: None }
    }
}

impl<'a> View<'a> {
    /// The commit LSN this view reads at, if it is snapshot-pinned.
    pub fn lsn(&self) -> Option<u64> {
        match self.rd {
            Rd::At(snap) => Some(snap.lsn),
            _ => None,
        }
    }

    /// The snapshot this view reads at, if it is snapshot-pinned.
    pub fn snapshot(&self) -> Option<Snapshot> {
        match self.rd {
            Rd::At(snap) => Some(snap),
            _ => None,
        }
    }

    /// Run `f` with read access to this view's catalog: the catalog *as
    /// of the snapshot* for pinned views, the live catalog otherwise.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        match &self.catalog {
            Some(c) => f(c),
            None => self.db.with_catalog(f),
        }
    }

    fn with_cat<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        self.with_catalog(f)
    }

    fn set_oid(&self, name: &str) -> Result<Oid> {
        let oid = match &self.sets {
            Some(dir) => dir.by_name.get(name).copied(),
            None => self.db.sets.read().by_name.get(name).copied(),
        };
        oid.ok_or_else(|| LabError::UnknownSet(name.to_string()))
    }

    // ---- materials ---------------------------------------------------------

    /// Decoded material info (see [`LabBase::material`]).
    pub fn material(&self, mat: MaterialId) -> Result<MaterialInfo> {
        let rec = self.db.read_material_rec_rd(self.rd, mat.oid())?;
        self.with_cat(|c| {
            let class = c.material_class_by_id(rec.class)?;
            Ok(MaterialInfo {
                id: mat,
                class: class.name.clone(),
                class_id: rec.class,
                name: rec.name.clone(),
                created: rec.created,
                state: if rec.state.is_empty() { None } else { Some(rec.state.clone()) },
                state_time: rec.state_time,
            })
        })
    }

    /// Whether the material exists in this view.
    pub fn material_exists(&self, mat: MaterialId) -> bool {
        self.db.rd_exists(self.rd, mat.oid())
    }

    /// The material's current workflow state, if any.
    pub fn state_of(&self, mat: MaterialId) -> Result<Option<String>> {
        self.db.state_of_rd(self.rd, mat)
    }

    /// All materials of `class`, newest-created first, walking extent
    /// heads as recorded in this view's catalog.
    pub fn class_extent(&self, class: &str, include_subclasses: bool) -> Result<Vec<MaterialId>> {
        let heads: Vec<Oid> = self.with_cat(|c| -> Result<Vec<Oid>> {
            let target = c.material_class(class)?.id;
            Ok(c.material_classes()
                .iter()
                .filter(|mc| {
                    if include_subclasses {
                        c.is_a(mc.id, target)
                    } else {
                        mc.id == target
                    }
                })
                .map(|mc| mc.extent_head)
                .collect())
        })?;
        let mut out = Vec::new();
        for head in heads {
            out.extend(self.db.walk_extent(self.rd, head)?);
        }
        Ok(out)
    }

    /// Cached instance count for `class` from this view's catalog.
    pub fn count_class(&self, class: &str, include_subclasses: bool) -> Result<u64> {
        self.with_cat(|c| {
            let target = c.material_class(class)?.id;
            Ok(c.material_classes()
                .iter()
                .filter(|mc| {
                    if include_subclasses {
                        c.is_a(mc.id, target)
                    } else {
                        mc.id == target
                    }
                })
                .map(|mc| mc.count)
                .sum())
        })
    }

    // ---- histories ---------------------------------------------------------

    /// The material's full history, newest first.
    pub fn history(&self, mat: MaterialId) -> Result<Vec<HistoryEntry>> {
        self.db.history_rd(self.rd, mat)
    }

    /// Number of events in the material's history.
    pub fn history_len(&self, mat: MaterialId) -> Result<usize> {
        Ok(self.history(mat)?.len())
    }

    /// History entries with valid time in `[from, to]`, newest first.
    pub fn history_between(
        &self,
        mat: MaterialId,
        from: ValidTime,
        to: ValidTime,
    ) -> Result<Vec<HistoryEntry>> {
        self.db.history_between_rd(self.rd, mat, from, to)
    }

    /// The value of `attr` **as of** valid time `at`.
    pub fn as_of(
        &self,
        mat: MaterialId,
        attr: &str,
        at: ValidTime,
    ) -> Result<Option<(ValidTime, Value)>> {
        self.db.as_of_rd(self.rd, mat, attr, at)
    }

    /// Every attribute's value **as of** valid time `at`.
    pub fn recent_all_at(
        &self,
        mat: MaterialId,
        at: ValidTime,
    ) -> Result<Vec<(String, ValidTime, Value)>> {
        self.db.recent_all_at_rd(self.rd, mat, at)
    }

    // ---- most-recent views -------------------------------------------------

    /// The most-recent value of `attr` for `mat`, from the cache.
    pub fn recent(&self, mat: MaterialId, attr: &str) -> Result<Option<Recent>> {
        self.db.recent_rd(self.rd, mat, attr)
    }

    /// All most-recent values for `mat`, sorted by attribute name.
    pub fn recent_all(&self, mat: MaterialId) -> Result<Vec<(String, Recent)>> {
        self.db.recent_all_rd(self.rd, mat)
    }

    /// Reference implementation of [`recent`](View::recent) that derives
    /// the value by walking the history.
    pub fn recent_uncached(&self, mat: MaterialId, attr: &str) -> Result<Option<Recent>> {
        self.db.recent_uncached_rd(self.rd, mat, attr)
    }

    // ---- steps -------------------------------------------------------------

    /// Decoded step info (see [`LabBase::step`]).
    pub fn step(&self, step: StepId) -> Result<StepInfo> {
        let rec = self.db.read_step_rec_rd(self.rd, step.oid())?;
        self.with_cat(|c| {
            let class = c.step_class_by_id(rec.class)?;
            Ok(StepInfo {
                id: step,
                class: class.name.clone(),
                version: rec.version,
                valid_time: rec.valid_time,
                materials: rec.materials.iter().map(|&o| MaterialId::from(o)).collect(),
                attrs: rec.attrs.clone(),
            })
        })
    }

    /// The attribute set the step instance was created under.
    pub fn step_schema(&self, step: StepId) -> Result<Vec<AttrDef>> {
        let rec = self.db.read_step_rec_rd(self.rd, step.oid())?;
        self.with_cat(|c| {
            let class = c.step_class_by_id(rec.class)?;
            let ver = class.version(rec.version).ok_or_else(|| {
                LabError::Decode(format!(
                    "step {step} references missing version {}",
                    rec.version
                ))
            })?;
            Ok(ver.attrs.clone())
        })
    }

    // ---- sets --------------------------------------------------------------

    /// The set's members in insertion order.
    pub fn set_members(&self, name: &str) -> Result<Vec<MaterialId>> {
        let oid = self.set_oid(name)?;
        let rec = crate::smrecord::MaterialSetRec::decode(&self.db.rd_bytes(self.rd, oid)?)?;
        Ok(rec.members.into_iter().map(MaterialId::from).collect())
    }

    /// Membership test.
    pub fn set_contains(&self, name: &str, mat: MaterialId) -> Result<bool> {
        let oid = self.set_oid(name)?;
        let rec = crate::smrecord::MaterialSetRec::decode(&self.db.rd_bytes(self.rd, oid)?)?;
        Ok(rec.members.contains(&mat.oid()))
    }

    /// All set names in this view, sorted.
    pub fn set_names(&self) -> Vec<String> {
        let mut names: Vec<String> = match &self.sets {
            Some(dir) => dir.by_name.keys().cloned().collect(),
            None => self.db.sets.read().by_name.keys().cloned().collect(),
        };
        names.sort();
        names
    }
}

impl Drop for View<'_> {
    fn drop(&mut self) {
        if let Some(snap) = self.owned.take() {
            self.db.store.release_snapshot(snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::db::tests::mem_db;
    use crate::value::Value;

    fn q(v: f64) -> Vec<(String, Value)> {
        vec![("quality".into(), Value::Real(v))]
    }

    #[test]
    fn view_is_a_stable_cut() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.record_step(t, "determine_sequence", 10, &[a], q(0.1)).unwrap();
        db.commit(t).unwrap();

        let view = db.view().unwrap();
        assert_eq!(view.class_extent("clone", false).unwrap(), vec![a]);
        assert_eq!(view.recent(a, "quality").unwrap().unwrap().value, Value::Real(0.1));

        // A later commit is invisible to the pinned view...
        let t = db.begin().unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.record_step(t, "determine_sequence", 20, &[a], q(0.2)).unwrap();
        db.commit(t).unwrap();

        assert_eq!(view.class_extent("clone", false).unwrap(), vec![a]);
        assert!(!view.material_exists(b));
        assert_eq!(view.recent(a, "quality").unwrap().unwrap().value, Value::Real(0.1));
        assert_eq!(view.history(a).unwrap().len(), 1);
        assert_eq!(view.count_class("clone", false).unwrap(), 1);

        // ...while a fresh view sees it.
        let fresh = db.view().unwrap();
        assert_eq!(fresh.class_extent("clone", false).unwrap(), vec![b, a]);
        assert_eq!(fresh.recent(a, "quality").unwrap().unwrap().value, Value::Real(0.2));
        assert!(fresh.lsn().unwrap() > view.lsn().unwrap());
    }

    #[test]
    fn view_in_sees_own_pending_writes() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.record_step(t, "determine_sequence", 10, &[a], q(0.1)).unwrap();
        let view = db.view_in(t);
        assert!(view.material_exists(a));
        assert_eq!(view.history(a).unwrap().len(), 1);
        assert_eq!(view.recent(a, "quality").unwrap().unwrap().value, Value::Real(0.1));
        drop(view);
        db.commit(t).unwrap();
    }

    #[test]
    fn view_snapshot_of_sets() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.create_set(t, "q").unwrap();
        db.add_to_set(t, "q", a).unwrap();
        db.commit(t).unwrap();

        let view = db.view().unwrap();
        let t = db.begin().unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.add_to_set(t, "q", b).unwrap();
        db.create_set(t, "r").unwrap();
        db.commit(t).unwrap();

        assert_eq!(view.set_members("q").unwrap(), vec![a]);
        assert_eq!(view.set_names(), vec!["q"]);
        assert!(view.set_contains("q", a).unwrap());
        assert!(!view.set_contains("q", b).unwrap());
        assert_eq!(db.set_members("q").unwrap(), vec![a, b]);
    }
}
