//! Read-side query operations: extent scans, counting, name lookup, and
//! report generation — the paper's Section 8 query families that are not
//! already covered by `recent`/`history`/`state`.

use std::collections::{HashMap, HashSet};

use labflow_storage::Oid;

use crate::db::{LabBase, Rd};
use crate::error::Result;
use crate::ids::{ClassId, MaterialId, ValidTime};
use crate::value::Value;

impl LabBase {
    /// All materials of `class` (optionally including subclasses),
    /// newest-created first (extent lists are prepend-ordered).
    pub fn class_extent(&self, class: &str, include_subclasses: bool) -> Result<Vec<MaterialId>> {
        let target = self.with_catalog(|c| c.material_class(class).map(|mc| mc.id))?;
        let heads: Vec<(ClassId, Oid)> = self.with_catalog(|c| {
            c.material_classes().iter().map(|mc| (mc.id, mc.extent_head)).collect()
        });
        let classes: Vec<(ClassId, Oid)> = if include_subclasses {
            self.with_catalog(|c| {
                heads
                    .iter()
                    .filter(|(id, _)| c.is_a(*id, target))
                    .copied()
                    .collect()
            })
        } else {
            heads.into_iter().filter(|(id, _)| *id == target).collect()
        };
        let mut out = Vec::new();
        for (_, head) in classes {
            out.extend(self.walk_extent(Rd::Latest, head)?);
        }
        Ok(out)
    }

    /// Walk one extent list from `head`, reading material records through
    /// `rd` so snapshot views traverse a consistent cut.
    pub(crate) fn walk_extent(&self, rd: Rd, head: Oid) -> Result<Vec<MaterialId>> {
        let mut out = Vec::new();
        let mut cur = head;
        while !cur.is_nil() {
            let rec = self.read_material_rec_rd(rd, cur)?;
            out.push(MaterialId::from(cur));
            cur = rec.ext_next;
        }
        Ok(out)
    }

    /// Cached instance count for `class` (O(1), from the catalog).
    pub fn count_class(&self, class: &str, include_subclasses: bool) -> Result<u64> {
        self.with_catalog(|c| {
            let target = c.material_class(class)?.id;
            Ok(c.material_classes()
                .iter()
                .filter(|mc| {
                    if include_subclasses {
                        c.is_a(mc.id, target)
                    } else {
                        mc.id == target
                    }
                })
                .map(|mc| mc.count)
                .sum())
        })
    }

    /// Instance count derived by scanning the extent — the benchmark's
    /// counting query, which actually touches every material record.
    pub fn count_class_scan(&self, class: &str) -> Result<u64> {
        Ok(self.class_extent(class, false)?.len() as u64)
    }

    /// Count step instances of `step_class` by scanning material
    /// histories (steps shared between materials are counted once).
    /// Deliberately heavy: this is the paper's `setof`-style counting
    /// over the event history.
    pub fn count_steps_scan(&self, step_class: &str) -> Result<u64> {
        let class_id = self.with_catalog(|c| c.step_class(step_class).map(|s| s.id))?;
        let mut seen: HashSet<u64> = HashSet::new();
        for class in self.with_catalog(|c| {
            c.material_classes().iter().map(|mc| mc.name.clone()).collect::<Vec<_>>()
        }) {
            for mat in self.class_extent(&class, false)? {
                for entry in self.history(mat)? {
                    if seen.contains(&entry.step.oid().raw()) {
                        continue;
                    }
                    let srec = self.read_step_rec(entry.step.oid())?;
                    if srec.class == class_id {
                        seen.insert(entry.step.oid().raw());
                    }
                }
            }
        }
        Ok(seen.len() as u64)
    }

    /// Find a material by its external name (lazy name index).
    pub fn find_material(&self, name: &str) -> Result<Option<MaterialId>> {
        {
            let index = self.name_index.read();
            if let Some(map) = index.map.as_ref() {
                return Ok(map.get(name).map(|&o| MaterialId::from(o)));
            }
        }
        // Build the index from every extent of the committed catalog —
        // the live catalog's heads can point at materials still pending
        // in open transactions, which a committed-state scan cannot
        // read. (Creations after the build keep the map fresh
        // incrementally, so pending materials appear once noted.)
        // The scan can be long on a populated database, so charge it to
        // the per-session wait profile.
        let build_start = std::time::Instant::now();
        let mut map: HashMap<String, Oid> = HashMap::new();
        let cat = crate::schema::Catalog::decode(&self.rd_bytes(Rd::Latest, self.catalog_oid)?)?;
        for mc in cat.material_classes() {
            let mut cur = mc.extent_head;
            while !cur.is_nil() {
                let rec = self.read_material_rec_rd(Rd::Latest, cur)?;
                let next = rec.ext_next;
                map.insert(rec.name, cur);
                cur = next;
            }
        }
        labflow_storage::add_name_index_wait(build_start.elapsed().as_nanos() as u64);
        let mut index = self.name_index.write();
        if index.map.is_none() {
            // Materials created while the map was unbuilt parked their
            // names in `pending` — the committed-extent scan cannot see
            // them (they may still be uncommitted), and without this
            // merge a name whose creation raced the scan would be
            // missing from the installed map forever. Merging mirrors
            // the incremental insert a built map receives at creation
            // time; an abort removes the entry again via its footprint.
            for (pname, poid, _) in index.pending.drain(..) {
                map.insert(pname, poid);
            }
            index.map = Some(map);
        }
        // A racing builder may have installed a fresher map while this
        // scan ran; resolve against whichever map won installation.
        let found =
            index.map.as_ref().and_then(|m| m.get(name)).map(|&o| MaterialId::from(o));
        Ok(found)
    }

    /// The most-recent `attr` value for every material of `class` that
    /// has one — the "set and list generation" report (e.g. collect every
    /// clone's assembled sequence).
    pub fn collect_attr(&self, class: &str, attr: &str) -> Result<Vec<(MaterialId, Value)>> {
        let mut out = Vec::new();
        for mat in self.class_extent(class, false)? {
            if let Some(recent) = self.recent(mat, attr)? {
                out.push((mat, recent.value));
            }
        }
        Ok(out)
    }

    /// Materials of `class` whose state changed at or after `since` —
    /// the "what finished this week" report.
    pub fn changed_since(
        &self,
        class: &str,
        state: &str,
        since: ValidTime,
    ) -> Result<Vec<MaterialId>> {
        let mut out = Vec::new();
        for mat in self.class_extent(class, false)? {
            let rec = self.read_material_rec(mat.oid())?;
            if rec.state == state && rec.state_time >= since {
                out.push(mat);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::tests::mem_db;

    #[test]
    fn extent_and_counts() {
        let db = mem_db();
        let t = db.begin().unwrap();
        for i in 0..5 {
            db.create_material(t, "clone", &format!("c{i}"), i).unwrap();
        }
        db.create_material(t, "material", "raw-1", 0).unwrap();
        db.commit(t).unwrap();

        assert_eq!(db.count_class("clone", false).unwrap(), 5);
        assert_eq!(db.count_class_scan("clone").unwrap(), 5);
        assert_eq!(db.count_class("material", false).unwrap(), 1);
        assert_eq!(db.count_class("material", true).unwrap(), 6, "clone is-a material");
        assert_eq!(db.class_extent("material", true).unwrap().len(), 6);
        // Extent is newest-first.
        let ext = db.class_extent("clone", false).unwrap();
        let first = db.material(ext[0]).unwrap();
        assert_eq!(first.name, "c4");
    }

    #[test]
    fn count_steps_scan_dedupes_shared_steps() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.record_step(t, "determine_sequence", 1, &[a, b], vec![]).unwrap();
        db.record_step(t, "determine_sequence", 2, &[a], vec![]).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.count_steps_scan("determine_sequence").unwrap(), 2);
    }

    #[test]
    fn find_material_by_name() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "clone-xyz", 0).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.find_material("clone-xyz").unwrap(), Some(m));
        assert_eq!(db.find_material("missing").unwrap(), None);
        // Index stays fresh for creations after it is built.
        let t = db.begin().unwrap();
        let n = db.create_material(t, "clone", "clone-new", 9).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.find_material("clone-new").unwrap(), Some(n));
    }

    /// Regression: a creation that runs while the name index is unbuilt
    /// must survive an index build that scans only committed state.
    /// Before the `pending` merge, the build would install a map missing
    /// the in-flight name, hiding the material from lookups forever once
    /// its transaction committed (seen as a lost `find_material` under
    /// the concurrent server workload).
    #[test]
    fn name_index_build_keeps_creations_that_raced_the_scan() {
        let db = mem_db();
        let t0 = db.begin().unwrap();
        db.create_material(t0, "clone", "seed", 0).unwrap();
        db.commit(t0).unwrap();

        // Index is unbuilt; this creation parks its name in `pending`.
        let t1 = db.begin().unwrap();
        let late = db.create_material(t1, "clone", "late", 1).unwrap();

        // Build the index mid-transaction: the committed-extent scan
        // cannot see `late`, so only the pending merge can save it.
        assert_eq!(db.find_material("missing").unwrap(), None);
        assert_eq!(db.find_material("late").unwrap(), Some(late), "pending name noted");

        db.commit(t1).unwrap();
        assert_eq!(db.find_material("late").unwrap(), Some(late), "committed name kept");
    }

    /// The pending-name path also unwinds: a session abort withdraws a
    /// name parked before the index was built.
    #[test]
    fn name_index_pending_names_withdrawn_on_session_abort() {
        let db = mem_db();
        let t0 = db.begin().unwrap();
        db.create_material(t0, "clone", "seed", 0).unwrap();
        db.commit(t0).unwrap();

        let mut session = db.session().unwrap();
        session.create_material("clone", "ghost", 1).unwrap();
        // Build the index while `ghost` is pending, then abort.
        assert!(db.find_material("ghost").unwrap().is_some(), "pending name visible");
        session.abort().unwrap();
        assert_eq!(db.find_material("ghost").unwrap(), None, "aborted name withdrawn");
        // A fresh creation still lands in the installed map.
        let t2 = db.begin().unwrap();
        let again = db.create_material(t2, "clone", "ghost", 2).unwrap();
        db.commit(t2).unwrap();
        assert_eq!(db.find_material("ghost").unwrap(), Some(again));
    }

    /// Regression: the plain-txn abort's full invalidation must not
    /// discard names *other* in-flight transactions parked while the
    /// index was unbuilt — the rebuild's committed-extent scan cannot
    /// see their materials, so a dropped entry is lost forever once
    /// they commit.
    #[test]
    fn name_index_plain_abort_preserves_other_txns_pending_names() {
        let db = mem_db();
        let t0 = db.begin().unwrap();
        db.create_material(t0, "clone", "seed", 0).unwrap();
        db.commit(t0).unwrap();

        // Index unbuilt: this in-flight creation parks its name.
        let t1 = db.begin().unwrap();
        let kept = db.create_material(t1, "clone", "kept", 1).unwrap();

        // An unrelated plain transaction aborts; its conservative cache
        // invalidation must keep t1's parked name.
        let t2 = db.begin().unwrap();
        db.abort(t2).unwrap();

        // Build before t1 commits: only a preserved pending entry can
        // make `kept` resolve.
        assert_eq!(db.find_material("kept").unwrap(), Some(kept), "parked name preserved");
        db.commit(t1).unwrap();
        assert_eq!(db.find_material("kept").unwrap(), Some(kept));
    }

    /// The aborting plain transaction's *own* parked names roll back
    /// with it: keeping them would resolve to an erased object.
    #[test]
    fn name_index_plain_abort_withdraws_its_own_pending_names() {
        let db = mem_db();
        let t0 = db.begin().unwrap();
        db.create_material(t0, "clone", "seed", 0).unwrap();
        db.commit(t0).unwrap();

        // Index unbuilt: the creation parks, then the same transaction
        // aborts via the footprint-less plain API.
        let t1 = db.begin().unwrap();
        db.create_material(t1, "clone", "gone", 1).unwrap();
        db.abort(t1).unwrap();
        assert_eq!(db.find_material("gone").unwrap(), None, "own parked name withdrawn");
    }

    #[test]
    fn collect_attr_reports_only_materials_with_value() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let _b = db.create_material(t, "clone", "b", 0).unwrap();
        db.record_step(
            t,
            "determine_sequence",
            3,
            &[a],
            vec![("sequence".into(), Value::dna("ACGT").unwrap())],
        )
        .unwrap();
        db.commit(t).unwrap();
        let rows = db.collect_attr("clone", "sequence").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, a);
    }

    #[test]
    fn changed_since_filters_state_and_time() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        let c = db.create_material(t, "clone", "c", 0).unwrap();
        db.set_state(t, a, "finished", 100).unwrap();
        db.set_state(t, b, "finished", 50).unwrap();
        db.set_state(t, c, "failed", 120).unwrap();
        db.commit(t).unwrap();
        let recent = db.changed_since("clone", "finished", 80).unwrap();
        assert_eq!(recent, vec![a]);
    }
}
