//! The most-recent-value access structure (paper Section 7).
//!
//! A material's *current* attributes are a view over its history: for
//! each attribute, the value recorded by the newest step (by valid time)
//! that carries it. Deriving this by walking histories would make the
//! hottest query in the lab linear in history length, so LabBase
//! maintains a per-material [`RecentRecord`] cache — "special access
//! structures to quickly retrieve most-recent results" — updated
//! incrementally as steps arrive (in any order) and repaired when steps
//! are retracted.

use labflow_storage::{ClusterHint, Oid, TxnId};

use crate::db::{LabBase, Rd, SEG_MATERIAL};
use crate::error::Result;
use crate::ids::{MaterialId, StepId, ValidTime};
use crate::smrecord::{RecentEntry, RecentRecord};
use crate::value::Value;

/// A most-recent value returned to callers.
#[derive(Clone, Debug, PartialEq)]
pub struct Recent {
    /// The value.
    pub value: Value,
    /// Valid time it was recorded at.
    pub valid_time: ValidTime,
    /// The step that recorded it.
    pub step: StepId,
}

impl From<&RecentEntry> for Recent {
    fn from(e: &RecentEntry) -> Self {
        Recent { value: e.value.clone(), valid_time: e.valid_time, step: StepId::from(e.step) }
    }
}

impl LabBase {
    /// Fold a new step's attributes into `mat`'s most-recent cache,
    /// creating the cache object on first use.
    pub(crate) fn absorb_recent(
        &self,
        txn: TxnId,
        mat: Oid,
        step: Oid,
        valid_time: ValidTime,
        attrs: &[(String, Value)],
    ) -> Result<()> {
        if attrs.is_empty() {
            return Ok(());
        }
        let rd = Rd::In(txn);
        let mut mrec = self.read_material_rec_rd(rd, mat)?;
        if mrec.recent.is_nil() {
            let mut rec = RecentRecord::default();
            rec.absorb(step, valid_time, attrs);
            let oid = self.store.allocate(
                txn,
                SEG_MATERIAL,
                ClusterHint::near(mat),
                &rec.encode(),
            )?;
            mrec.recent = oid;
            return self.write_material_rec(txn, mat, &mrec);
        }
        let mut rec = self.read_recent_rec_rd(rd, mrec.recent)?;
        if rec.absorb(step, valid_time, attrs) {
            self.store.update(txn, mrec.recent, &rec.encode())?;
        }
        Ok(())
    }

    /// After retracting `step`, recompute any most-recent entries it was
    /// providing for `mat` by walking the (already-unlinked) history.
    pub(crate) fn recompute_after_retract(&self, txn: TxnId, mat: Oid, step: Oid) -> Result<()> {
        let rd = Rd::In(txn);
        let mrec = self.read_material_rec_rd(rd, mat)?;
        if mrec.recent.is_nil() {
            return Ok(());
        }
        let mut rec = self.read_recent_rec_rd(rd, mrec.recent)?;
        let mut missing = rec.evict_step(step);
        if missing.is_empty() {
            return Ok(());
        }
        // Walk newest-first; the first occurrence of each missing attr is
        // its new most-recent value.
        for entry in self.history_rd(rd, MaterialId::from(mat))? {
            if missing.is_empty() {
                break;
            }
            let srec = self.read_step_rec_rd(rd, entry.step.oid())?;
            missing.retain(|attr| {
                if let Some(v) = srec.attr(attr) {
                    rec.absorb(
                        entry.step.oid(),
                        entry.valid_time,
                        &[(attr.clone(), v.clone())],
                    );
                    false
                } else {
                    true
                }
            });
        }
        self.store.update(txn, mrec.recent, &rec.encode())?;
        Ok(())
    }

    pub(crate) fn recent_rd(&self, rd: Rd, mat: MaterialId, attr: &str) -> Result<Option<Recent>> {
        let mrec = self.read_material_rec_rd(rd, mat.oid())?;
        if mrec.recent.is_nil() {
            return Ok(None);
        }
        let rec = self.read_recent_rec_rd(rd, mrec.recent)?;
        Ok(rec.get(attr).map(Recent::from))
    }

    /// The most-recent value of `attr` for `mat` — the benchmark's
    /// hottest query, served from the cache in O(1) object reads.
    pub fn recent(&self, mat: MaterialId, attr: &str) -> Result<Option<Recent>> {
        self.recent_rd(Rd::Latest, mat, attr)
    }

    /// The most-recent value of `attr` as seen by the open transaction
    /// `txn`, including values from steps it has not yet committed.
    pub fn recent_in(&self, txn: TxnId, mat: MaterialId, attr: &str) -> Result<Option<Recent>> {
        self.recent_rd(Rd::In(txn), mat, attr)
    }

    pub(crate) fn recent_all_rd(&self, rd: Rd, mat: MaterialId) -> Result<Vec<(String, Recent)>> {
        let mrec = self.read_material_rec_rd(rd, mat.oid())?;
        if mrec.recent.is_nil() {
            return Ok(Vec::new());
        }
        let rec = self.read_recent_rec_rd(rd, mrec.recent)?;
        let mut out: Vec<(String, Recent)> =
            rec.entries.iter().map(|e| (e.attr.clone(), Recent::from(e))).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// All most-recent values for `mat`, as `(attr, Recent)` pairs sorted
    /// by attribute name.
    pub fn recent_all(&self, mat: MaterialId) -> Result<Vec<(String, Recent)>> {
        self.recent_all_rd(Rd::Latest, mat)
    }

    /// Reference implementation of `recent` that derives the value by
    /// walking the history (no cache). Used by tests and the benchmark's
    /// self-check to validate the access structure.
    pub fn recent_uncached(&self, mat: MaterialId, attr: &str) -> Result<Option<Recent>> {
        self.recent_uncached_rd(Rd::Latest, mat, attr)
    }

    pub(crate) fn recent_uncached_rd(
        &self,
        rd: Rd,
        mat: MaterialId,
        attr: &str,
    ) -> Result<Option<Recent>> {
        for entry in self.history_rd(rd, mat)? {
            let srec = self.read_step_rec_rd(rd, entry.step.oid())?;
            if let Some(v) = srec.attr(attr) {
                return Ok(Some(Recent {
                    value: v.clone(),
                    valid_time: entry.valid_time,
                    step: entry.step,
                }));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::tests::mem_db;

    fn q(v: f64) -> Vec<(String, Value)> {
        vec![("quality".into(), Value::Real(v))]
    }

    #[test]
    fn recent_follows_valid_time_not_arrival_order() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        db.record_step(t, "determine_sequence", 20, &[m], q(0.2)).unwrap();
        // Arrives later but is older in valid time: must not win.
        db.record_step(t, "determine_sequence", 10, &[m], q(0.1)).unwrap();
        db.commit(t).unwrap();
        let r = db.recent(m, "quality").unwrap().unwrap();
        assert_eq!(r.value, Value::Real(0.2));
        assert_eq!(r.valid_time, 20);
    }

    #[test]
    fn recent_none_for_unknown_attr_or_fresh_material() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.recent(m, "quality").unwrap(), None);
        assert!(db.recent_all(m).unwrap().is_empty());
    }

    #[test]
    fn recent_all_sorted_by_attr() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        db.record_step(
            t,
            "determine_sequence",
            5,
            &[m],
            vec![
                ("sequence".into(), Value::dna("ACGT").unwrap()),
                ("quality".into(), Value::Real(0.7)),
            ],
        )
        .unwrap();
        db.commit(t).unwrap();
        let all = db.recent_all(m).unwrap();
        let names: Vec<&str> = all.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["quality", "sequence"]);
    }

    #[test]
    fn cache_matches_uncached_reference_under_random_order() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        // A deterministic scramble of valid times.
        let times = [40, 10, 70, 20, 60, 30, 50, 15, 65, 45];
        for (i, &vt) in times.iter().enumerate() {
            db.record_step(t, "determine_sequence", vt, &[m], q(i as f64)).unwrap();
        }
        db.commit(t).unwrap();
        let cached = db.recent(m, "quality").unwrap().unwrap();
        let derived = db.recent_uncached(m, "quality").unwrap().unwrap();
        assert_eq!(cached.value, derived.value);
        assert_eq!(cached.valid_time, derived.valid_time);
        assert_eq!(cached.valid_time, 70);
    }

    #[test]
    fn retract_recomputes_recent() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        db.record_step(t, "determine_sequence", 10, &[m], q(0.1)).unwrap();
        let newest = db.record_step(t, "determine_sequence", 20, &[m], q(0.2)).unwrap();
        // Uncommitted, so the check reads the transaction's own view.
        assert_eq!(db.recent_in(t, m, "quality").unwrap().unwrap().value, Value::Real(0.2));
        db.retract_step(t, newest).unwrap();
        db.commit(t).unwrap();
        let r = db.recent(m, "quality").unwrap().unwrap();
        assert_eq!(r.value, Value::Real(0.1), "cache repaired from history");
        assert_eq!(r.valid_time, 10);
        let derived = db.recent_uncached(m, "quality").unwrap().unwrap();
        assert_eq!(r.value, derived.value);
    }

    #[test]
    fn retract_only_provider_clears_attr() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let m = db.create_material(t, "clone", "m", 0).unwrap();
        let s = db.record_step(t, "determine_sequence", 10, &[m], q(0.1)).unwrap();
        db.retract_step(t, s).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.recent(m, "quality").unwrap(), None);
    }

    #[test]
    fn shared_step_updates_all_materials_recents() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.record_step(t, "determine_sequence", 7, &[a, b], q(0.9)).unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.recent(a, "quality").unwrap().unwrap().value, Value::Real(0.9));
        assert_eq!(db.recent(b, "quality").unwrap().unwrap().value, Value::Real(0.9));
    }
}
