//! Attribute values stored in step instances.
//!
//! LabFlow-1's attribute values span the mix a genome lab records:
//! scalars (lane numbers, quality scores), timestamps, references to
//! other objects, DNA sequence text, and *lists* (e.g. the BLAST hit
//! lists of the paper's "set and list generation" queries).

use std::fmt;

use labflow_storage::Oid;

use crate::enc::{Reader, Writer};
use crate::error::{LabError, Result};

/// Declared type of an attribute in a step-class version.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrType {
    /// Boolean flag (e.g. `passed_qc`).
    Bool,
    /// 64-bit integer (lane numbers, read lengths, counts).
    Int,
    /// 64-bit float (quality scores, concentrations).
    Real,
    /// UTF-8 text (operator names, protocol notes).
    Str,
    /// Valid-time timestamp.
    Time,
    /// Reference to another material or step.
    Ref,
    /// DNA sequence text (A/C/G/T/N).
    Dna,
    /// Heterogeneous list (BLAST hit lists, tclone collections).
    List,
    /// Any value accepted (the schema-evolution escape hatch).
    Any,
}

impl AttrType {
    /// Stable wire tag.
    fn tag(self) -> u8 {
        match self {
            AttrType::Bool => 1,
            AttrType::Int => 2,
            AttrType::Real => 3,
            AttrType::Str => 4,
            AttrType::Time => 5,
            AttrType::Ref => 6,
            AttrType::Dna => 7,
            AttrType::List => 8,
            AttrType::Any => 9,
        }
    }

    fn from_tag(tag: u8) -> Result<AttrType> {
        Ok(match tag {
            1 => AttrType::Bool,
            2 => AttrType::Int,
            3 => AttrType::Real,
            4 => AttrType::Str,
            5 => AttrType::Time,
            6 => AttrType::Ref,
            7 => AttrType::Dna,
            8 => AttrType::List,
            9 => AttrType::Any,
            t => return Err(LabError::Decode(format!("unknown attr type tag {t}"))),
        })
    }

    /// Human-readable name (used in type errors).
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Bool => "bool",
            AttrType::Int => "int",
            AttrType::Real => "real",
            AttrType::Str => "str",
            AttrType::Time => "time",
            AttrType::Ref => "ref",
            AttrType::Dna => "dna",
            AttrType::List => "list",
            AttrType::Any => "any",
        }
    }

    /// Encode into `w`.
    pub fn encode(self, w: &mut Writer) {
        w.u8(self.tag());
    }

    /// Decode from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<AttrType> {
        AttrType::from_tag(r.u8()?)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An attribute value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Explicit null (attribute recorded with no value).
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Real(f64),
    /// Text.
    Str(String),
    /// Valid-time timestamp.
    Time(i64),
    /// Reference to another object.
    Ref(Oid),
    /// DNA sequence (validated alphabet).
    Dna(String),
    /// Heterogeneous list.
    List(Vec<Value>),
}

impl Value {
    /// Construct a DNA value, validating the alphabet.
    pub fn dna(seq: impl Into<String>) -> Result<Value> {
        let seq = seq.into();
        if seq.bytes().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T' | b'N')) {
            Ok(Value::Dna(seq))
        } else {
            Err(LabError::TypeMismatch {
                attr: "<dna literal>".into(),
                expected: "dna",
                got: format!("{:?}", seq.chars().take(12).collect::<String>()),
            })
        }
    }

    /// Whether this value conforms to `ty`.
    pub fn conforms(&self, ty: AttrType) -> bool {
        match (self, ty) {
            (_, AttrType::Any) | (Value::Null, _) => true,
            (Value::Bool(_), AttrType::Bool) => true,
            (Value::Int(_), AttrType::Int) => true,
            (Value::Real(_), AttrType::Real) => true,
            (Value::Int(_), AttrType::Real) => true, // int widens to real
            (Value::Str(_), AttrType::Str) => true,
            (Value::Time(_), AttrType::Time) => true,
            (Value::Int(_), AttrType::Time) => true,
            (Value::Ref(_), AttrType::Ref) => true,
            (Value::Dna(_), AttrType::Dna) => true,
            (Value::Str(_), AttrType::Dna) => true,
            (Value::List(_), AttrType::List) => true,
            _ => false,
        }
    }

    /// Approximate in-memory footprint in bytes (used by the workload's
    /// size accounting).
    pub fn weight(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Real(_) | Value::Time(_) | Value::Ref(_) => 8,
            Value::Str(s) | Value::Dna(s) => s.len() + 4,
            Value::List(vs) => 4 + vs.iter().map(Value::weight).sum::<usize>(),
        }
    }

    /// Encode into `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Value::Null => w.u8(0),
            Value::Bool(b) => {
                w.u8(1);
                w.u8(*b as u8);
            }
            Value::Int(v) => {
                w.u8(2);
                w.i64(*v);
            }
            Value::Real(v) => {
                w.u8(3);
                w.f64(*v);
            }
            Value::Str(s) => {
                w.u8(4);
                w.str(s);
            }
            Value::Time(t) => {
                w.u8(5);
                w.i64(*t);
            }
            Value::Ref(oid) => {
                w.u8(6);
                w.u64(oid.raw());
            }
            Value::Dna(s) => {
                w.u8(7);
                w.str(s);
            }
            Value::List(vs) => {
                w.u8(8);
                w.u32(vs.len() as u32);
                for v in vs {
                    v.encode(w);
                }
            }
        }
    }

    /// Decode from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Value> {
        Ok(match r.u8()? {
            0 => Value::Null,
            1 => Value::Bool(r.u8()? != 0),
            2 => Value::Int(r.i64()?),
            3 => Value::Real(r.f64()?),
            4 => Value::Str(r.str()?),
            5 => Value::Time(r.i64()?),
            6 => Value::Ref(Oid::from_raw(r.u64()?)),
            7 => Value::Dna(r.str()?),
            8 => {
                let n = r.u32()? as usize;
                // Guard against corrupt lengths blowing up allocation.
                if n > r.remaining() {
                    return Err(LabError::Decode(format!("list length {n} exceeds record")));
                }
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(Value::decode(r)?);
                }
                Value::List(vs)
            }
            t => return Err(LabError::Decode(format!("unknown value tag {t}"))),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Time(t) => write!(f, "@{t}"),
            Value::Ref(oid) => write!(f, "{oid}"),
            Value::Dna(s) => {
                if s.len() > 16 {
                    write!(f, "dna({}…,{} bp)", &s[..16], s.len())
                } else {
                    write!(f, "dna({s})")
                }
            }
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Ref(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut w = Writer::new();
        v.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        let out = Value::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn all_variants_round_trip() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Real(2.25),
            Value::Str("lane 4".into()),
            Value::Time(1_000_000),
            Value::Ref(Oid::from_raw(88)),
            Value::dna("ACGTN").unwrap(),
            Value::List(vec![Value::Int(1), Value::Str("hit".into()), Value::List(vec![])]),
        ];
        for v in &values {
            assert_eq!(&round_trip(v), v);
        }
    }

    #[test]
    fn dna_alphabet_validated() {
        assert!(Value::dna("ACGT").is_ok());
        assert!(Value::dna("ACGU").is_err());
        assert!(Value::dna("").is_ok());
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Int(3).conforms(AttrType::Int));
        assert!(Value::Int(3).conforms(AttrType::Real), "int widens to real");
        assert!(Value::Int(3).conforms(AttrType::Time));
        assert!(!Value::Real(3.0).conforms(AttrType::Int));
        assert!(Value::Null.conforms(AttrType::Dna), "null conforms to anything");
        assert!(Value::Str("ACGT".into()).conforms(AttrType::Dna));
        assert!(Value::List(vec![]).conforms(AttrType::List));
        assert!(!Value::Bool(true).conforms(AttrType::Str));
        assert!(Value::Bool(true).conforms(AttrType::Any));
    }

    #[test]
    fn attr_type_round_trip() {
        for ty in [
            AttrType::Bool,
            AttrType::Int,
            AttrType::Real,
            AttrType::Str,
            AttrType::Time,
            AttrType::Ref,
            AttrType::Dna,
            AttrType::List,
            AttrType::Any,
        ] {
            let mut w = Writer::new();
            ty.encode(&mut w);
            let buf = w.finish();
            assert_eq!(AttrType::decode(&mut Reader::new(&buf)).unwrap(), ty);
        }
    }

    #[test]
    fn corrupt_list_length_rejected() {
        let mut w = Writer::new();
        w.u8(8); // list tag
        w.u32(1_000_000); // absurd length
        let buf = w.finish();
        assert!(matches!(Value::decode(&mut Reader::new(&buf)), Err(LabError::Decode(_))));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert!(Value::dna("ACGTACGTACGTACGTACGT").unwrap().to_string().contains("20 bp"));
        assert_eq!(Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(), "[1, 2]");
    }

    #[test]
    fn weight_tracks_size() {
        assert!(Value::Str("x".repeat(100)).weight() > Value::Int(1).weight());
        let l = Value::List(vec![Value::Int(1); 10]);
        assert_eq!(l.weight(), 4 + 80);
    }
}
