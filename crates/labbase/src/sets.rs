//! Material sets — the third class of the fixed storage schema
//! (`material_set`, paper Table 1).
//!
//! The lab uses named sets as work queues and query results ("the set of
//! tclones whose sequence matched a BLAST hit"). Sets are first-class
//! persistent objects; the directory mapping names to set objects lives
//! in the catalog segment.

use labflow_storage::{ClusterHint, TxnId};

use crate::db::{LabBase, Rd, SEG_CATALOG};
use crate::error::{LabError, Result};
use crate::ids::MaterialId;
use crate::smrecord::MaterialSetRec;

impl LabBase {
    /// Create an empty material set named `name`.
    pub fn create_set(&self, txn: TxnId, name: &str) -> Result<()> {
        // Lock-first: serialize on the sets directory's storage lock
        // before touching the in-memory latch (see `lock_catalog`).
        self.lock_sets(txn)?;
        {
            let sets = self.sets.read();
            if sets.by_name.contains_key(name) {
                return Err(LabError::DuplicateSet(name.to_string()));
            }
        }
        let rec = MaterialSetRec { name: name.to_string(), members: Vec::new() };
        let oid = self.store.allocate(txn, SEG_CATALOG, ClusterHint::NONE, &rec.encode())?;
        self.sets.write().by_name.insert(name.to_string(), oid);
        if let Err(e) = self.persist_sets_dir(txn) {
            // Failed store write (e.g. wounded): the allocation rolls
            // back with the transaction, so the name must not stay in
            // the shared directory cache pointing at an erased object.
            self.sets.write().by_name.remove(name);
            return Err(e);
        }
        Ok(())
    }

    /// Delete a material set (the materials themselves are unaffected).
    pub fn drop_set(&self, txn: TxnId, name: &str) -> Result<()> {
        self.lock_sets(txn)?;
        let oid = {
            let mut sets = self.sets.write();
            sets.by_name.remove(name).ok_or_else(|| LabError::UnknownSet(name.to_string()))?
        };
        if let Err(e) = self.store.free(txn, oid).map_err(LabError::from).and_then(|()| {
            self.persist_sets_dir(txn)
        }) {
            // Failed store write: the free rolls back with the
            // transaction, so the directory cache keeps the set.
            self.sets.write().by_name.insert(name.to_string(), oid);
            return Err(e);
        }
        Ok(())
    }

    fn set_oid(&self, name: &str) -> Result<labflow_storage::Oid> {
        self.sets
            .read()
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| LabError::UnknownSet(name.to_string()))
    }

    /// Append `mat` to the set (duplicates are ignored).
    pub fn add_to_set(&self, txn: TxnId, name: &str, mat: MaterialId) -> Result<()> {
        let oid = self.set_oid(name)?;
        let mut rec = MaterialSetRec::decode(&self.rd_bytes(Rd::In(txn), oid)?)?;
        if !rec.members.contains(&mat.oid()) {
            rec.members.push(mat.oid());
            self.store.update(txn, oid, &rec.encode())?;
        }
        Ok(())
    }

    /// Append many materials at once (one object rewrite).
    pub fn add_all_to_set(&self, txn: TxnId, name: &str, mats: &[MaterialId]) -> Result<()> {
        let oid = self.set_oid(name)?;
        let mut rec = MaterialSetRec::decode(&self.rd_bytes(Rd::In(txn), oid)?)?;
        let mut changed = false;
        for mat in mats {
            if !rec.members.contains(&mat.oid()) {
                rec.members.push(mat.oid());
                changed = true;
            }
        }
        if changed {
            self.store.update(txn, oid, &rec.encode())?;
        }
        Ok(())
    }

    /// Remove `mat` from the set. Returns `true` if it was a member.
    pub fn remove_from_set(&self, txn: TxnId, name: &str, mat: MaterialId) -> Result<bool> {
        let oid = self.set_oid(name)?;
        let mut rec = MaterialSetRec::decode(&self.rd_bytes(Rd::In(txn), oid)?)?;
        let before = rec.members.len();
        rec.members.retain(|&m| m != mat.oid());
        if rec.members.len() != before {
            self.store.update(txn, oid, &rec.encode())?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// The set's members in insertion order (committed state).
    pub fn set_members(&self, name: &str) -> Result<Vec<MaterialId>> {
        self.set_members_rd(Rd::Latest, name)
    }

    /// The set's members as seen by the open transaction `txn`,
    /// including its own uncommitted additions and removals.
    pub fn set_members_in(&self, txn: TxnId, name: &str) -> Result<Vec<MaterialId>> {
        self.set_members_rd(Rd::In(txn), name)
    }

    pub(crate) fn set_members_rd(&self, rd: Rd, name: &str) -> Result<Vec<MaterialId>> {
        let oid = self.set_oid(name)?;
        let rec = MaterialSetRec::decode(&self.rd_bytes(rd, oid)?)?;
        Ok(rec.members.into_iter().map(MaterialId::from).collect())
    }

    /// Membership test.
    pub fn set_contains(&self, name: &str, mat: MaterialId) -> Result<bool> {
        let oid = self.set_oid(name)?;
        let rec = MaterialSetRec::decode(&self.store.read(oid)?)?;
        Ok(rec.members.contains(&mat.oid()))
    }

    /// All set names, sorted.
    pub fn set_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sets.read().by_name.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::tests::mem_db;
    use crate::db::LabBase;
    use labflow_storage::{MemStore, StorageManager};
    use std::sync::Arc;

    #[test]
    fn set_lifecycle() {
        let db = mem_db();
        let t = db.begin().unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        let b = db.create_material(t, "clone", "b", 0).unwrap();
        db.create_set(t, "queue").unwrap();
        db.add_to_set(t, "queue", a).unwrap();
        db.add_to_set(t, "queue", b).unwrap();
        db.add_to_set(t, "queue", a).unwrap(); // duplicate ignored
        db.commit(t).unwrap();
        assert_eq!(db.set_members("queue").unwrap(), vec![a, b]);
        assert!(db.set_contains("queue", a).unwrap());

        let t = db.begin().unwrap();
        assert!(db.remove_from_set(t, "queue", a).unwrap());
        assert!(!db.remove_from_set(t, "queue", a).unwrap());
        db.commit(t).unwrap();
        assert_eq!(db.set_members("queue").unwrap(), vec![b]);

        let t = db.begin().unwrap();
        db.drop_set(t, "queue").unwrap();
        db.commit(t).unwrap();
        assert!(matches!(db.set_members("queue"), Err(LabError::UnknownSet(_))));
    }

    #[test]
    fn duplicate_and_unknown_sets_rejected() {
        let db = mem_db();
        let t = db.begin().unwrap();
        db.create_set(t, "s").unwrap();
        assert!(matches!(db.create_set(t, "s"), Err(LabError::DuplicateSet(_))));
        assert!(matches!(db.drop_set(t, "nope"), Err(LabError::UnknownSet(_))));
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        assert!(matches!(db.add_to_set(t, "nope", a), Err(LabError::UnknownSet(_))));
        db.commit(t).unwrap();
    }

    #[test]
    fn add_all_is_one_write() {
        let db = mem_db();
        let t = db.begin().unwrap();
        db.create_set(t, "bulk").unwrap();
        let mats: Vec<_> =
            (0..20).map(|i| db.create_material(t, "clone", &format!("c{i}"), 0).unwrap()).collect();
        let before = db.stats().updates;
        db.add_all_to_set(t, "bulk", &mats).unwrap();
        let after = db.stats().updates;
        db.commit(t).unwrap();
        assert_eq!(after - before, 1, "bulk add must rewrite the set once");
        assert_eq!(db.set_members("bulk").unwrap().len(), 20);
    }

    #[test]
    fn sets_survive_reopen() {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        let db = LabBase::create(store.clone()).unwrap();
        let t = db.begin().unwrap();
        db.define_material_class(t, "clone", None).unwrap();
        let a = db.create_material(t, "clone", "a", 0).unwrap();
        db.create_set(t, "persisted").unwrap();
        db.add_to_set(t, "persisted", a).unwrap();
        db.commit(t).unwrap();
        drop(db);
        let db = LabBase::open(store).unwrap();
        assert_eq!(db.set_names(), vec!["persisted"]);
        assert_eq!(db.set_members("persisted").unwrap(), vec![a]);
    }
}
