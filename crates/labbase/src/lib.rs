//! # labbase
//!
//! A Rust reimplementation of **LabBase**, the workflow DBMS of the
//! Whitehead/MIT Center for Genome Research, as specified by the
//! LabFlow-1 benchmark paper (Bonner, Shrufi & Rozen, EDBT 1996).
//!
//! LabBase is the paper's "workflow wrapper" (Architecture C): it runs on
//! top of an object storage manager with a **fixed** three-class storage
//! schema (`sm_step`, `sm_material`, `material_set` — Table 1) and
//! provides, at the user level:
//!
//! * **Event histories** — every workflow step is an immutable event
//!   linked into each involved material's newest-first history list;
//! * **Most-recent views** — a material's current attributes are derived
//!   from its history by *valid time*, served from a per-material cache
//!   (Section 7's "structures for rapid access into history lists");
//! * **Workflow states** — the `state(M, S)` predicate, with an index
//!   that answers "which materials are waiting in state S";
//! * **Dynamic schema evolution** — step classes are versioned data, not
//!   storage schema; redefinition is constant-time and never migrates
//!   old instances;
//! * **Material sets** — named persistent collections used as work
//!   queues and report outputs.
//!
//! All of this works identically over every
//! [`StorageManager`](labflow_storage::StorageManager) backend, which is
//! what lets the LabFlow-1 benchmark compare storage managers while
//! holding the DBMS constant.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use labbase::{LabBase, Value, AttrType, schema::attrs};
//! use labflow_storage::{MemStore, StorageManager};
//!
//! let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
//! let db = LabBase::create(store).unwrap();
//! let t = db.begin().unwrap();
//! db.define_material_class(t, "clone", None).unwrap();
//! db.define_step_class(t, "determine_sequence",
//!     attrs(&[("sequence", AttrType::Dna), ("quality", AttrType::Real)])).unwrap();
//! let m = db.create_material(t, "clone", "clone-001", 0).unwrap();
//! db.record_step(t, "determine_sequence", 10, &[m], vec![
//!     ("sequence".into(), Value::dna("ACGTACGT").unwrap()),
//!     ("quality".into(), Value::Real(0.98)),
//! ]).unwrap();
//! db.commit(t).unwrap();
//!
//! let q = db.recent(m, "quality").unwrap().unwrap();
//! assert_eq!(q.value, Value::Real(0.98));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod db;
pub mod enc;
mod error;
mod history;
mod ids;
mod query;
mod recent;
pub mod schema;
mod session;
pub mod smrecord;
mod sets;
mod state;
mod value;
mod view;

pub use check::IntegrityReport;
pub use db::{LabBase, MaterialInfo, StepInfo, SEG_CATALOG, SEG_HISTORY, SEG_MATERIAL, SEG_STEP};
pub use error::{LabError, Result};
pub use history::HistoryEntry;
pub use ids::{ClassId, MaterialId, StepId, ValidTime};
pub use recent::Recent;
pub use session::Session;
pub use value::{AttrType, Value};
pub use view::View;
