//! The **fixed storage schema** — the paper's Table 1.
//!
//! "In our implementation, the storage manager has a fixed schema. It
//! consists of exactly three classes, `sm_step`, `sm_material`, and
//! `material_set`." Schema evolution at the user level never changes
//! these record shapes; a user-level step class is *data* (a catalog
//! entry), and each `sm_step` instance carries the class version that
//! created it.
//!
//! Two auxiliary record types implement the paper's "structures for
//! rapid access into history lists": [`HistoryNode`] (one link in a
//! material's newest-first event list) and [`RecentRecord`] (the tagged
//! most-recent-value cache, Section 7).

use labflow_storage::Oid;

use crate::enc::{Reader, Writer};
use crate::error::Result;
use crate::ids::{ClassId, ValidTime};
use crate::value::Value;

/// An `sm_material` record: one material instance.
#[derive(Clone, Debug, PartialEq)]
pub struct SmMaterial {
    /// Material class (user schema).
    pub class: ClassId,
    /// External name, e.g. `"clone-000123"`.
    pub name: String,
    /// Valid time of creation.
    pub created: ValidTime,
    /// Current workflow state atom; empty string = no state.
    pub state: String,
    /// Valid time of the last state change.
    pub state_time: ValidTime,
    /// Head of the newest-first history list ([`Oid::NIL`] if empty).
    pub history_head: Oid,
    /// The material's [`RecentRecord`] ([`Oid::NIL`] until first step).
    pub recent: Oid,
    /// Next material in this class's extent list.
    pub ext_next: Oid,
}

impl SmMaterial {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.class.0);
        w.str(&self.name);
        w.i64(self.created);
        w.str(&self.state);
        w.i64(self.state_time);
        w.u64(self.history_head.raw());
        w.u64(self.recent.raw());
        w.u64(self.ext_next.raw());
        w.finish()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Result<SmMaterial> {
        let mut r = Reader::new(data);
        Ok(SmMaterial {
            class: ClassId(r.u32()?),
            name: r.str()?,
            created: r.i64()?,
            state: r.str()?,
            state_time: r.i64()?,
            history_head: Oid::from_raw(r.u64()?),
            recent: Oid::from_raw(r.u64()?),
            ext_next: Oid::from_raw(r.u64()?),
        })
    }
}

/// An `sm_step` record: one step instance (event) in the audit trail.
#[derive(Clone, Debug, PartialEq)]
pub struct SmStep {
    /// Step class (user schema).
    pub class: ClassId,
    /// The class *version* in force when this instance was created.
    pub version: u32,
    /// Valid time of the event.
    pub valid_time: ValidTime,
    /// Materials this step `involves`.
    pub materials: Vec<Oid>,
    /// Result attributes.
    pub attrs: Vec<(String, Value)>,
}

impl SmStep {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.class.0);
        w.u32(self.version);
        w.i64(self.valid_time);
        w.u32(self.materials.len() as u32);
        for m in &self.materials {
            w.u64(m.raw());
        }
        w.u32(self.attrs.len() as u32);
        for (name, value) in &self.attrs {
            w.str(name);
            value.encode(&mut w);
        }
        w.finish()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Result<SmStep> {
        let mut r = Reader::new(data);
        let class = ClassId(r.u32()?);
        let version = r.u32()?;
        let valid_time = r.i64()?;
        let nmat = r.u32()? as usize;
        let mut materials = Vec::with_capacity(nmat);
        for _ in 0..nmat {
            materials.push(Oid::from_raw(r.u64()?));
        }
        let nattr = r.u32()? as usize;
        let mut attrs = Vec::with_capacity(nattr);
        for _ in 0..nattr {
            let name = r.str()?;
            let value = Value::decode(&mut r)?;
            attrs.push((name, value));
        }
        Ok(SmStep { class, version, valid_time, materials, attrs })
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// One link in a material's newest-first history list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryNode {
    /// The step instance this link points at.
    pub step: Oid,
    /// Valid time of that step (duplicated here so list maintenance does
    /// not have to fault in the step payload — the access-structure trick
    /// that keeps hot traffic out of the big cold segment).
    pub valid_time: ValidTime,
    /// Next (older) link, or [`Oid::NIL`].
    pub next: Oid,
}

impl HistoryNode {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.step.raw());
        w.i64(self.valid_time);
        w.u64(self.next.raw());
        w.finish()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Result<HistoryNode> {
        let mut r = Reader::new(data);
        Ok(HistoryNode {
            step: Oid::from_raw(r.u64()?),
            valid_time: r.i64()?,
            next: Oid::from_raw(r.u64()?),
        })
    }
}

/// One tagged most-recent value.
#[derive(Clone, Debug, PartialEq)]
pub struct RecentEntry {
    /// Attribute name.
    pub attr: String,
    /// Valid time of the providing step.
    pub valid_time: ValidTime,
    /// The providing step.
    pub step: Oid,
    /// The value.
    pub value: Value,
}

/// The per-material most-recent cache: attribute name → newest (by valid
/// time) value across the material's history.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecentRecord {
    /// Entries, unordered.
    pub entries: Vec<RecentEntry>,
}

impl RecentRecord {
    /// Look up an entry.
    pub fn get(&self, attr: &str) -> Option<&RecentEntry> {
        self.entries.iter().find(|e| e.attr == attr)
    }

    /// Merge a step's attributes: each attribute wins only if its valid
    /// time is `>=` the cached one (later arrivals with earlier valid
    /// times — out-of-order entry — must not clobber newer values).
    /// Returns `true` if anything changed.
    pub fn absorb(
        &mut self,
        step: Oid,
        valid_time: ValidTime,
        attrs: &[(String, Value)],
    ) -> bool {
        let mut changed = false;
        for (name, value) in attrs {
            match self.entries.iter_mut().find(|e| &e.attr == name) {
                Some(entry) => {
                    if valid_time >= entry.valid_time {
                        entry.valid_time = valid_time;
                        entry.step = step;
                        entry.value = value.clone();
                        changed = true;
                    }
                }
                None => {
                    self.entries.push(RecentEntry {
                        attr: name.clone(),
                        valid_time,
                        step,
                        value: value.clone(),
                    });
                    changed = true;
                }
            }
        }
        changed
    }

    /// Drop every entry provided by `step` (used when a step is
    /// retracted); returns the names of the dropped attributes, which the
    /// caller must recompute from the history.
    pub fn evict_step(&mut self, step: Oid) -> Vec<String> {
        let mut dropped = Vec::new();
        self.entries.retain(|e| {
            if e.step == step {
                dropped.push(e.attr.clone());
                false
            } else {
                true
            }
        });
        dropped
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.str(&e.attr);
            w.i64(e.valid_time);
            w.u64(e.step.raw());
            e.value.encode(&mut w);
        }
        w.finish()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Result<RecentRecord> {
        let mut r = Reader::new(data);
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let attr = r.str()?;
            let valid_time = r.i64()?;
            let step = Oid::from_raw(r.u64()?);
            let value = Value::decode(&mut r)?;
            entries.push(RecentEntry { attr, valid_time, step, value });
        }
        Ok(RecentRecord { entries })
    }
}

/// A `material_set` record: a named collection of materials.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MaterialSetRec {
    /// Set name.
    pub name: String,
    /// Member materials, in insertion order.
    pub members: Vec<Oid>,
}

impl MaterialSetRec {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.name);
        w.u32(self.members.len() as u32);
        for m in &self.members {
            w.u64(m.raw());
        }
        w.finish()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Result<MaterialSetRec> {
        let mut r = Reader::new(data);
        let name = r.str()?;
        let n = r.u32()? as usize;
        let mut members = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            members.push(Oid::from_raw(r.u64()?));
        }
        Ok(MaterialSetRec { name, members })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_material_round_trip() {
        let m = SmMaterial {
            class: ClassId(3),
            name: "clone-000042".into(),
            created: 100,
            state: "waiting_for_sequencing".into(),
            state_time: 250,
            history_head: Oid::from_raw(9),
            recent: Oid::from_raw(10),
            ext_next: Oid::from_raw(11),
        };
        assert_eq!(SmMaterial::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn sm_step_round_trip_and_attr_lookup() {
        let s = SmStep {
            class: ClassId(7),
            version: 3,
            valid_time: 777,
            materials: vec![Oid::from_raw(1), Oid::from_raw(2)],
            attrs: vec![
                ("sequence".into(), Value::dna("ACGTACGT").unwrap()),
                ("quality".into(), Value::Real(0.97)),
            ],
        };
        let d = SmStep::decode(&s.encode()).unwrap();
        assert_eq!(d, s);
        assert_eq!(d.attr("quality"), Some(&Value::Real(0.97)));
        assert_eq!(d.attr("nope"), None);
    }

    #[test]
    fn history_node_round_trip() {
        let n = HistoryNode { step: Oid::from_raw(5), valid_time: -3, next: Oid::NIL };
        assert_eq!(HistoryNode::decode(&n.encode()).unwrap(), n);
    }

    #[test]
    fn recent_absorb_respects_valid_time() {
        let mut rec = RecentRecord::default();
        let s1 = Oid::from_raw(1);
        let s2 = Oid::from_raw(2);
        let s3 = Oid::from_raw(3);
        assert!(rec.absorb(s1, 100, &[("q".into(), Value::Int(1))]));
        // Later valid time wins.
        assert!(rec.absorb(s2, 200, &[("q".into(), Value::Int(2))]));
        assert_eq!(rec.get("q").unwrap().value, Value::Int(2));
        // Out-of-order arrival (earlier valid time) must NOT clobber.
        assert!(!rec.absorb(s3, 150, &[("q".into(), Value::Int(3))]));
        assert_eq!(rec.get("q").unwrap().value, Value::Int(2));
        assert_eq!(rec.get("q").unwrap().step, s2);
        // Equal valid time: newest write wins (>=).
        assert!(rec.absorb(s3, 200, &[("q".into(), Value::Int(4))]));
        assert_eq!(rec.get("q").unwrap().value, Value::Int(4));
    }

    #[test]
    fn recent_evict_step_reports_dropped_attrs() {
        let mut rec = RecentRecord::default();
        let s1 = Oid::from_raw(1);
        let s2 = Oid::from_raw(2);
        rec.absorb(s1, 10, &[("a".into(), Value::Int(1)), ("b".into(), Value::Int(2))]);
        rec.absorb(s2, 20, &[("b".into(), Value::Int(3))]);
        let mut dropped = rec.evict_step(s1);
        dropped.sort();
        assert_eq!(dropped, vec!["a"]);
        assert!(rec.get("a").is_none());
        assert_eq!(rec.get("b").unwrap().value, Value::Int(3));
    }

    #[test]
    fn recent_record_round_trip() {
        let mut rec = RecentRecord::default();
        rec.absorb(
            Oid::from_raw(4),
            9,
            &[("seq".into(), Value::dna("ACGT").unwrap()), ("n".into(), Value::Int(2))],
        );
        assert_eq!(RecentRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn material_set_round_trip() {
        let s = MaterialSetRec {
            name: "blast_hits".into(),
            members: vec![Oid::from_raw(3), Oid::from_raw(1)],
        };
        assert_eq!(MaterialSetRec::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(SmMaterial::decode(&[1]).is_err());
        assert!(SmStep::decode(&[2, 0]).is_err());
        assert!(HistoryNode::decode(&[]).is_err());
        assert!(RecentRecord::decode(&[9, 9, 9]).is_err());
        assert!(MaterialSetRec::decode(&[1, 0]).is_err());
    }
}
