//! Multi-writer session tests: N concurrent sessions against one
//! OStore-profile LabBase, checked for invariants against a
//! single-threaded replay of the same logical work; plus a test that the
//! selective (footprint-based) abort leaves the shared caches in exactly
//! the state a full rebuild would produce.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use labbase::{schema::attrs, AttrType, LabBase, Value};
use labflow_storage::{MemStore, StorageManager};

fn concurrent_db() -> LabBase {
    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    let db = LabBase::create(store).unwrap();
    let t = db.begin().unwrap();
    db.define_material_class(t, "clone", None).unwrap();
    db.define_step_class(
        t,
        "determine_sequence",
        attrs(&[("sequence", AttrType::Dna), ("quality", AttrType::Real)]),
    )
    .unwrap();
    db.commit(t).unwrap();
    db
}

const WRITERS: u64 = 4;
const TXNS_PER_WRITER: u64 = 25;

/// One writer's logical work: each transaction creates a material,
/// records a step against it, and parks it in a state. Returns the
/// number of committed transactions.
fn writer_work(db: &LabBase, writer: u64, retries: &AtomicU64) -> u64 {
    let mut committed = 0;
    for i in 0..TXNS_PER_WRITER {
        // Retry the whole transaction on lock timeouts, like a real
        // client would; the selective abort keeps this cheap.
        loop {
            let mut s = db.session().unwrap();
            let name = format!("w{writer}-c{i}");
            let vt = (writer * TXNS_PER_WRITER + i) as i64;
            let result = s.create_material("clone", &name, vt).and_then(|m| {
                s.record_step(
                    "determine_sequence",
                    vt,
                    &[m],
                    vec![("quality".into(), Value::Real(0.5))],
                )?;
                s.set_state(m, if i % 2 == 0 { "waiting" } else { "done" }, vt)
            });
            match result {
                Ok(()) => {
                    s.commit().unwrap();
                    committed += 1;
                    break;
                }
                Err(_) => {
                    retries.fetch_add(1, Ordering::Relaxed);
                    s.abort().unwrap();
                }
            }
        }
    }
    committed
}

#[test]
fn concurrent_writers_match_single_threaded_replay() {
    // Concurrent run.
    let db = Arc::new(concurrent_db());
    // Warm the indexes so every session updates them incrementally.
    assert_eq!(db.count_in_state("waiting").unwrap(), 0);
    db.find_material("nobody").unwrap();
    let retries = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let db = db.clone();
        let retries = retries.clone();
        handles.push(std::thread::spawn(move || writer_work(&db, w, &retries)));
    }
    let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(committed, WRITERS * TXNS_PER_WRITER);

    // Single-threaded replay of the same logical work.
    let solo = concurrent_db();
    let solo_retries = AtomicU64::new(0);
    for w in 0..WRITERS {
        writer_work(&solo, w, &solo_retries);
    }
    assert_eq!(solo_retries.load(Ordering::Relaxed), 0, "no contention single-threaded");

    // Invariants: same materials, same states, same step counts —
    // regardless of commit interleaving.
    assert_eq!(
        db.count_class("clone", false).unwrap(),
        solo.count_class("clone", false).unwrap()
    );
    assert_eq!(db.state_census().unwrap(), solo.state_census().unwrap());
    assert_eq!(
        db.count_steps_scan("determine_sequence").unwrap(),
        solo.count_steps_scan("determine_sequence").unwrap()
    );
    // Every material is findable by name and carries its step's attr.
    for w in 0..WRITERS {
        for i in 0..TXNS_PER_WRITER {
            let name = format!("w{w}-c{i}");
            let m = db.find_material(&name).unwrap().expect("committed material");
            let recent = db.recent(m, "quality").unwrap().expect("step recorded");
            assert_eq!(recent.value, Value::Real(0.5));
        }
    }
    // The incrementally-maintained index agrees with a cold rebuild over
    // the same store.
    let reopened = LabBase::open(db.store().clone()).unwrap();
    assert_eq!(db.state_census().unwrap(), reopened.state_census().unwrap());
}

#[test]
fn selective_abort_matches_full_rebuild() {
    let db = concurrent_db();
    let mut s = db.session().unwrap();
    let a = s.create_material("clone", "a", 0).unwrap();
    let b = s.create_material("clone", "b", 0).unwrap();
    s.set_state(a, "waiting", 1).unwrap();
    s.set_state(b, "done", 1).unwrap();
    s.commit().unwrap();
    // Warm both indexes.
    assert_eq!(db.count_in_state("waiting").unwrap(), 1);
    db.find_material("a").unwrap().unwrap();

    // A transaction that touches every cache, then aborts selectively.
    let mut s = db.session().unwrap();
    let c = s.create_material("clone", "c", 2).unwrap();
    s.set_state(c, "waiting", 3).unwrap();
    s.set_state(a, "done", 3).unwrap();
    s.set_state(b, "waiting", 3).unwrap();
    s.set_state(b, "failed", 4).unwrap();
    s.define_material_class("gel", None).unwrap();
    s.create_set("queue").unwrap();
    s.abort().unwrap();

    // Reference: a fresh LabBase over the same store rebuilds every
    // cache from storage truth. Selective abort must agree with it.
    let rebuilt = LabBase::open(db.store().clone()).unwrap();
    assert_eq!(db.state_census().unwrap(), rebuilt.state_census().unwrap());
    for state in ["waiting", "done", "failed"] {
        assert_eq!(
            db.in_state(state, usize::MAX).unwrap(),
            rebuilt.in_state(state, usize::MAX).unwrap(),
            "state {state} diverged from rebuild"
        );
    }
    for name in ["a", "b", "c"] {
        assert_eq!(
            db.find_material(name).unwrap(),
            rebuilt.find_material(name).unwrap(),
            "name {name} diverged from rebuild"
        );
    }
    db.with_catalog(|c| assert!(c.material_class("gel").is_err()));
    assert!(db.set_names().is_empty());
    assert_eq!(db.state_of(a).unwrap().as_deref(), Some("waiting"));
    assert_eq!(db.state_of(b).unwrap().as_deref(), Some("done"));
}
