//! Follower-mode behaviour of the LabBase wrapper: read-only gating of
//! local write transactions, and cache refresh after transactions are
//! applied *underneath* the wrapper by the replication pipeline.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use labbase::schema::attrs;
use labbase::{AttrType, LabBase, LabError};
use labflow_storage::{
    decode_shipped, MemStore, OStore, Options, SimVfs, StorageManager, Vfs, WalRecord,
};

fn mem_db() -> LabBase {
    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    let db = LabBase::create(store).unwrap();
    let t = db.begin().unwrap();
    db.define_material_class(t, "clone", None).unwrap();
    db.commit(t).unwrap();
    db
}

/// Read-only mode refuses local write transactions (both the raw
/// transaction API and footprint-tracked sessions) with a typed error,
/// keeps serving reads, and lifts cleanly on promotion.
#[test]
fn read_only_gates_writes_but_not_reads() {
    let db = mem_db();
    let t = db.begin().unwrap();
    let m = db.create_material(t, "clone", "m-1", 5).unwrap();
    db.commit(t).unwrap();

    db.set_read_only(true);
    assert!(db.is_read_only());
    assert!(matches!(db.begin(), Err(LabError::ReadOnly)));
    assert!(matches!(db.session().err(), Some(LabError::ReadOnly)));
    assert_eq!(db.open_sessions(), 0, "refused session must not leak the gauge");

    // Reads are unaffected: views and queries still serve.
    let v = db.view().unwrap();
    assert!(v.material_exists(m));
    assert_eq!(db.find_material("m-1").unwrap(), Some(m));
    drop(v);

    // Promotion lifts the gate.
    db.set_read_only(false);
    let t = db.begin().unwrap();
    db.create_material(t, "clone", "m-2", 6).unwrap();
    db.commit(t).unwrap();
}

/// Ship every committed transaction past `from` from `primary`'s WAL
/// into `follower` — the same minimal pump the replication tests in
/// `labflow-storage` use.
fn ship(
    primary: &dyn StorageManager,
    follower: &dyn StorageManager,
    from: u64,
    pending: &mut HashMap<u64, Vec<WalRecord>>,
) -> u64 {
    let mut at = from;
    loop {
        let chunk = primary.wal_stream_from(at, 1 << 16).unwrap();
        if chunk.is_empty() {
            return at;
        }
        for (_, rec) in decode_shipped(chunk.start, &chunk.bytes).unwrap() {
            match rec {
                WalRecord::Begin(t) => {
                    pending.insert(t, Vec::new());
                }
                WalRecord::Commit(t) => {
                    let recs = pending.remove(&t).unwrap_or_default();
                    follower.replica_apply_commit(&recs).unwrap();
                }
                WalRecord::Abort(t) => {
                    pending.remove(&t);
                }
                WalRecord::Reset(_) => {}
                op => {
                    pending.entry(op.txn()).or_default().push(op);
                }
            }
        }
        at = chunk.end;
    }
}

/// Transactions applied underneath the wrapper (schema changes included)
/// become visible to the follower's LabBase after a cache refresh: the
/// catalog, name index, and state index all reload from storage truth.
#[test]
fn refresh_replica_caches_reveals_shipped_transactions() {
    let sim = SimVfs::new(19);
    let vfs: Arc<dyn Vfs> = Arc::new(sim);
    let pri_store: Arc<dyn StorageManager> =
        Arc::new(OStore::create_with(vfs.clone(), &PathBuf::from("/sim/pri"), Options::default()).unwrap());
    let fol_store: Arc<dyn StorageManager> =
        Arc::new(OStore::create_with(vfs, &PathBuf::from("/sim/fol"), Options::default()).unwrap());

    // Subscribe before the primary's LabBase bootstrap so the follower
    // replays the root/catalog creation too, then open the wrapper over
    // the replicated store.
    let mut from = pri_store.replication_lsn().unwrap();
    let mut pending = HashMap::new();
    let primary = LabBase::create(pri_store.clone()).unwrap();
    let t = primary.begin().unwrap();
    primary.define_material_class(t, "clone", None).unwrap();
    primary
        .define_step_class(t, "assay", attrs(&[("q", AttrType::Real)]))
        .unwrap();
    primary.commit(t).unwrap();

    from = ship(pri_store.as_ref(), fol_store.as_ref(), from, &mut pending);
    let follower = LabBase::open(fol_store.clone()).unwrap();
    follower.set_read_only(true);

    // Warm the follower's caches, then commit more work on the primary.
    assert_eq!(follower.find_material("m-1").unwrap(), None);
    let t = primary.begin().unwrap();
    let m = primary.create_material(t, "clone", "m-1", 9).unwrap();
    primary.set_state(t, m, "queued", 10).unwrap();
    primary.commit(t).unwrap();
    from = ship(pri_store.as_ref(), fol_store.as_ref(), from, &mut pending);
    assert!(pending.is_empty());

    // The storage layer has the new material; the wrapper's caches are
    // stale until refreshed.
    follower.refresh_replica_caches().unwrap();
    assert_eq!(follower.find_material("m-1").unwrap(), Some(m));
    let v = follower.view().unwrap();
    assert!(v.material_exists(m));
    assert_eq!(v.state_of(m).unwrap().as_deref(), Some("queued"));
    assert_eq!(v.material(m).unwrap().class, "clone");
    let _ = from;
}
