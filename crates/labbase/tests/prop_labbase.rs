//! Property-based tests for LabBase's core semantic claims:
//!
//! * the most-recent cache always agrees with a naive derivation from
//!   the history, no matter how out-of-order steps arrive or which
//!   steps are retracted;
//! * histories are always sorted newest-first by valid time;
//! * `as_of` agrees with a naive temporal scan.

use std::sync::Arc;

use proptest::prelude::*;

use labbase::{schema::attrs, AttrType, LabBase, MaterialId, StepId, Value};
use labflow_storage::{MemStore, StorageManager};

const ATTRS: [&str; 3] = ["alpha", "beta", "gamma"];

#[derive(Debug, Clone)]
enum Op {
    /// Record a step for material (index mod count) at the given valid
    /// time with a subset of attributes.
    Record { mat: usize, vt: i64, mask: u8, val: i32 },
    /// Retract the i-th surviving step (modulo).
    Retract { pick: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<usize>(), 0i64..200, 1u8..8, any::<i32>())
            .prop_map(|(mat, vt, mask, val)| Op::Record { mat, vt, mask, val }),
        1 => any::<usize>().prop_map(|pick| Op::Retract { pick }),
    ]
}

/// One recorded event: step id, material, valid time, attrs.
type Event = (StepId, usize, i64, Vec<(String, Value)>);

/// Reference model: a flat event list per material.
#[derive(Default)]
struct Model {
    events: Vec<Event>,
}

impl Model {
    /// Newest-first history of a material (ties: later arrival first,
    /// matching LabBase's insert-before-equals policy with stable sort).
    fn history(&self, mat: usize) -> Vec<(StepId, i64)> {
        let mut h: Vec<(usize, StepId, i64)> = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.1 == mat)
            .map(|(i, e)| (i, e.0, e.2))
            .collect();
        // Sort by valid time desc; among equals, later arrival first.
        h.sort_by(|a, b| b.2.cmp(&a.2).then(b.0.cmp(&a.0)));
        h.into_iter().map(|(_, s, t)| (s, t)).collect()
    }

    fn recent(&self, mat: usize, attr: &str) -> Option<(i64, Value)> {
        self.history(mat)
            .into_iter()
            .find_map(|(step, vt)| {
                let e = self.events.iter().find(|e| e.0 == step).unwrap();
                e.3.iter().find(|(n, _)| n == attr).map(|(_, v)| (vt, v.clone()))
            })
    }

    fn as_of(&self, mat: usize, attr: &str, at: i64) -> Option<(i64, Value)> {
        self.history(mat)
            .into_iter()
            .filter(|(_, vt)| *vt <= at)
            .find_map(|(step, vt)| {
                let e = self.events.iter().find(|e| e.0 == step).unwrap();
                e.3.iter().find(|(n, _)| n == attr).map(|(_, v)| (vt, v.clone()))
            })
    }
}

fn setup(n_mats: usize) -> (LabBase, Vec<MaterialId>) {
    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    let db = LabBase::create(store).unwrap();
    let t = db.begin().unwrap();
    db.define_material_class(t, "clone", None).unwrap();
    db.define_step_class(
        t,
        "measure",
        attrs(&[
            ("alpha", AttrType::Int),
            ("beta", AttrType::Int),
            ("gamma", AttrType::Int),
        ]),
    )
    .unwrap();
    let mats = (0..n_mats)
        .map(|i| db.create_material(t, "clone", &format!("m{i}"), 0).unwrap())
        .collect();
    db.commit(t).unwrap();
    (db, mats)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn recent_and_history_match_naive_model(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        n_mats in 1usize..4,
    ) {
        let (db, mats) = setup(n_mats);
        let mut model = Model::default();

        for op in &ops {
            match op {
                Op::Record { mat, vt, mask, val } => {
                    let mi = mat % n_mats;
                    let mut step_attrs: Vec<(String, Value)> = Vec::new();
                    for (bit, name) in ATTRS.iter().enumerate() {
                        if mask & (1 << bit) != 0 {
                            step_attrs.push((name.to_string(), Value::Int(*val as i64 + bit as i64)));
                        }
                    }
                    let t = db.begin().unwrap();
                    let sid = db
                        .record_step(t, "measure", *vt, &[mats[mi]], step_attrs.clone())
                        .unwrap();
                    db.commit(t).unwrap();
                    model.events.push((sid, mi, *vt, step_attrs));
                }
                Op::Retract { pick } => {
                    if model.events.is_empty() {
                        continue;
                    }
                    let idx = pick % model.events.len();
                    let (sid, _, _, _) = model.events.remove(idx);
                    let t = db.begin().unwrap();
                    db.retract_step(t, sid).unwrap();
                    db.commit(t).unwrap();
                }
            }
        }

        for (mi, &m) in mats.iter().enumerate() {
            // History order and content.
            let got: Vec<(StepId, i64)> =
                db.history(m).unwrap().into_iter().map(|e| (e.step, e.valid_time)).collect();
            let want = model.history(mi);
            // Valid-time ordering must be identical; among equal times the
            // arrival-order tiebreak matches the model's definition.
            prop_assert_eq!(&got, &want, "history mismatch for material {}", mi);

            // Most-recent per attribute: the *value and valid time* must
            // match the derivation (step identity may differ on ties).
            for attr in ATTRS {
                let cached = db.recent(m, attr).unwrap().map(|r| (r.valid_time, r.value));
                let derived = db
                    .recent_uncached(m, attr)
                    .unwrap()
                    .map(|r| (r.valid_time, r.value));
                prop_assert_eq!(&cached, &derived, "cache vs derivation for {}", attr);
                let modeled = model.recent(mi, attr);
                prop_assert_eq!(
                    cached.as_ref().map(|(t, _)| *t),
                    modeled.as_ref().map(|(t, _)| *t),
                    "recent valid-time vs model for {}", attr
                );
            }

            // As-of at a few probe times.
            for at in [0i64, 50, 100, 150, 200] {
                let got = db.as_of(m, "alpha", at).unwrap();
                let want = model.as_of(mi, "alpha", at);
                prop_assert_eq!(
                    got.as_ref().map(|(t, _)| *t),
                    want.as_ref().map(|(t, _)| *t),
                    "as_of({}) valid time", at
                );
            }
        }
    }

    /// Histories are always sorted (weaker invariant, wider op space:
    /// includes multi-material steps).
    #[test]
    fn histories_always_sorted_with_shared_steps(
        steps in proptest::collection::vec((0i64..100, 0u8..3), 1..40)
    ) {
        let (db, mats) = setup(3);
        let t = db.begin().unwrap();
        for (vt, which) in &steps {
            // Involve one, two, or all three materials.
            let involved: Vec<MaterialId> = match which {
                0 => vec![mats[0]],
                1 => vec![mats[0], mats[1]],
                _ => mats.clone(),
            };
            db.record_step(t, "measure", *vt, &involved, vec![("alpha".into(), Value::Int(*vt))])
                .unwrap();
        }
        db.commit(t).unwrap();
        for &m in &mats {
            let h = db.history(m).unwrap();
            for w in h.windows(2) {
                prop_assert!(w[0].valid_time >= w[1].valid_time);
            }
        }
    }

    /// Material sets behave like an order-preserving unique list.
    #[test]
    fn sets_match_model(ops in proptest::collection::vec((any::<bool>(), 0usize..6), 1..40)) {
        let (db, mats) = setup(1);
        let t = db.begin().unwrap();
        // Create a pool of six extra materials to churn through the set.
        let pool: Vec<MaterialId> = (0..6)
            .map(|i| db.create_material(t, "clone", &format!("p{i}"), 0).unwrap())
            .collect();
        db.create_set(t, "s").unwrap();
        let mut model: Vec<MaterialId> = Vec::new();
        for (add, pick) in &ops {
            let m = pool[*pick];
            if *add {
                db.add_to_set(t, "s", m).unwrap();
                if !model.contains(&m) {
                    model.push(m);
                }
            } else {
                let removed = db.remove_from_set(t, "s", m).unwrap();
                prop_assert_eq!(removed, model.contains(&m));
                model.retain(|&x| x != m);
            }
            // Mid-transaction, so read through the txn's own view.
            prop_assert_eq!(&db.set_members_in(t, "s").unwrap(), &model);
        }
        db.commit(t).unwrap();
        prop_assert_eq!(&db.set_members("s").unwrap(), &model);
        let _ = mats;
    }
}
