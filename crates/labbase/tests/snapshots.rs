//! Snapshot-visibility edge cases for the MVCC read path:
//! read-your-own-writes inside a session, all-or-nothing visibility of
//! commits against pinned snapshots, and version GC honouring live
//! snapshot pins.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use labbase::schema::attrs;
use labbase::{AttrType, LabBase, Value};
use labflow_storage::{MemStore, OStore, Options, SimVfs, StorageManager, Vfs};

fn mem_db() -> LabBase {
    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    seed_schema(LabBase::create(store).unwrap())
}

/// A full disk-backed engine on the simulated VFS, so checkpoints run
/// the real version-GC path.
fn engine_db() -> LabBase {
    let sim = SimVfs::new(7);
    let dir = PathBuf::from("/sim/snapshots");
    let store: Arc<dyn StorageManager> = Arc::new(
        OStore::create_with(Arc::new(sim) as Arc<dyn Vfs>, &dir, Options::default()).unwrap(),
    );
    seed_schema(LabBase::create(store).unwrap())
}

fn seed_schema(db: LabBase) -> LabBase {
    let t = db.begin().unwrap();
    db.define_material_class(t, "clone", None).unwrap();
    db.define_step_class(
        t,
        "determine_sequence",
        attrs(&[("sequence", AttrType::Dna), ("quality", AttrType::Real)]),
    )
    .unwrap();
    db.commit(t).unwrap();
    db
}

fn q(v: f64) -> Vec<(String, Value)> {
    vec![("quality".into(), Value::Real(v))]
}

/// A session reads its own uncommitted writes through its transaction
/// view, while its pinned snapshot (and other readers) see none of them.
#[test]
fn session_reads_its_own_writes() {
    let db = mem_db();
    let mut s = db.session().unwrap();
    let m = s.create_material("clone", "m", 0).unwrap();
    s.record_step("determine_sequence", 10, &[m], q(0.5)).unwrap();
    s.set_state(m, "queued", 11).unwrap();

    // Own-writes path: everything the session did is visible to it.
    assert!(s.material_exists(m));
    assert_eq!(s.history(m).unwrap().len(), 1);
    assert_eq!(s.recent(m, "quality").unwrap().unwrap().value, Value::Real(0.5));
    assert_eq!(s.state_of(m).unwrap().as_deref(), Some("queued"));

    // The session's begin snapshot predates all of it. The view borrows
    // the session, so it must be gone before commit/abort can release
    // the snapshot pin — the borrow checker enforces it.
    let view = s.view().unwrap();
    assert!(!view.material_exists(m));
    drop(view);

    // And committed-state readers see nothing until commit.
    assert!(!db.material_exists(m));
    s.commit().unwrap();
    assert!(db.material_exists(m));
    assert_eq!(db.recent(m, "quality").unwrap().unwrap().value, Value::Real(0.5));
}

/// A snapshot opened while a multi-object commit races sees the whole
/// transaction or none of it — never a torn cut. The writer records
/// steps touching two materials per transaction; every reader snapshot
/// must see both materials' `quality` values equal.
#[test]
fn snapshots_are_all_or_nothing_against_racing_commits() {
    let db = Arc::new(mem_db());
    let t = db.begin().unwrap();
    let a = db.create_material(t, "clone", "a", 0).unwrap();
    let b = db.create_material(t, "clone", "b", 0).unwrap();
    db.record_step(t, "determine_sequence", 0, &[a, b], q(0.0)).unwrap();
    db.commit(t).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let writer = {
            let db = db.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                // Each commit bumps both materials' quality to the same
                // value in one transaction.
                for round in 1..=400u32 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let t = db.begin().unwrap();
                    db.record_step(
                        t,
                        "determine_sequence",
                        round as i64,
                        &[a, b],
                        q(round as f64),
                    )
                    .unwrap();
                    db.commit(t).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let db = db.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut observed = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let view = db.view().unwrap();
                        let qa = view.recent(a, "quality").unwrap().unwrap();
                        let qb = view.recent(b, "quality").unwrap().unwrap();
                        assert_eq!(
                            qa.value, qb.value,
                            "snapshot saw a torn multi-object commit"
                        );
                        assert_eq!(qa.valid_time, qb.valid_time);
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    });

    // Final state: both at the writer's last round.
    let view = db.view().unwrap();
    assert_eq!(view.recent(a, "quality").unwrap().unwrap().value, Value::Real(400.0));
    assert_eq!(view.recent(b, "quality").unwrap().unwrap().value, Value::Real(400.0));
}

/// Version GC (run at checkpoint) must never reclaim versions a live
/// snapshot still pins: after many overwriting commits and checkpoints,
/// an old view still reads its original cut.
#[test]
fn gc_never_reclaims_pinned_versions() {
    let db = engine_db();
    let t = db.begin().unwrap();
    let m = db.create_material(t, "clone", "m", 0).unwrap();
    db.record_step(t, "determine_sequence", 1, &[m], q(1.0)).unwrap();
    db.commit(t).unwrap();

    let pinned = db.view().unwrap();
    let pinned_lsn = pinned.lsn().unwrap();

    // Many overwriting commits, with checkpoints (= version GC) mixed in.
    for round in 2..=40i64 {
        let t = db.begin().unwrap();
        db.record_step(t, "determine_sequence", round, &[m], q(round as f64)).unwrap();
        db.commit(t).unwrap();
        if round % 5 == 0 {
            db.checkpoint().unwrap();
        }
    }

    // The pinned view still reads the original versions.
    assert_eq!(pinned.recent(m, "quality").unwrap().unwrap().value, Value::Real(1.0));
    assert_eq!(pinned.history(m).unwrap().len(), 1);
    assert_eq!(pinned.lsn().unwrap(), pinned_lsn);

    // A fresh view (with a strictly newer LSN — staleness is observable)
    // sees the final state.
    let fresh = db.view().unwrap();
    assert!(fresh.lsn().unwrap() > pinned_lsn);
    assert_eq!(fresh.recent(m, "quality").unwrap().unwrap().value, Value::Real(40.0));
    assert_eq!(fresh.history(m).unwrap().len(), 40);

    // Once the pin is dropped, GC may advance; subsequent reads of the
    // latest state still work.
    drop(pinned);
    db.checkpoint().unwrap();
    assert_eq!(db.recent(m, "quality").unwrap().unwrap().value, Value::Real(40.0));
}
