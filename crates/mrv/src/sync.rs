//! The crate's synchronization facade.
//!
//! Normal builds re-export the real primitives (`std::sync::atomic`,
//! `parking_lot::Mutex`) and compile the heap hooks to no-ops. Under
//! `--cfg labflow_model` every atomic, the internal mutex, and every
//! `Box::into_raw`/`Box::from_raw` transition instead route through
//! `labflow-modelcheck`, whose cooperative scheduler and DFS explorer
//! enumerate the interleavings of the epoch-reclamation protocol (see
//! `tests/model.rs` and `cargo xtask modelcheck`).
//!
//! Everything protocol-relevant in `lib.rs` must come through here —
//! that is the invariant that makes the model faithful. The only
//! deliberate exception is `NEXT_TABLE_ID`, a process-global ID counter
//! with no cross-thread protocol role, which stays on `std` by full
//! path so each model execution still gets globally fresh table IDs.

#[cfg(not(labflow_model))]
pub(crate) mod atomic {
    pub(crate) use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
}
#[cfg(labflow_model)]
pub(crate) mod atomic {
    pub(crate) use labflow_modelcheck::atomic::{AtomicPtr, AtomicU64, Ordering};
}

#[cfg(not(labflow_model))]
pub(crate) use parking_lot::Mutex;
#[cfg(labflow_model)]
pub(crate) use labflow_modelcheck::sync::Mutex;

/// Allocation-lifecycle hooks for the model's heap tracker. In normal
/// builds these are no-ops the optimiser deletes; under the model they
/// turn reclamation mistakes (double free, freeing under a live
/// [`crate::ReadGuard`], leaking a displaced value) into reported
/// violations with the interleaving that caused them.
pub(crate) mod heap {
    #[cfg(labflow_model)]
    pub(crate) use labflow_modelcheck::heap::{on_alloc, on_free, release, retain};

    /// A `Box` became a raw pointer owned by the table.
    #[cfg(not(labflow_model))]
    pub(crate) fn on_alloc(_addr: usize) {}

    /// A raw pointer is about to be freed; false means the model
    /// confiscated it as violation evidence and the caller must skip
    /// the real drop.
    #[cfg(not(labflow_model))]
    #[must_use]
    pub(crate) fn on_free(_addr: usize) -> bool {
        true
    }

    /// A [`crate::ReadGuard`] now references the allocation.
    #[cfg(not(labflow_model))]
    pub(crate) fn retain(_addr: usize) {}

    /// A [`crate::ReadGuard`] dropped its reference. Only the model
    /// build has a call site (the guard's cfg'd `Drop`); the no-op
    /// keeps the facade's surface identical across both builds.
    #[cfg(not(labflow_model))]
    #[allow(dead_code)]
    pub(crate) fn release(_addr: usize) {}
}
