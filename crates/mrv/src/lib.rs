//! A lock-free *most-recent view*: per-index published values readable
//! with zero locks, plus epoch-based reclamation for displaced values.
//!
//! This crate exists so `labflow-storage` can keep its
//! `#![forbid(unsafe_code)]` guarantee: the storage heap mirrors each
//! object's committed version chain into an [`Mrv`] slot, and
//! committed-state readers resolve chains through [`Mrv::get`] without
//! touching any heap lock. All `unsafe` in the workspace lives here,
//! behind a safe API, with the safety argument written out below.
//!
//! # Structure
//!
//! Values are indexed by a dense `u64` key (the storage heap uses oids,
//! which are allocated sequentially). Slots live in a two-level array:
//! level `k` is a lazily-installed chunk of `L0 << k` [`AtomicPtr`]
//! slots, so the table grows without ever moving an existing slot —
//! readers never chase a resize.
//!
//! # The epoch rule
//!
//! * A reader *pins* before loading a slot and unpins when its
//!   [`ReadGuard`] drops. Pinning stores the current epoch into the
//!   thread's reader slot (publish-and-recheck, so a concurrent epoch
//!   advance never misses a pin).
//! * A writer publishing over an old value *retires* the displaced
//!   pointer, stamped with the epoch read **after** the swap.
//! * A retired value stamped `e` is freed only once every active reader
//!   slot holds an epoch **strictly greater** than `e`.
//!
//! Why that is sound: suppose a reader still holds a reference to a
//! value retired at stamp `e`. The reader's load happened before the
//! swap that displaced the value, and its pin-store happened before the
//! load, so at pin time the global epoch was at most `e` (the stamp is
//! read after the swap and the epoch is monotone). While the reader
//! remains pinned its slot keeps that value, so `min_active ≤ e` and
//! the `e < min_active` test fails — the value survives. The scan and
//! the retire-list mutation are serialised by the same internal mutex,
//! so a retire cannot slip between a scan and the frees it justifies.
//! A reader that has unpinned holds no reference, by the [`ReadGuard`]
//! lifetime.
//!
//! Reclamation never blocks on readers: [`Mrv::publish`] frees aged
//! garbage opportunistically past a high-water mark, and
//! [`Mrv::sync_reclaim`] can be called at quiescent points (the storage
//! engine's checkpoint GC) to advance the epoch and sweep again.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod sync;

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Deref;
use std::ptr;
use std::sync::Arc;

use crate::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use crate::sync::{heap, Mutex};

/// Slot count of level 0; level `k` holds `L0 << k` slots, so the level
/// owning index `i` is `ilog2(i / L0 + 1)` and [`LEVELS`] levels cover
/// far more indexes than any caller can allocate. (Model builds shrink
/// both so whole-table walks stay explorable.)
#[cfg(not(labflow_model))]
const L0: u64 = 1 << 12;
#[cfg(labflow_model)]
const L0: u64 = 4;
/// Number of lazily-installed levels.
#[cfg(not(labflow_model))]
const LEVELS: usize = 40;
#[cfg(labflow_model)]
const LEVELS: usize = 8;

/// Free aged retired values once this many have accumulated, so
/// garbage between explicit [`Mrv::sync_reclaim`] calls stays bounded
/// without ever waiting on readers.
const RETIRED_HIGH_WATER: usize = 512;

/// Reader-slot value meaning "not inside any read-side critical
/// section".
const IDLE: u64 = u64::MAX;

/// Distinguishes tables in the per-thread reader-slot cache. Stays on
/// `std` even in model builds (see `sync`): it has no protocol role,
/// and being process-global it keeps table IDs unique across model
/// executions so no execution ever hits a stale cache entry.
static NEXT_TABLE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

thread_local! {
    /// This thread's reader slot, one per table it has read from. The
    /// slot itself lives in the table's registry (an `Arc`); the cache
    /// just avoids re-locking the registry on every read.
    static READER_SLOTS: RefCell<HashMap<u64, Arc<AtomicU64>>> =
        RefCell::new(HashMap::new());
}

/// One lazily-installed level of slots. Installed by the first publish
/// that needs it; freed only when the table drops.
struct Chunk<T> {
    slots: Box<[AtomicPtr<T>]>,
}

/// A displaced value awaiting reclamation: freeable once every active
/// reader pin is strictly newer than `epoch`.
struct Retired<T> {
    epoch: u64,
    ptr: *mut T,
}

// Safety: the pointer originates from `Box::into_raw` and is only ever
// dereferenced to free it, under the epoch rule above.
unsafe impl<T: Send> Send for Retired<T> {}

/// Registry + retire list behind the table's one internal mutex. The
/// mutex is a leaf: nothing else is ever acquired while it is held, so
/// callers may hold arbitrary locks of their own around [`Mrv::publish`].
struct Inner<T> {
    /// Every reader slot registered by a thread that has read this
    /// table. Slots of exited threads stay behind parked at [`IDLE`],
    /// which reclamation treats as "not reading" — a small, harmless
    /// leak.
    slots: Vec<Arc<AtomicU64>>,
    retired: Vec<Retired<T>>,
}

/// A lock-free most-recent-view table. See the crate docs.
pub struct Mrv<T> {
    levels: [AtomicPtr<Chunk<T>>; LEVELS],
    /// The reclamation epoch: advanced by reclamation sweeps.
    epoch: AtomicU64,
    inner: Mutex<Inner<T>>,
    /// Identity in the per-thread reader-slot cache.
    table_id: u64,
}

// Safety: `levels` only hands out `&T` (readers) or transfers whole
// boxes (writers/reclaim) under the epoch rule; `inner` is behind a
// mutex. `T: Send` lets reclamation free values on any thread,
// `T: Sync` lets `get` share `&T` across threads.
unsafe impl<T: Send + Sync> Send for Mrv<T> {}
unsafe impl<T: Send + Sync> Sync for Mrv<T> {}

/// Shared read access to a published value. While alive, the value (and
/// every other value loaded through the same guard's pin window) cannot
/// be freed by a concurrent publish. Dropping unpins.
pub struct ReadGuard<'t, T> {
    value: &'t T,
    /// Model builds remember the raw allocation so the heap tracker can
    /// pair this guard's retain with its release.
    #[cfg(labflow_model)]
    raw: usize,
    _pin: PinGuard,
}

impl<T> Deref for ReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value
    }
}

#[cfg(labflow_model)]
impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        // Release before `_pin` drops: the value must still be covered
        // by the pin at release time, like the reference it tracks.
        heap::release(self.raw);
    }
}

/// Restores the reader slot on drop; nested pins compose by restoring
/// the previous value.
struct PinGuard {
    slot: Arc<AtomicU64>,
    prev: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.slot.store(self.prev, Ordering::SeqCst);
    }
}

impl<T: Send + Sync> Default for Mrv<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync> Mrv<T> {
    /// An empty table.
    pub fn new() -> Self {
        Mrv {
            levels: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            epoch: AtomicU64::new(0),
            inner: Mutex::new(Inner { slots: Vec::new(), retired: Vec::new() }),
            table_id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// `(level, slot)` for an index. Level `k` starts at
    /// `L0 * (2^k - 1)` and holds `L0 << k` slots.
    fn locate(idx: u64) -> (usize, usize) {
        let q = idx / L0 + 1;
        let level = (63 - q.leading_zeros()) as usize;
        let start = L0 * ((1u64 << level) - 1);
        (level, (idx - start) as usize)
    }

    /// The chunk for `level`, if some publish has installed it. Levels
    /// past [`LEVELS`] (indexes no caller can realistically allocate)
    /// read as absent.
    fn chunk(&self, level: usize) -> Option<&Chunk<T>> {
        let p = self.levels.get(level)?.load(Ordering::SeqCst) as *const Chunk<T>;
        // Safety: chunks are installed once and freed only on drop,
        // which takes `&mut self` — no reader or writer can be live.
        unsafe { p.as_ref() }
    }

    /// The chunk for `level`, installing it if absent (the loser of a
    /// racing install frees its allocation).
    fn ensure_chunk(&self, level: usize) -> &Chunk<T> {
        assert!(level < LEVELS, "index beyond the view table's capacity");
        if let Some(c) = self.chunk(level) {
            return c;
        }
        let cap = (L0 << level) as usize;
        let slots: Box<[AtomicPtr<T>]> = (0..cap).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        let fresh = Box::into_raw(Box::new(Chunk { slots }));
        heap::on_alloc(fresh as usize);
        // analyzer: allow(index, "level < LEVELS asserted above")
        match self.levels[level].compare_exchange(
            ptr::null_mut(),
            fresh,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            // Safety: just created from `Box::into_raw`, now owned by
            // the table.
            Ok(_) => unsafe { &*fresh },
            Err(existing) => {
                if heap::on_free(fresh as usize) {
                    // Safety: `fresh` never escaped; reclaim it.
                    unsafe { drop(Box::from_raw(fresh)) };
                }
                // Safety: non-null pointers in `levels` are valid until
                // drop.
                unsafe { &*existing }
            }
        }
    }

    /// Pin the reclamation epoch for the calling thread. The fast path
    /// is two atomic stores on a thread-cached slot; the registry mutex
    /// is touched only on a thread's first read of this table.
    fn pin(&self) -> PinGuard {
        let slot = READER_SLOTS.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(s) = m.get(&self.table_id) {
                return s.clone();
            }
            let s = Arc::new(AtomicU64::new(IDLE));
            self.inner.lock().slots.push(s.clone());
            m.insert(self.table_id, s.clone());
            s
        });
        // analyzer: allow(ordering, "own-slot read: only this thread stores non-IDLE values here, and the publish loop below re-syncs with the epoch at SeqCst")
        let prev = slot.load(Ordering::Relaxed);
        if prev == IDLE {
            // Publish-and-recheck: if a reclaimer advanced the epoch
            // between our load and our store it may not have seen the
            // pin — retry against the new epoch so its scan never
            // misses us.
            loop {
                let e = self.epoch.load(Ordering::SeqCst);
                slot.store(e, Ordering::SeqCst);
                if self.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        PinGuard { slot, prev }
    }

    /// The currently published value for `idx`, or `None`. Acquires no
    /// lock on any path a prior `get` or `publish` has warmed (the
    /// thread's first read of a table registers its reader slot under
    /// the internal mutex, once).
    pub fn get(&self, idx: u64) -> Option<ReadGuard<'_, T>> {
        let pin = self.pin();
        let (level, i) = Self::locate(idx);
        let p = self.chunk(level)?.slots.get(i)?.load(Ordering::SeqCst) as *const T;
        // Safety: non-null slot pointers come from `Box::into_raw` in
        // `publish` and are freed only by reclamation, which (per the
        // epoch rule in the crate docs) cannot run for this value while
        // `pin` is alive — the guard carries the pin, so the reference
        // cannot outlive it.
        let value = unsafe { p.as_ref()? };
        heap::retain(p as usize);
        Some(ReadGuard {
            value,
            #[cfg(labflow_model)]
            raw: p as usize,
            _pin: pin,
        })
    }

    /// Publish `value` at `idx` (or clear the slot with `None`),
    /// retiring whatever it displaces. Frees aged garbage past the
    /// high-water mark — without ever blocking on readers.
    ///
    /// Publishes to the same index must be externally serialised if
    /// their order matters (the storage heap publishes inside the
    /// table-shard critical section that mutates the authoritative
    /// chain); the swap itself only orders against readers.
    pub fn publish(&self, idx: u64, value: Option<Box<T>>) {
        let (level, i) = Self::locate(idx);
        let new = value.map_or(ptr::null_mut(), Box::into_raw);
        if !new.is_null() {
            heap::on_alloc(new as usize);
        }
        let old = if new.is_null() {
            // Clearing an index no chunk covers would allocate the
            // chunk just to store "absent" — skip it.
            match self.chunk(level) {
                // analyzer: allow(index, "locate() bounds i within the level's chunk")
                Some(c) => c.slots[i].swap(new, Ordering::SeqCst),
                None => ptr::null_mut(),
            }
        } else {
            // analyzer: allow(index, "locate() bounds i within the level's chunk")
            self.ensure_chunk(level).slots[i].swap(new, Ordering::SeqCst)
        };
        if old.is_null() {
            return;
        }
        // Stamped after the swap: any reader that could still hold
        // `old` is pinned at or before this epoch value.
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut inner = self.inner.lock();
        inner.retired.push(Retired { epoch, ptr: old });
        if inner.retired.len() >= RETIRED_HIGH_WATER {
            Self::reclaim(&self.epoch, &mut inner);
        }
    }

    /// Clear every published slot, retiring the displaced values (the
    /// storage engine uses this when a checkpoint load replaces the
    /// whole world).
    pub fn clear_all(&self) {
        let mut displaced = Vec::new();
        for l in &self.levels {
            let p = l.load(Ordering::SeqCst) as *const Chunk<T>;
            // Safety: chunk pointers are valid until drop (see `chunk`).
            let Some(chunk) = (unsafe { p.as_ref() }) else { continue };
            for s in chunk.slots.iter() {
                let old = s.swap(ptr::null_mut(), Ordering::SeqCst);
                if !old.is_null() {
                    displaced.push(old);
                }
            }
        }
        if displaced.is_empty() {
            return;
        }
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut inner = self.inner.lock();
        inner.retired.extend(displaced.into_iter().map(|ptr| Retired { epoch, ptr }));
        if inner.retired.len() >= RETIRED_HIGH_WATER {
            Self::reclaim(&self.epoch, &mut inner);
        }
    }

    /// Advance the epoch and free every retired value no reader can
    /// still reference. Never blocks on readers; values pinned by a
    /// live guard survive to a later sweep.
    pub fn sync_reclaim(&self) {
        let mut inner = self.inner.lock();
        Self::reclaim(&self.epoch, &mut inner);
    }

    /// Free retired values whose stamp is strictly below every active
    /// reader pin. Advances the epoch first so survivors age out of
    /// reach of new pins and a later sweep can free them.
    fn reclaim(epoch: &AtomicU64, inner: &mut Inner<T>) {
        epoch.fetch_add(1, Ordering::SeqCst);
        let min_active = inner
            .slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .filter(|&v| v != IDLE)
            .min()
            .unwrap_or(u64::MAX);
        inner.retired.retain(|r| {
            if r.epoch < min_active {
                if heap::on_free(r.ptr as usize) {
                    // Safety: see the epoch rule in the crate docs — no
                    // reader pinned at ≤ `r.epoch` remains, and the value
                    // left its slot at retirement, so nothing can reach it.
                    unsafe { drop(Box::from_raw(r.ptr)) };
                }
                false
            } else {
                true
            }
        });
    }

    /// Number of retired values awaiting reclamation (diagnostics).
    pub fn retired_len(&self) -> usize {
        self.inner.lock().retired.len()
    }
}

impl<T> Drop for Mrv<T> {
    fn drop(&mut self) {
        // `&mut self`: no reader guard or concurrent publish can exist,
        // so plain (`get_mut`) access is sound and keeps the teardown
        // walk out of the model's schedule.
        for r in self.inner.get_mut().retired.drain(..) {
            if heap::on_free(r.ptr as usize) {
                // Safety: retired pointers are owned by the table and
                // not reachable from any slot.
                unsafe { drop(Box::from_raw(r.ptr)) };
            }
        }
        for l in &mut self.levels {
            let p = *l.get_mut();
            if p.is_null() || !heap::on_free(p as usize) {
                continue;
            }
            // Safety: installed by `ensure_chunk` via `Box::into_raw`,
            // owned by the table.
            let mut chunk = unsafe { Box::from_raw(p) };
            for s in chunk.slots.iter_mut() {
                let vp = *s.get_mut();
                if !vp.is_null() && heap::on_free(vp as usize) {
                    // Safety: published values are owned by their slot.
                    unsafe { drop(Box::from_raw(vp)) };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn locate_levels_and_boundaries() {
        assert_eq!(Mrv::<u64>::locate(0), (0, 0));
        assert_eq!(Mrv::<u64>::locate(L0 - 1), (0, (L0 - 1) as usize));
        assert_eq!(Mrv::<u64>::locate(L0), (1, 0));
        assert_eq!(Mrv::<u64>::locate(3 * L0 - 1), (1, (2 * L0 - 1) as usize));
        assert_eq!(Mrv::<u64>::locate(3 * L0), (2, 0));
        // Every index maps inside its level's capacity.
        for idx in [0, 1, L0, 2 * L0, 7 * L0 + 3, 1 << 30] {
            let (level, slot) = Mrv::<u64>::locate(idx);
            assert!(slot < (L0 << level) as usize, "idx {idx}");
        }
    }

    #[test]
    fn publish_get_clear_roundtrip() {
        let t: Mrv<Vec<u64>> = Mrv::new();
        assert!(t.get(7).is_none());
        t.publish(7, Some(Box::new(vec![1, 2, 3])));
        assert_eq!(*t.get(7).unwrap(), vec![1, 2, 3]);
        t.publish(7, Some(Box::new(vec![4])));
        assert_eq!(*t.get(7).unwrap(), vec![4]);
        t.publish(7, None);
        assert!(t.get(7).is_none());
        // Clearing an untouched index must not allocate its chunk.
        t.publish(u64::MAX / 4, None);
        // A far index lands in a high level without disturbing low ones.
        t.publish(5 * L0 + 11, Some(Box::new(vec![9])));
        assert_eq!(*t.get(5 * L0 + 11).unwrap(), vec![9]);
        assert!(t.get(7).is_none());
    }

    #[test]
    fn a_live_guard_keeps_its_value_across_reclamation() {
        let t: Mrv<Vec<u64>> = Mrv::new();
        t.publish(1, Some(Box::new(vec![42; 8])));
        let guard = t.get(1).unwrap();
        // Churn well past the high-water mark so reclamation runs many
        // times while the guard is live.
        for i in 0..(RETIRED_HIGH_WATER as u64 * 4) {
            t.publish(1, Some(Box::new(vec![i; 8])));
        }
        // The pinned snapshot is still intact (a use-after-free here
        // would show up as torn contents under ASan/Miri and very
        // likely as a wrong value even without them).
        assert_eq!(*guard, vec![42; 8]);
        drop(guard);
        // Once unpinned, a sweep drains everything.
        t.sync_reclaim();
        assert_eq!(t.retired_len(), 0);
        assert_eq!(*t.get(1).unwrap(), vec![RETIRED_HIGH_WATER as u64 * 4 - 1; 8]);
    }

    #[test]
    fn reclamation_stays_bounded_without_readers() {
        let t: Mrv<u64> = Mrv::new();
        for i in 0..10_000u64 {
            t.publish(i % 64, Some(Box::new(i)));
        }
        // The high-water sweeps kept the backlog bounded.
        assert!(t.retired_len() < RETIRED_HIGH_WATER, "retired: {}", t.retired_len());
    }

    #[test]
    fn concurrent_readers_always_see_consistent_values() {
        // Writers publish vectors whose elements all equal the round;
        // a torn or freed read would break the all-equal invariant.
        let t: Mrv<Vec<u64>> = Mrv::new();
        const IDXS: u64 = 8;
        for i in 0..IDXS {
            t.publish(i, Some(Box::new(vec![0; 32])));
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let (t, stop) = (&t, &stop);
                s.spawn(move || {
                    let mut round = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        t.publish((round + w) % IDXS, Some(Box::new(vec![round; 32])));
                        round += 1;
                    }
                });
            }
            for _ in 0..2 {
                let (t, stop) = (&t, &stop);
                s.spawn(move || {
                    for n in 0..200_000u64 {
                        if let Some(g) = t.get(n % IDXS) {
                            let first = g[0];
                            assert!(g.iter().all(|&v| v == first), "torn read");
                        }
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
    }
}
