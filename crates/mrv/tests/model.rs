//! Exhaustive interleaving exploration of the MRV's lock-free core,
//! via `labflow-modelcheck`. Compiled only under `--cfg labflow_model`
//! (the `cargo xtask modelcheck` entry point sets it and routes every
//! atomic, the internal mutex, and every raw-pointer transition in
//! `labflow-mrv` through the model runtime).
//!
//! Each scenario explores *every* interleaving within the preemption
//! bound and asserts zero violations: no use-after-reclaim, no double
//! free, no leak, no deadlock, and no scenario assertion failure in any
//! schedule. Relaxed loads additionally explore stale-value visibility
//! (the pin fast path's `prev` load is the one Relaxed access in the
//! protocol).

#![cfg(labflow_model)]

use std::sync::Arc;

use labflow_modelcheck::{thread, Builder};
use labflow_mrv::Mrv;

/// A reader pinning and loading a slot while a writer publishes over
/// it: the reader sees the old value or the new one, never a torn,
/// freed, or absent state.
#[test]
fn pin_vs_publish() {
    let report = Builder::new()
        .preemptions(2)
        .check(|| {
            let t = Arc::new(Mrv::<u64>::new());
            t.publish(0, Some(Box::new(1)));
            let t2 = t.clone();
            let w = thread::spawn(move || t2.publish(0, Some(Box::new(2))));
            let got = t.get(0).map(|g| *g);
            assert!(got == Some(1) || got == Some(2), "reader saw {got:?}");
            w.join();
        })
        .assert_ok();
    println!("pin-vs-publish: {} interleavings, exhaustive, zero violations", report.executions);
}

/// Two writers racing publishes on the same slot: exactly one value
/// wins, both displaced values are retired exactly once, and a sweep
/// plus drop reclaims everything (the model's leak check proves it).
#[test]
fn concurrent_publish_same_slot() {
    let report = Builder::new()
        .preemptions(2)
        .check(|| {
            let t = Arc::new(Mrv::<u64>::new());
            t.publish(0, Some(Box::new(1)));
            let t2 = t.clone();
            let w = thread::spawn(move || t2.publish(0, Some(Box::new(10))));
            t.publish(0, Some(Box::new(20)));
            w.join();
            let got = t.get(0).map(|g| *g);
            assert!(got == Some(10) || got == Some(20), "winner was {got:?}");
            t.sync_reclaim();
        })
        .assert_ok();
    println!(
        "concurrent-publish-same-slot: {} interleavings, exhaustive, zero violations",
        report.executions
    );
}

/// The heart of the epoch rule: a writer retires the reader's value and
/// sweeps while the reader's guard is still live (the reader performs
/// table work mid-guard, so the sweep really does run inside the guard
/// window in some schedules). The pinned value must survive every such
/// schedule — a stamp or scan bug here is exactly what the runtime's
/// use-after-reclaim detector reports.
#[test]
fn reclaim_vs_active_guard() {
    let report = Builder::new()
        .preemptions(2)
        .check(|| {
            let t = Arc::new(Mrv::<u64>::new());
            t.publish(0, Some(Box::new(1)));
            let t2 = t.clone();
            let w = thread::spawn(move || {
                t2.publish(0, Some(Box::new(2)));
                t2.sync_reclaim();
            });
            let g = t.get(0).expect("slot 0 is never cleared in this scenario");
            // Guard-held table work: a scheduling window in which the
            // writer's retire + sweep can run while we hold the value.
            let backlog = t.retired_len();
            assert!(backlog <= 1, "at most one displaced value exists");
            assert!(*g == 1 || *g == 2, "guard saw {}", *g);
            w.join();
            drop(g);
        })
        .assert_ok();
    println!(
        "reclaim-vs-active-guard: {} interleavings, exhaustive, zero violations",
        report.executions
    );
}

/// `clear_all` sweeping the whole table while a reader holds a guard on
/// one of the cleared values: the displaced value is retired, not
/// freed, until the guard unpins.
#[test]
fn clear_all_vs_reader() {
    let report = Builder::new()
        .preemptions(2)
        .check(|| {
            let t = Arc::new(Mrv::<u64>::new());
            t.publish(0, Some(Box::new(7)));
            let t2 = t.clone();
            let w = thread::spawn(move || {
                t2.clear_all();
                t2.sync_reclaim();
            });
            let g = t.get(0);
            let _ = t.retired_len(); // guard-held window (see above)
            if let Some(g) = &g {
                assert_eq!(**g, 7, "cleared slot must read pre-clear value or nothing");
            }
            w.join();
            drop(g);
        })
        .assert_ok();
    println!("clear-all-vs-reader: {} interleavings, exhaustive, zero violations", report.executions);
}

/// Two publishes racing the lazy install of the same level chunk: the
/// install CAS has exactly one winner, the loser's allocation is freed
/// (not leaked, not double-freed — the heap tracker checks both), and
/// neither publish is lost.
#[test]
fn chunk_install_race() {
    let report = Builder::new()
        .preemptions(2)
        .check(|| {
            let t = Arc::new(Mrv::<u64>::new());
            let t2 = t.clone();
            // Model builds shrink L0 to 4, so indexes 4 and 5 both live
            // in the (uninstalled) level-1 chunk.
            let w = thread::spawn(move || t2.publish(4, Some(Box::new(40))));
            t.publish(5, Some(Box::new(50)));
            w.join();
            assert_eq!(t.get(4).map(|g| *g), Some(40));
            assert_eq!(t.get(5).map(|g| *g), Some(50));
        })
        .assert_ok();
    println!("chunk-install-race: {} interleavings, exhaustive, zero violations", report.executions);
}
