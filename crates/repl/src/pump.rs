//! The network pump: pull chunks from a primary server, feed them
//! through a [`Follower`], ack durable offsets, and heal transient
//! damage with bounded, jittered retries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use labflow_server::{Client, ClientError};

use labflow_server::proto;

use crate::error::{ReplError, Result};
use crate::follower::Follower;

/// Tuning for [`run_pump`].
#[derive(Clone, Debug)]
pub struct PumpConfig {
    /// This follower's id in the primary's ack table.
    pub follower_id: u64,
    /// Chunk size cap per request (the server clamps it further).
    pub max_bytes: u32,
    /// Consecutive retryable failures tolerated before
    /// [`ReplError::RetriesExhausted`].
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
    /// Idle sleep while caught up with the primary.
    pub idle_sleep: Duration,
    /// Seed for the deterministic retry jitter.
    pub seed: u64,
}

impl Default for PumpConfig {
    fn default() -> PumpConfig {
        PumpConfig {
            follower_id: 1,
            max_bytes: 1 << 18,
            max_retries: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            idle_sleep: Duration::from_millis(5),
            seed: 0x5eed_1e55_c0ff_ee00,
        }
    }
}

/// One pump cycle: request a chunk from the follower's durable offset,
/// ingest it, ack the new offset. Returns whether any bytes advanced.
pub fn pump_once(follower: &Follower, client: &mut Client, cfg: &PumpConfig) -> Result<bool> {
    let from = follower.durable_lsn();
    let chunk = match client.repl_subscribe(cfg.follower_id, from, cfg.max_bytes) {
        Ok(chunk) => chunk,
        Err(ClientError::Server { code, .. }) if code == proto::EC_REPL_REWOUND => {
            return Err(ReplError::Rewound { requested: from });
        }
        Err(e) => return Err(ReplError::Net(e)),
    };
    if chunk.bytes.is_empty() {
        // Caught up; still refresh the fence from the primary's epoch
        // (a promoted primary announces its new epoch on every chunk).
        follower.raise_fence(chunk.epoch);
        return Ok(false);
    }
    let durable = follower.ingest(chunk.epoch, chunk.start, &chunk.bytes)?;
    client.repl_ack(cfg.follower_id, durable)?;
    Ok(true)
}

/// Drive [`pump_once`] until `stop` is raised. Transient faults — a
/// network error, a corrupt or misaligned chunk — are retried from the
/// follower's durable offset with exponential backoff and deterministic
/// jitter, up to `cfg.max_retries` consecutive failures; terminal
/// faults (fence, rewind, storage) are returned immediately.
pub fn run_pump(
    follower: &Follower,
    client: &mut Client,
    cfg: &PumpConfig,
    stop: &AtomicBool,
) -> Result<()> {
    let mut failures = 0u32;
    let mut jitter = cfg.seed | 1;
    while !stop.load(Ordering::Acquire) {
        match pump_once(follower, client, cfg) {
            Ok(true) => failures = 0,
            Ok(false) => {
                failures = 0;
                std::thread::sleep(cfg.idle_sleep);
            }
            Err(e @ (ReplError::Net(_) | ReplError::Corrupt(_) | ReplError::StaleChunk { .. })) => {
                failures += 1;
                if failures > cfg.max_retries {
                    // The last straw is worth logging; the typed count
                    // is what callers branch on.
                    let _ = e;
                    return Err(ReplError::RetriesExhausted { attempts: failures });
                }
                backoff(cfg, failures, &mut jitter);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Exponential backoff with up to 50% multiplicative jitter, capped.
fn backoff(cfg: &PumpConfig, failures: u32, jitter: &mut u64) {
    let shift = failures.saturating_sub(1).min(16);
    let wait = cfg
        .base_backoff
        .saturating_mul(1u32 << shift)
        .min(cfg.max_backoff);
    let span = u64::try_from(wait.as_micros() / 2).unwrap_or(u64::MAX);
    let extra = if span == 0 { 0 } else { xorshift(jitter) % span };
    std::thread::sleep(wait + Duration::from_micros(extra));
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}
