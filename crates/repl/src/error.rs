//! Typed replication errors.

use labflow_storage::StorageError;

use labflow_server::ClientError;

/// Result alias for the replication crate.
pub type Result<T> = std::result::Result<T, ReplError>;

/// Everything that can go wrong between a primary's WAL and a
/// follower's store. Retryable faults (a corrupt or misaligned chunk, a
/// network hiccup) are distinguished from terminal ones (a fenced
/// epoch, a rewound log, a storage fault on apply) so the pump can heal
/// the former and surface the latter.
#[derive(Debug)]
pub enum ReplError {
    /// The follower's store failed while applying a shipped commit.
    Storage(StorageError),
    /// The network client failed (wire fault, server error, shed).
    Net(ClientError),
    /// A chunk arrived stamped with an epoch below the follower's
    /// fence: it was cut by a deposed primary and must be refused.
    Fenced {
        /// The epoch the chunk was stamped with.
        got: u64,
        /// The follower's current fence.
        fence: u64,
    },
    /// A chunk does not start where the follower's stream position
    /// expects; re-request from the durable offset.
    StaleChunk {
        /// The offset the follower expected.
        expected: u64,
        /// The offset the chunk claims.
        got: u64,
    },
    /// A shipped chunk failed frame verification (torn, rotted, or
    /// reordered in flight); nothing from it was applied, so an intact
    /// re-request heals it.
    Corrupt(String),
    /// The primary's WAL was truncated past the follower's position
    /// (a checkpoint ran); the follower must re-seed from scratch.
    Rewound {
        /// The offset the follower requested.
        requested: u64,
    },
    /// Two ingests raced on one follower; the pump must be single-threaded.
    Busy,
    /// The pump gave up after its bounded retry budget.
    RetriesExhausted {
        /// Consecutive failed attempts before giving up.
        attempts: u32,
    },
    /// The peer answered with something the protocol does not allow.
    Protocol(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Storage(e) => write!(f, "storage: {e}"),
            ReplError::Net(e) => write!(f, "network: {e}"),
            ReplError::Fenced { got, fence } => write!(
                f,
                "chunk from epoch {got} refused: fenced below epoch {fence} \
                 (cut by a deposed primary)"
            ),
            ReplError::StaleChunk { expected, got } => write!(
                f,
                "chunk starts at offset {got} but the stream position is {expected}"
            ),
            ReplError::Corrupt(detail) => write!(f, "shipped chunk failed verification: {detail}"),
            ReplError::Rewound { requested } => write!(
                f,
                "primary log rewound past offset {requested}; follower must re-seed"
            ),
            ReplError::Busy => write!(f, "concurrent ingest on one follower"),
            ReplError::RetriesExhausted { attempts } => {
                write!(f, "replication pump gave up after {attempts} consecutive failures")
            }
            ReplError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Storage(e) => Some(e),
            ReplError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ReplError {
    fn from(e: StorageError) -> Self {
        ReplError::Storage(e)
    }
}

impl From<ClientError> for ReplError {
    fn from(e: ClientError) -> Self {
        ReplError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<ReplError> = vec![
            ReplError::Storage(StorageError::Unsupported("x")),
            ReplError::Net(ClientError::Protocol("y".into())),
            ReplError::Fenced { got: 3, fence: 5 },
            ReplError::StaleChunk { expected: 10, got: 20 },
            ReplError::Corrupt("bit flip".into()),
            ReplError::Rewound { requested: 99 },
            ReplError::Busy,
            ReplError::RetriesExhausted { attempts: 8 },
            ReplError::Protocol("bad".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
