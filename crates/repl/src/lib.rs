//! # labflow-repl
//!
//! WAL-shipping replication for LabBase. The primary is any store with
//! a write-ahead log (it needs no replication-specific state beyond the
//! server's ack table); each follower is a second store that replays
//! the primary's log continuously:
//!
//! 1. **Ship** — the follower pulls chunks of whole, checksummed WAL
//!    frames (`wal_stream_from` on the primary, `ReplSubscribe` over
//!    the wire) from its durable offset.
//! 2. **Verify** — every frame's position-bound checksum is re-checked
//!    against its absolute log offset before anything is applied; a
//!    torn, rotted, or reordered chunk is a typed
//!    [`ReplError::Corrupt`] and the follower re-requests the range —
//!    self-healing, because the primary re-reads it from disk.
//! 3. **Apply** — operations are buffered per transaction and applied
//!    atomically and durably when the commit frame arrives
//!    (`replica_apply_commit`); aborted transactions are dropped. The
//!    follower's LabBase serves MVCC snapshot reads the whole time
//!    (read-only mode; see `LabBase::set_read_only`).
//! 4. **Ack** — the follower reports its durable offset; the primary's
//!    server can hold commit responses for an ack quorum
//!    (`ServerConfig::ack_quorum`).
//! 5. **Promote** — after primary loss, a follower re-seals its store
//!    at a fenced-off epoch ([`Follower::promote`]); chunks from the
//!    deposed primary's epoch are refused everywhere from then on.
//!
//! Offsets are raw WAL byte positions, so a primary-side checkpoint
//! (which truncates the log) rewinds the stream: followers get a typed
//! [`ReplError::Rewound`] and must re-seed. The pipeline therefore
//! suppresses primary checkpoints while followers are attached; lifting
//! that by shipping checkpoint images is future work (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod follower;
mod pump;

pub use error::{ReplError, Result};
pub use follower::{Follower, EPOCH_FENCE_MARGIN};
pub use pump::{pump_once, run_pump, PumpConfig};
