//! The follower side of WAL shipping: verify, buffer, apply, promote.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use labflow_storage::{decode_shipped, lock_order, StorageManager, WalRecord};

use crate::error::{ReplError, Result};

/// How far a promotion raises the epoch above the highest epoch the
/// deposed primary was seen at. A crashed primary that reboots bumps
/// its own epoch by one per recovery checkpoint, so a margin of one is
/// a race; sixteen outlasts any plausible zombie flap while staying
/// far from overflow.
pub const EPOCH_FENCE_MARGIN: u64 = 16;

/// Stream-position state, under one mutex at rank
/// [`lock_order::REPL_FOLLOWER`]. The lock is *never* held across a
/// storage call: `replica_apply_commit` acquires engine locks at ranks
/// far below it, so holding it there would be a rank inversion (and the
/// runtime checker would say so).
struct FollowerState {
    /// The next WAL byte offset expected from the primary — everything
    /// below it has been verified and durably applied.
    next_lsn: u64,
    /// Chunks stamped with an epoch below this are refused.
    fence: u64,
    /// Operations of shipped transactions whose commit frame has not
    /// arrived yet, grouped by transaction id.
    pending: HashMap<u64, Vec<WalRecord>>,
}

/// A replication follower wrapped around a store: feeds shipped WAL
/// chunks through verification into `replica_apply_commit`, tracks the
/// stream position and the epoch fence, and can promote the store to
/// primary after the real primary is lost.
pub struct Follower {
    store: Arc<dyn StorageManager>,
    state: Mutex<FollowerState>,
    /// Ingest is single-flight: the pump is one thread, and a second
    /// concurrent ingest would interleave applies out of log order.
    busy: AtomicBool,
}

impl Follower {
    /// Wrap `store` as a follower whose stream position starts at
    /// `start_lsn` (the primary's WAL offset the follower was seeded
    /// at — `0` for a follower replaying the primary from birth).
    pub fn new(store: Arc<dyn StorageManager>, start_lsn: u64) -> Follower {
        let fence = store.store_epoch();
        Follower {
            store,
            state: Mutex::new(FollowerState {
                next_lsn: start_lsn,
                fence,
                pending: HashMap::new(),
            }),
            busy: AtomicBool::new(false),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn StorageManager> {
        &self.store
    }

    /// The next primary WAL offset this follower expects — equivalently,
    /// the offset below which everything is verified and durably
    /// applied. This is the offset the pump acks and re-requests from.
    pub fn durable_lsn(&self) -> u64 {
        let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
        let g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.next_lsn
    }

    /// The current epoch fence.
    pub fn fence(&self) -> u64 {
        let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
        let g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.fence
    }

    /// Number of shipped transactions buffered without a commit frame.
    pub fn pending_txns(&self) -> usize {
        let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
        let g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.pending.len()
    }

    /// Raise the epoch fence (e.g. when a surviving follower learns a
    /// sibling was promoted at `epoch`): chunks from older epochs —
    /// i.e. from the deposed primary — are refused from now on.
    pub fn raise_fence(&self, epoch: u64) {
        let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.fence = g.fence.max(epoch);
    }

    /// Ingest one shipped chunk: verify every frame against its
    /// absolute offset, buffer operations, and apply each transaction
    /// whose commit frame arrives — atomically and durably, in log
    /// order. Returns the new durable offset.
    ///
    /// Verification happens *before* any apply, so a torn or rotted
    /// chunk ([`ReplError::Corrupt`]) leaves the follower exactly as it
    /// was: the caller re-requests the same range and an intact copy
    /// heals it. A fenced or misaligned chunk is refused the same way.
    /// Only a storage-level failure mid-apply (a real disk fault) can
    /// leave the chunk partially applied; that error is terminal and
    /// the follower must be re-seeded.
    pub fn ingest(&self, epoch: u64, start: u64, bytes: &[u8]) -> Result<u64> {
        if self.busy.swap(true, Ordering::Acquire) {
            return Err(ReplError::Busy);
        }
        let r = self.ingest_locked_out(epoch, start, bytes);
        self.busy.store(false, Ordering::Release);
        r
    }

    fn ingest_locked_out(&self, epoch: u64, start: u64, bytes: &[u8]) -> Result<u64> {
        // Phase 1 (locked): admission checks, steal the pending map.
        let mut pending = {
            let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
            let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if epoch < g.fence {
                return Err(ReplError::Fenced { got: epoch, fence: g.fence });
            }
            if start != g.next_lsn {
                return Err(ReplError::StaleChunk { expected: g.next_lsn, got: start });
            }
            std::mem::take(&mut g.pending)
        };

        // Phase 2 (unlocked): verify the whole chunk before touching the
        // store, then apply commit-by-commit in log order.
        let end = start + bytes.len() as u64;
        let recs = match decode_shipped(start, bytes) {
            Ok(recs) => recs,
            Err(e) => {
                // Nothing applied; put the pending map back untouched.
                let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
                let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
                g.pending = pending;
                return Err(ReplError::Corrupt(e.to_string()));
            }
        };
        for (_, rec) in recs {
            match rec {
                WalRecord::Begin(t) => {
                    pending.insert(t, Vec::new());
                }
                WalRecord::Commit(t) => {
                    let ops = pending.remove(&t).unwrap_or_default();
                    if let Err(e) = self.store.replica_apply_commit(&ops) {
                        let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
                        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
                        g.pending = pending;
                        return Err(ReplError::Storage(e));
                    }
                }
                WalRecord::Abort(t) => {
                    pending.remove(&t);
                }
                WalRecord::Reset(_) => {}
                op => {
                    pending.entry(op.txn()).or_default().push(op);
                }
            }
        }

        // Phase 3 (locked): advance the stream position and the fence.
        let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.pending = pending;
        g.next_lsn = end;
        g.fence = g.fence.max(epoch);
        Ok(end)
    }

    /// Promote this follower to primary: drop transactions that never
    /// committed on the old primary, re-seal the store at an epoch at
    /// least [`EPOCH_FENCE_MARGIN`] above anything the deposed primary
    /// was seen at, and return the new epoch. Surviving followers
    /// should [`raise_fence`](Self::raise_fence) to it so the zombie's
    /// chunks are refused everywhere.
    pub fn promote(&self) -> Result<u64> {
        let floor = {
            let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
            let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
            g.pending.clear();
            g.fence.saturating_add(EPOCH_FENCE_MARGIN)
        };
        // The lock is released before the storage call (rank order).
        self.store.promote_epoch(floor)?;
        let epoch = self.store.store_epoch();
        let _rank = lock_order::acquire(lock_order::REPL_FOLLOWER);
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.fence = g.fence.max(epoch);
        Ok(epoch)
    }
}
