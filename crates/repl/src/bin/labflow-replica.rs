//! The `labflow-replica` binary: follow a primary `labflow-server`,
//! replay its WAL continuously, serve snapshot reads, and promote on
//! request.
//!
//! ```text
//! labflow-replica --dir /var/lib/labflow-replica \
//!                 --follow 127.0.0.1:7047 --addr 127.0.0.1:7048
//! ```
//!
//! The replica seeds a fresh store, pulls the primary's log from
//! offset 0 (including the primary's own bootstrap), and opens the
//! database read-only once the root has been replayed. It then serves
//! the full read protocol; writes answer with the typed read-only
//! error. A `ReplPromote` request stops the pump, re-seals the store at
//! a fenced epoch, and lifts the read-only gate — the replica is now a
//! primary.
//!
//! Prints `labflow-replica listening on <addr>` once bound (scripts
//! parse this line), and `labflow-replica promoted to epoch <e>` after
//! a successful promotion.

#![forbid(unsafe_code)]

use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use labbase::LabBase;
use labflow_repl::{run_pump, Follower, PumpConfig};
use labflow_server::{Client, PromoteHook, Server, ServerConfig, TenantQuotas};
use labflow_storage::{OStore, Options, StorageManager};

struct Args {
    dir: std::path::PathBuf,
    follow: String,
    addr: String,
    follower_id: u64,
}

const USAGE: &str = "usage: labflow-replica [options]
  --dir PATH           replica store directory (created fresh; must not hold a store)
  --follow HOST:PORT   primary labflow-server to replicate from (required)
  --addr HOST:PORT     bind address for read traffic (default 127.0.0.1:0)
  --follower-id N      id in the primary's ack table (default 1)
";

fn parse_args() -> Result<Args, String> {
    let mut dir: Option<std::path::PathBuf> = None;
    let mut follow: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut follower_id = 1u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--dir" => dir = Some(val("--dir")?.into()),
            "--follow" => follow = Some(val("--follow")?),
            "--addr" => addr = val("--addr")?,
            "--follower-id" => {
                follower_id =
                    val("--follower-id")?.parse().map_err(|e| format!("--follower-id: {e}"))?
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("--dir is required\n{USAGE}"))?;
    let follow = follow.ok_or_else(|| format!("--follow is required\n{USAGE}"))?;
    Ok(Args { dir, follow, addr, follower_id })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.dir.join("store.meta").exists() {
        return Err(format!(
            "{:?} already holds a store; a replica must seed fresh (offsets are \
             positions in the primary's log, not ours)",
            args.dir
        ));
    }
    std::fs::create_dir_all(&args.dir).map_err(|e| format!("create {:?}: {e}", args.dir))?;
    let opts = Options { sync_commit: true, ..Options::default() };
    let store: Arc<dyn StorageManager> = Arc::new(
        OStore::create(&args.dir, opts).map_err(|e| format!("create store: {e}"))?,
    );
    let follower = Arc::new(Follower::new(Arc::clone(&store), 0));

    let mut client = Client::connect(args.follow.as_str(), u32::MAX)
        .map_err(|e| format!("connect to primary {}: {e}", args.follow))?;
    let cfg = PumpConfig { follower_id: args.follower_id, ..PumpConfig::default() };

    // Replay until the primary's bootstrap (root + catalog) is over, so
    // the read-only LabBase can open.
    let db = loop {
        labflow_repl::pump_once(&follower, &mut client, &cfg)
            .map_err(|e| format!("seed from primary: {e}"))?;
        match LabBase::open(Arc::clone(&store)) {
            Ok(db) => break Arc::new(db),
            Err(_) if follower.durable_lsn() == 0 => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    db.set_read_only(true);
    eprintln!(
        "labflow-replica: seeded to offset {} (epoch fence {})",
        follower.durable_lsn(),
        follower.fence()
    );

    // Background pump: keep replaying until promoted or the process dies.
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let follower = Arc::clone(&follower);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let r = run_pump(&follower, &mut client, &cfg, &stop);
            if let Err(e) = &r {
                eprintln!("labflow-replica: pump stopped: {e}");
            }
            r
        })
    };

    // Promotion hook: stop the pump, re-seal at a fenced epoch, lift
    // the read-only gate, reload the wrapper's caches from storage.
    let promote: PromoteHook = {
        let follower = Arc::clone(&follower);
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        Arc::new(move || {
            stop.store(true, Ordering::Release);
            let epoch = follower.promote().map_err(|e| format!("promote: {e}"))?;
            db.refresh_replica_caches().map_err(|e| format!("refresh caches: {e}"))?;
            db.set_read_only(false);
            eprintln!("labflow-replica promoted to epoch {epoch}");
            Ok(())
        })
    };

    let config = ServerConfig {
        addr: args.addr.clone(),
        quotas: TenantQuotas { max_sessions: 0, max_inflight: 0, bytes_per_sec: 0 },
        ..ServerConfig::default()
    };
    let server =
        Server::start_with(Arc::clone(&db), config, Some(promote)).map_err(|e| format!("start server: {e}"))?;
    println!("labflow-replica listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("labflow-replica: shutdown requested; draining");
    stop.store(true, Ordering::Release);
    server.shutdown().map_err(|e| format!("drain: {e}"))?;
    let _ = pump.join();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
