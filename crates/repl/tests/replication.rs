//! End-to-end replication: a primary behind a real server, a follower
//! pumping over loopback, damage injection, fencing, and promotion.

use std::path::PathBuf;
use std::sync::Arc;

use labbase::LabBase;
use labflow_repl::{pump_once, Follower, PumpConfig, ReplError};
use labflow_server::{Client, Server, ServerConfig, TenantQuotas};
use labflow_storage::{OStore, Options, SimVfs, StorageManager, Vfs};

fn sim_store(seed: u64, path: &str) -> Arc<dyn StorageManager> {
    let vfs: Arc<dyn Vfs> = Arc::new(SimVfs::new(seed));
    Arc::new(OStore::create_with(vfs, &PathBuf::from(path), Options::default()).unwrap())
}

fn start_server(db: Arc<LabBase>) -> Server {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        quotas: TenantQuotas { max_sessions: 0, max_inflight: 0, bytes_per_sec: 0 },
        ..ServerConfig::default()
    };
    Server::start(db, config).unwrap()
}

/// Pump until caught up with the primary.
fn drain(follower: &Follower, client: &mut Client, cfg: &PumpConfig) {
    while pump_once(follower, client, cfg).unwrap() {}
}

/// The full path: server-side stream → wire → verify → apply → ack;
/// the follower's LabBase serves reads mid-stream and takes writes
/// after promotion.
#[test]
fn pump_replicates_over_loopback_and_promotes() {
    let pri_store = sim_store(3, "/sim/pri");
    let from = pri_store.replication_lsn().unwrap();
    let db = Arc::new(LabBase::create(Arc::clone(&pri_store)).unwrap());
    let server = start_server(Arc::clone(&db));
    let addr = server.local_addr();

    let mut writer = Client::connect(addr, 1).unwrap();
    writer.begin().unwrap();
    writer.define_material_class("clone", None).unwrap();
    let m = writer.create_material("clone", "c-001", 5).unwrap();
    writer.set_state(m, "queued", 6).unwrap();
    writer.commit().unwrap();

    let fol_store = sim_store(4, "/sim/fol");
    let follower = Follower::new(Arc::clone(&fol_store), from);
    let cfg = PumpConfig { follower_id: 7, ..PumpConfig::default() };
    let mut pump_client = Client::connect(addr, u32::MAX).unwrap();
    drain(&follower, &mut pump_client, &cfg);

    // The primary's server saw the follower's ack at the tail.
    let status = writer.repl_status().unwrap();
    assert_eq!(status.followers, vec![(7, follower.durable_lsn())]);
    assert_eq!(status.lsn, follower.durable_lsn());

    // The follower serves snapshot reads through its own LabBase.
    let fdb = LabBase::open(Arc::clone(&fol_store)).unwrap();
    fdb.set_read_only(true);
    let found = fdb.find_material("c-001").unwrap();
    assert_eq!(found.map(|id| id.oid().raw()), Some(m));
    assert!(matches!(fdb.begin(), Err(labbase::LabError::ReadOnly)));

    // More primary traffic; the pump catches up incrementally.
    writer.begin().unwrap();
    writer.create_material("clone", "c-002", 7).unwrap();
    writer.commit().unwrap();
    drain(&follower, &mut pump_client, &cfg);
    fdb.refresh_replica_caches().unwrap();
    assert!(fdb.find_material("c-002").unwrap().is_some());
    server.shutdown().unwrap();

    // Promote: epoch jumps past anything the primary stamped, writes open up.
    let old_epoch = pri_store.store_epoch();
    let epoch = follower.promote().unwrap();
    assert!(epoch > old_epoch);
    assert_eq!(fol_store.store_epoch(), epoch);
    fdb.set_read_only(false);
    let t = fdb.begin().unwrap();
    fdb.create_material(t, "clone", "c-promoted", 9).unwrap();
    fdb.commit(t).unwrap();
    assert!(fdb.find_material("c-promoted").unwrap().is_some());
}

/// A bit-flipped chunk is refused before anything is applied, the
/// stream position does not move, and the intact re-request heals.
#[test]
fn corrupt_chunk_is_refused_then_heals() {
    let pri = sim_store(5, "/sim/pri");
    let from = pri.replication_lsn().unwrap();
    let db = LabBase::create(Arc::clone(&pri)).unwrap();
    let t = db.begin().unwrap();
    db.define_material_class(t, "clone", None).unwrap();
    db.commit(t).unwrap();

    let fol = sim_store(6, "/sim/fol");
    let follower = Follower::new(Arc::clone(&fol), from);
    let chunk = pri.wal_stream_from(from, 1 << 18).unwrap();
    assert!(!chunk.bytes.is_empty());

    let mut torn = chunk.bytes.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x40;
    match follower.ingest(pri.store_epoch(), chunk.start, &torn) {
        Err(ReplError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert_eq!(follower.durable_lsn(), from, "refused chunk must not advance the stream");

    // Same range, intact bytes: applies cleanly.
    let durable = follower.ingest(pri.store_epoch(), chunk.start, &chunk.bytes).unwrap();
    assert_eq!(durable, chunk.end);
    assert_eq!(follower.durable_lsn(), chunk.end);
}

/// Fencing and alignment: chunks from a deposed epoch and chunks that
/// do not start at the stream position are typed refusals.
#[test]
fn fenced_and_misaligned_chunks_are_refused() {
    let pri = sim_store(8, "/sim/pri");
    let from = pri.replication_lsn().unwrap();
    let db = LabBase::create(Arc::clone(&pri)).unwrap();
    let t = db.begin().unwrap();
    db.define_material_class(t, "clone", None).unwrap();
    db.commit(t).unwrap();
    let chunk = pri.wal_stream_from(from, 1 << 18).unwrap();

    let fol = sim_store(9, "/sim/fol");
    let follower = Follower::new(Arc::clone(&fol), from);

    // A fence raised above the primary's epoch (as after a sibling's
    // promotion) refuses the zombie's chunks.
    let fence = pri.store_epoch() + 100;
    follower.raise_fence(fence);
    match follower.ingest(pri.store_epoch(), chunk.start, &chunk.bytes) {
        Err(ReplError::Fenced { got, fence: f }) => {
            assert_eq!(got, pri.store_epoch());
            assert_eq!(f, fence);
        }
        other => panic!("expected Fenced, got {other:?}"),
    }

    // Misaligned start: typed, with both offsets.
    let fol2 = sim_store(10, "/sim/fol2");
    let follower2 = Follower::new(Arc::clone(&fol2), from);
    match follower2.ingest(pri.store_epoch(), chunk.start + 1, &chunk.bytes) {
        Err(ReplError::StaleChunk { expected, got }) => {
            assert_eq!(expected, from);
            assert_eq!(got, chunk.start + 1);
        }
        other => panic!("expected StaleChunk, got {other:?}"),
    }
}
