//! Seeded-bug fixtures: a miniature epoch-reclamation protocol with the
//! same shape as `labflow-mrv` (publish-and-recheck pin, swap-then-stamp
//! retire, epoch-bump-then-scan reclaim), plus three deliberately
//! injectable bugs. The correct protocol must survive exhaustive
//! exploration; each seeded bug must produce a *reported*
//! use-after-reclaim interleaving. This is the evidence that the
//! explorer can actually find the class of bug the MRV scenarios assert
//! the absence of.

use std::sync::Arc;

use labflow_modelcheck::atomic::{AtomicPtr, AtomicU64, Ordering};
use labflow_modelcheck::{heap, sync, thread, Builder};

const IDLE: u64 = u64::MAX;

#[derive(Clone, Copy, PartialEq)]
enum Bug {
    /// The protocol as `labflow-mrv` implements it.
    None,
    /// Retire stamps the value with the epoch read *before* the swap, so
    /// a reclaim racing the publish can make the stamp stale-low.
    StampBeforeSwap,
    /// Reclaim frees entries with `stamp <= min_active` instead of
    /// `stamp < min_active`.
    InclusiveReclaim,
    /// Reclaim scans the reader slot with `Relaxed`, so it can observe a
    /// stale `IDLE` from before the reader pinned.
    RelaxedScan,
}

struct Proto {
    ptr: AtomicPtr<u64>,
    epoch: AtomicU64,
    /// The (single) reader's pinned epoch; `IDLE` when inactive.
    slot: AtomicU64,
    /// Retired values awaiting reclamation: (address, epoch stamp).
    retired: sync::Mutex<Vec<(usize, u64)>>,
}

fn setup(initial: u64) -> Arc<Proto> {
    let p0 = Box::into_raw(Box::new(initial));
    heap::on_alloc(p0 as usize);
    Arc::new(Proto {
        ptr: AtomicPtr::new(p0),
        epoch: AtomicU64::new(0),
        slot: AtomicU64::new(IDLE),
        retired: sync::Mutex::new(Vec::new()),
    })
}

fn free(addr: usize) {
    if heap::on_free(addr) {
        // SAFETY: addr came from Box::into_raw and the model just
        // confirmed it is live and unreferenced.
        drop(unsafe { Box::from_raw(addr as *mut u64) });
    }
}

/// Pin (publish-and-recheck), read the current value, unpin.
fn read(p: &Proto) -> u64 {
    let mut e = p.epoch.load(Ordering::SeqCst);
    loop {
        p.slot.store(e, Ordering::SeqCst);
        let e2 = p.epoch.load(Ordering::SeqCst);
        if e2 == e {
            break;
        }
        e = e2;
    }
    let v = p.ptr.load(Ordering::SeqCst);
    heap::retain(v as usize);
    // SAFETY: the pin protocol (under test!) keeps v alive; the model
    // reports a violation instead of letting a buggy interleaving free
    // it for real.
    let out = unsafe { *v };
    // The guard is held across further shared-memory work, as real
    // readers hold ReadGuards across arbitrary code — this scheduling
    // point is what lets a racing reclaim run while we hold the value.
    let _ = p.epoch.load(Ordering::SeqCst);
    heap::release(v as usize);
    p.slot.store(IDLE, Ordering::SeqCst);
    out
}

/// Swap in a new value and retire the old one.
fn publish(p: &Proto, val: u64, bug: Bug) {
    let b = Box::into_raw(Box::new(val));
    heap::on_alloc(b as usize);
    let (old, stamp);
    if bug == Bug::StampBeforeSwap {
        stamp = p.epoch.load(Ordering::SeqCst);
        old = p.ptr.swap(b, Ordering::SeqCst);
    } else {
        old = p.ptr.swap(b, Ordering::SeqCst);
        stamp = p.epoch.load(Ordering::SeqCst);
    }
    p.retired.lock().push((old as usize, stamp));
}

/// Bump the epoch, scan the reader slot, free safely-old retirees. The
/// retired lock is held across the scan AND the frees, like the real
/// MRV holds its inner lock: scanning before taking the lock is itself
/// a reclamation race (a value retired after the scan could be freed
/// against a reader the stale scan never saw) — and the explorer finds
/// it if this function is reordered.
fn reclaim(p: &Proto, bug: Bug) {
    let mut retired = p.retired.lock();
    p.epoch.fetch_add(1, Ordering::SeqCst);
    let scan = if bug == Bug::RelaxedScan { Ordering::Relaxed } else { Ordering::SeqCst };
    let pinned = p.slot.load(scan);
    let min_active = if pinned == IDLE { u64::MAX } else { pinned };
    retired.retain(|&(addr, stamp)| {
        let freeable =
            if bug == Bug::InclusiveReclaim { stamp <= min_active } else { stamp < min_active };
        if freeable {
            free(addr);
        }
        !freeable
    });
}

/// Free whatever survived the run so a clean execution has no leaks.
fn teardown(p: &Proto) {
    for (addr, _) in p.retired.lock().drain(..) {
        free(addr);
    }
    free(p.ptr.load(Ordering::SeqCst) as usize);
}

/// One writer publishing + reclaiming, racing one reader. Enough to
/// expose the inclusive-reclaim and relaxed-scan bugs.
fn writer_vs_reader(bug: Bug, preemptions: u32) -> labflow_modelcheck::Report {
    Builder::new().preemptions(preemptions).check(move || {
        let p = setup(1);
        let p2 = p.clone();
        let w = thread::spawn(move || {
            publish(&p2, 2, bug);
            reclaim(&p2, bug);
        });
        let got = read(&p);
        assert!(got == 1 || got == 2, "read tore: {got}");
        w.join();
        teardown(&p);
    })
}

/// A publisher and a dedicated reclaimer racing one reader: the epoch
/// can move between the publisher's stamp and its swap, which is what
/// the stamp-before-swap bug needs.
fn split_writer_vs_reader(bug: Bug, preemptions: u32) -> labflow_modelcheck::Report {
    Builder::new().preemptions(preemptions).check(move || {
        let p = setup(1);
        let (pr, pc) = (p.clone(), p.clone());
        let r = thread::spawn(move || read(&pr));
        let c = thread::spawn(move || {
            reclaim(&pc, bug);
            reclaim(&pc, bug);
        });
        publish(&p, 2, bug);
        let got = r.join();
        assert!(got == 1 || got == 2, "read tore: {got}");
        c.join();
        teardown(&p);
    })
}

#[test]
fn correct_protocol_survives_writer_vs_reader() {
    let report = writer_vs_reader(Bug::None, 3).assert_ok();
    assert!(report.complete);
    println!("correct protocol (writer vs reader): {} interleavings, clean", report.executions);
}

#[test]
fn correct_protocol_survives_split_writer() {
    let report = split_writer_vs_reader(Bug::None, 3).assert_ok();
    assert!(report.complete);
    println!("correct protocol (split writer): {} interleavings, clean", report.executions);
}

#[test]
fn stamp_before_swap_is_caught() {
    let report = split_writer_vs_reader(Bug::StampBeforeSwap, 3);
    let v = report.violation.expect("seeded stamp-before-swap bug was not found");
    assert_eq!(v.kind, "use-after-reclaim", "wrong violation class:\n{v}");
    assert!(!v.trace.is_empty());
    println!("stamp-before-swap caught after {} interleavings:\n{v}", report.executions);
}

#[test]
fn inclusive_reclaim_is_caught() {
    let report = writer_vs_reader(Bug::InclusiveReclaim, 2);
    let v = report.violation.expect("seeded off-by-one reclaim bug was not found");
    assert_eq!(v.kind, "use-after-reclaim", "wrong violation class:\n{v}");
    println!("inclusive-reclaim caught after {} interleavings:\n{v}", report.executions);
}

#[test]
fn relaxed_scan_is_caught() {
    let report = writer_vs_reader(Bug::RelaxedScan, 2);
    let v = report.violation.expect("seeded relaxed-scan bug was not found");
    assert_eq!(v.kind, "use-after-reclaim", "wrong violation class:\n{v}");
    assert!(
        v.trace.iter().any(|l| l.contains("stale")),
        "the violating interleaving should involve a stale Relaxed read:\n{v}"
    );
    println!("relaxed-scan caught after {} interleavings:\n{v}", report.executions);
}
