//! Litmus tests for the explorer itself: classic outcomes that must (or
//! must not) be reachable, and the violation detectors firing on
//! minimal reproducers.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};

use labflow_modelcheck::atomic::{AtomicU64, Ordering};
use labflow_modelcheck::{heap, sync, thread, Builder};

/// Store-buffering: with `Relaxed` loads the (0, 0) outcome is allowed
/// (each thread's load may miss the other's store); the explorer must
/// actually reach it.
#[test]
fn sb_relaxed_reaches_zero_zero() {
    let outcomes: Arc<StdMutex<BTreeSet<(u64, u64)>>> = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = outcomes.clone();
    let report = Builder::new()
        .preemptions(3)
        .check(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::SeqCst);
            let r1 = x.load(Ordering::Relaxed);
            let r2 = t.join();
            sink.lock().unwrap().insert((r1, r2));
        })
        .assert_ok();
    let seen = outcomes.lock().unwrap().clone();
    assert!(
        seen.contains(&(0, 0)),
        "relaxed loads never observed the stale (0, 0) outcome; saw {seen:?} \
         across {} interleavings",
        report.executions
    );
    assert!(seen.contains(&(1, 1)), "saw {seen:?}");
}

/// The same shape with `SeqCst` loads: (0, 0) is forbidden — at least
/// one store precedes both loads in the single total order.
#[test]
fn sb_seqcst_forbids_zero_zero() {
    let outcomes: Arc<StdMutex<BTreeSet<(u64, u64)>>> = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = outcomes.clone();
    Builder::new()
        .preemptions(3)
        .check(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let r1 = x.load(Ordering::SeqCst);
            let r2 = t.join();
            sink.lock().unwrap().insert((r1, r2));
        })
        .assert_ok();
    let seen = outcomes.lock().unwrap().clone();
    assert!(!seen.contains(&(0, 0)), "SeqCst store-buffering must not reach (0, 0): {seen:?}");
    assert!(seen.len() >= 2, "expected several outcomes, saw {seen:?}");
}

/// A racy unsynchronized counter loses updates in some interleaving; the
/// explorer must find the lost-update schedule (load / load / store /
/// store) rather than only the serial ones.
#[test]
fn finds_lost_update() {
    let outcomes: Arc<StdMutex<BTreeSet<u64>>> = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = outcomes.clone();
    Builder::new()
        .preemptions(2)
        .check(move || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join();
            sink.lock().unwrap().insert(c.load(Ordering::SeqCst));
        })
        .assert_ok();
    let seen = outcomes.lock().unwrap().clone();
    assert_eq!(seen, BTreeSet::from([1, 2]), "expected both the lost-update and serial outcomes");
}

/// A model mutex makes the counter race-free: only the serial outcome
/// survives, in every interleaving.
#[test]
fn mutex_serializes_counter() {
    Builder::new()
        .preemptions(2)
        .check(|| {
            let c = Arc::new(sync::Mutex::new(0u64));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                let mut g = c2.lock();
                *g += 1;
            });
            {
                let mut g = c.lock();
                *g += 1;
            }
            t.join();
            assert_eq!(*c.lock(), 2);
        })
        .assert_ok();
}

/// ABBA lock ordering deadlocks in some interleaving; the explorer must
/// report it (rather than hang).
#[test]
fn detects_abba_deadlock() {
    let report = Builder::new().preemptions(2).check(|| {
        let a = Arc::new(sync::Mutex::new(()));
        let b = Arc::new(sync::Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join();
    });
    let v = report.violation.expect("ABBA deadlock not found");
    assert_eq!(v.kind, "deadlock", "unexpected violation: {v}");
    assert!(!v.trace.is_empty(), "deadlock report carries no interleaving trace");
}

/// Freeing the same tracked allocation twice is reported as double-free.
#[test]
fn detects_double_free() {
    let report = Builder::new().check(|| {
        heap::on_alloc(0x1000);
        let _ = heap::on_free(0x1000);
        let _ = heap::on_free(0x1000);
    });
    let v = report.violation.expect("double free not found");
    assert_eq!(v.kind, "double-free", "unexpected violation: {v}");
}

/// An allocation never freed is reported as a leak at execution end.
#[test]
fn detects_leak() {
    let report = Builder::new().check(|| {
        heap::on_alloc(0x2000);
    });
    let v = report.violation.expect("leak not found");
    assert_eq!(v.kind, "leak", "unexpected violation: {v}");
}

/// Freeing while a reader guard still holds the allocation is reported
/// as use-after-reclaim.
#[test]
fn detects_free_under_reader() {
    let report = Builder::new().check(|| {
        heap::on_alloc(0x3000);
        heap::retain(0x3000);
        let _ = heap::on_free(0x3000);
    });
    let v = report.violation.expect("use-after-reclaim not found");
    assert_eq!(v.kind, "use-after-reclaim", "unexpected violation: {v}");
}

/// A panic inside a model thread is reported with its message, not
/// swallowed or propagated as a test abort.
#[test]
fn reports_scenario_panics() {
    let report = Builder::new().check(|| {
        let t = thread::spawn(|| {
            panic!("scenario assertion failed");
        });
        t.join();
    });
    let v = report.violation.expect("panic not reported");
    assert_eq!(v.kind, "panic");
    assert!(v.message.contains("scenario assertion failed"), "message: {}", v.message);
}

/// Exhaustive exploration terminates and reports completeness on a
/// scenario with a known, small interleaving count.
#[test]
fn reports_complete_exploration() {
    let report = Builder::new()
        .preemptions(2)
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = x.clone();
            let t = thread::spawn(move || x2.fetch_add(1, Ordering::SeqCst));
            x.fetch_add(1, Ordering::SeqCst);
            t.join();
            assert_eq!(x.load(Ordering::SeqCst), 2);
        })
        .assert_ok();
    assert!(report.complete);
    assert!(report.executions >= 2, "two fetch_adds admit at least two orders");
}
