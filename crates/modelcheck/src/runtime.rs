//! The model runtime: one `Ctx` per execution, a baton handed between
//! cooperative model threads, and a DFS `Schedule` replayed across
//! executions.
//!
//! Every modeled operation (atomic access, mutex acquire/release,
//! spawn/join) is a *scheduling point*: the thread performing it parks
//! until the scheduler hands it the baton, so exactly one model thread
//! is ever running and the whole execution is a deterministic function
//! of the recorded choice path. Exploration reruns the closure, forcing
//! the first untried option at the deepest unexhausted choice point —
//! classic stateless DFS with a bounded number of preemptive switches.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload used to tear an execution down once a violation is
/// recorded (or the run is being abandoned). Caught and swallowed by
/// every model-thread wrapper.
pub(crate) struct Abort;

/// What went wrong, with the evidence.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Short machine-readable class: `use-after-reclaim`, `double-free`,
    /// `leak`, `deadlock`, `livelock`, `panic`, `nondeterminism`.
    pub kind: String,
    /// Human-readable description.
    pub message: String,
    /// The interleaving that produced it: one line per scheduling point.
    pub trace: Vec<String>,
    /// The DFS choice path (options, chosen) that replays it.
    pub path: Vec<(usize, usize)>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{}] {}", self.kind, self.message)?;
        writeln!(f, "interleaving ({} scheduling points):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        write!(f, "choice path: {:?}", self.path)
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Number of distinct interleavings executed.
    pub executions: u64,
    /// True when the DFS frontier was exhausted (every interleaving
    /// within the preemption bound was run) without hitting the
    /// execution cap.
    pub complete: bool,
    /// The first violation found, if any. Exploration stops at it.
    pub violation: Option<Violation>,
}

impl Report {
    /// Panic with the full trace if a violation was found or the
    /// exploration did not complete; otherwise return `self` so callers
    /// can log `executions`.
    pub fn assert_ok(self) -> Report {
        if let Some(v) = &self.violation {
            panic!("model checking failed after {} interleavings\n{v}", self.executions);
        }
        assert!(
            self.complete,
            "exploration hit the execution cap after {} interleavings without exhausting \
             the frontier — raise max_executions or shrink the scenario",
            self.executions
        );
        self
    }
}

/// Exploration knobs.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum number of *preemptive* context switches per execution
    /// (switches away from a thread that could have kept running).
    /// Switches forced by blocking or thread exit are always free.
    pub preemption_bound: u32,
    /// Hard cap on explored interleavings; hitting it marks the report
    /// incomplete.
    pub max_executions: u64,
    /// Per-execution scheduling-point cap (livelock guard).
    pub max_steps: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder { preemption_bound: 2, max_executions: 2_000_000, max_steps: 100_000 }
    }
}

impl Builder {
    /// Default bounds: preemption bound 2.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Set the preemption bound.
    pub fn preemptions(mut self, n: u32) -> Builder {
        self.preemption_bound = n;
        self
    }

    /// Set the interleaving cap.
    pub fn max_executions(mut self, n: u64) -> Builder {
        self.max_executions = n;
        self
    }

    /// Explore every interleaving of `f` within the bounds. The closure
    /// runs once per interleaving and must be deterministic apart from
    /// the modeled operations.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        explore(self, Arc::new(f))
    }
}

/// One DFS choice point: `options` alternatives existed, `chosen` was
/// taken on the current path.
#[derive(Debug, Clone, Copy)]
struct Choice {
    options: usize,
    chosen: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for a model mutex (by address).
    BlockedMutex(usize),
    /// Waiting for a thread to finish.
    BlockedJoin(usize),
    Finished,
}

#[derive(Default)]
struct AtomicState {
    /// Modification order: every value the atomic has held, oldest
    /// first. Relaxed loads may observe any entry at or after the
    /// loading thread's coherence floor.
    history: Vec<u64>,
}

pub(crate) struct Inner {
    statuses: Vec<Status>,
    /// Which thread holds the baton.
    current: usize,
    live: usize,
    /// DFS path: replayed prefix + freshly recorded suffix.
    choices: Vec<Choice>,
    cursor: usize,
    preemptions: u32,
    bound: u32,
    steps: u64,
    max_steps: u64,
    atomics: HashMap<usize, AtomicState>,
    /// Per (thread, atomic) coherence floor: index into the modification
    /// order below which this thread may no longer read.
    floors: HashMap<(usize, usize), usize>,
    /// Model-mutex owner by address.
    mutex_owner: HashMap<usize, usize>,
    /// Live tracked allocations: address -> reader retain count.
    allocs: HashMap<usize, u32>,
    trace: Vec<String>,
    violation: Option<Violation>,
    aborting: bool,
}

pub(crate) struct Ctx {
    m: StdMutex<Inner>,
    cv: Condvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// The execution this OS thread belongs to, and its model tid.
    static TL: RefCell<Option<(Arc<Ctx>, usize)>> = const { RefCell::new(None) };
}

/// Serialises executions process-wide: model state lives in per-thread
/// and per-ctx structures, but traces and schedules assume one
/// exploration at a time (and `cargo test` may run tests in parallel).
static SERIAL: StdMutex<()> = StdMutex::new(());

fn lock(ctx: &Ctx) -> StdMutexGuard<'_, Inner> {
    ctx.m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with the calling thread's model context, or return `None`
/// when the thread is not a model thread (free-run: operations fall
/// back to their plain `std` behaviour).
pub(crate) fn with_model<R>(f: impl FnOnce(&Arc<Ctx>, usize) -> R) -> Option<R> {
    TL.with(|tl| tl.borrow().as_ref().map(|(ctx, tid)| (ctx.clone(), *tid))).map(|(ctx, tid)| {
        f(&ctx, tid)
    })
}

/// Tear the calling thread down because a thread it depends on already
/// aborted (e.g. a join that can never produce a value). No-op when the
/// caller is itself unwinding.
pub(crate) fn propagate_abort() {
    abort_point();
}

impl Inner {
    fn record_violation(&mut self, kind: &str, message: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                kind: kind.to_string(),
                message,
                trace: self.trace.clone(),
                path: self.choices.iter().map(|c| (c.options, c.chosen)).collect(),
            });
        }
        self.aborting = true;
    }

    /// Take the next DFS choice among `options` alternatives.
    fn choose(&mut self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        if self.cursor < self.choices.len() {
            let c = self.choices[self.cursor];
            if c.options != options {
                self.record_violation(
                    "nondeterminism",
                    format!(
                        "replay diverged: choice point {} had {} options, now {options} — \
                         the closure is not deterministic",
                        self.cursor, c.options
                    ),
                );
                return 0;
            }
            self.cursor += 1;
            return c.chosen;
        }
        self.choices.push(Choice { options, chosen: 0 });
        self.cursor += 1;
        0
    }

    /// Pick which thread runs next. `exiting` marks the current thread
    /// as leaving the runnable set (blocked or finished) regardless of
    /// its recorded status.
    fn pick_next(&mut self, exiting: bool) {
        let runnable: Vec<usize> = {
            let cur = self.current;
            // Current thread first so option 0 means "keep running" —
            // the DFS explores the preemption-free schedule first.
            let mut r: Vec<usize> = Vec::new();
            if !exiting && self.statuses[cur] == Status::Runnable {
                r.push(cur);
            }
            r.extend(
                (0..self.statuses.len())
                    .filter(|&t| t != cur && self.statuses[t] == Status::Runnable),
            );
            r
        };
        if runnable.is_empty() {
            if self.live > 0 {
                let held: Vec<String> = self
                    .statuses
                    .iter()
                    .enumerate()
                    .filter_map(|(t, s)| match s {
                        Status::BlockedMutex(a) => Some(format!("T{t} waits on mutex {a:#x}")),
                        Status::BlockedJoin(j) => Some(format!("T{t} joins T{j}")),
                        _ => None,
                    })
                    .collect();
                self.record_violation("deadlock", format!("no runnable thread: {}", held.join(", ")));
            }
            return;
        }
        let current_can_run = runnable.first() == Some(&self.current) && !exiting;
        let next = if current_can_run && self.preemptions >= self.bound {
            // Preemption budget spent: the running thread must continue.
            self.current
        } else {
            let i = self.choose(runnable.len());
            runnable[i]
        };
        if current_can_run && next != self.current {
            self.preemptions += 1;
        }
        self.current = next;
    }
}

/// Tear the calling thread down — unless it is already unwinding, in
/// which case the caller must fall back to free-run behaviour (a second
/// panic inside a `Drop` during unwind would abort the process).
fn abort_point() -> bool {
    if std::thread::panicking() {
        return false;
    }
    panic::panic_any(Abort)
}

/// The scheduling point: record the op, let the scheduler pick who runs
/// next, and park until this thread holds the baton again. Returns with
/// the ctx lock held and `current == tid` so the caller can apply its
/// operation atomically with respect to the model — or `None` when the
/// execution is tearing down and the caller must free-run.
fn scheduled<'c>(
    ctx: &'c Ctx,
    tid: usize,
    desc: impl FnOnce() -> String,
) -> Option<StdMutexGuard<'c, Inner>> {
    let mut g = lock(ctx);
    if g.aborting {
        drop(g);
        abort_point();
        return None;
    }
    g.steps += 1;
    if g.steps > g.max_steps {
        let cap = g.max_steps;
        g.record_violation("livelock", format!("execution exceeded {cap} scheduling points"));
        ctx.cv.notify_all();
        drop(g);
        abort_point();
        return None;
    }
    let d = desc();
    let line = format!("T{tid}: {d}");
    g.pick_next(false);
    loop {
        if g.aborting {
            drop(g);
            abort_point();
            return None;
        }
        if g.current == tid {
            // The op applies now (with the baton held), so record it
            // now: the trace reads in true application order.
            g.trace.push(line);
            return Some(g);
        }
        ctx.cv.notify_all();
        g = ctx.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}

// ---- operations exposed to the atomic / sync / heap modules -------------

/// An atomic access. `relaxed_read`: when true the op is a load that may
/// observe stale values; `apply` receives (latest value, choice closure)
/// and returns (result, new value to append or None).
pub(crate) fn atomic_op(
    addr: usize,
    init: u64,
    desc: &str,
    relaxed_read: bool,
    apply: impl FnOnce(u64) -> (u64, Option<u64>),
) -> Option<u64> {
    with_model(|ctx, tid| {
        let mut g = scheduled(ctx, tid, || format!("{desc} @{addr:#x}"))?;
        let st = g.atomics.entry(addr).or_insert_with(|| AtomicState { history: vec![init] });
        let latest_idx = st.history.len() - 1;
        let latest = st.history[latest_idx];
        if relaxed_read {
            let floor = *g.floors.get(&(tid, addr)).unwrap_or(&0);
            let span = latest_idx - floor + 1;
            let pick = g.choose(span);
            let idx = floor + pick;
            let v = g.atomics[&addr].history[idx];
            g.floors.insert((tid, addr), idx);
            if idx != latest_idx {
                let lag = latest_idx - idx;
                let t = g.trace.len() - 1;
                g.trace[t].push_str(&format!(" -> {v} (stale, {lag} behind)"));
            }
            return Some(v);
        }
        let (result, append) = apply(latest);
        if let Some(v) = append {
            g.atomics.entry(addr).or_default().history.push(v);
            let idx = g.atomics[&addr].history.len() - 1;
            g.floors.insert((tid, addr), idx);
        } else {
            g.floors.insert((tid, addr), latest_idx);
        }
        Some(result)
    })
    .flatten()
}

/// Model-mutex acquire: blocks (in model time) while another model
/// thread owns `addr`. Returns true when the access was modeled.
pub(crate) fn mutex_lock(addr: usize) -> bool {
    with_model(|ctx, tid| {
        let Some(mut g) = scheduled(ctx, tid, || format!("mutex lock @{addr:#x}")) else {
            return false; // tearing down: caller takes the real lock directly
        };
        while let Some(&owner) = g.mutex_owner.get(&addr) {
            debug_assert_ne!(owner, tid, "model mutex is not reentrant");
            g.statuses[tid] = Status::BlockedMutex(addr);
            g.pick_next(true);
            loop {
                if g.aborting {
                    drop(g);
                    abort_point();
                    return false;
                }
                if g.current == tid {
                    break;
                }
                ctx.cv.notify_all();
                g = ctx.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
        g.mutex_owner.insert(addr, tid);
        true
    })
    .unwrap_or(false)
}

/// Model-mutex release: wakes every model thread parked on `addr` (they
/// re-race for it under the scheduler).
pub(crate) fn mutex_unlock(addr: usize) {
    with_model(|ctx, tid| {
        let mut g = match scheduled(ctx, tid, || format!("mutex unlock @{addr:#x}")) {
            Some(g) => g,
            // Tearing down: still release model ownership so free-running
            // threads are not wedged behind a dead owner.
            None => lock(ctx),
        };
        g.mutex_owner.remove(&addr);
        for s in g.statuses.iter_mut() {
            if *s == Status::BlockedMutex(addr) {
                *s = Status::Runnable;
            }
        }
        ctx.cv.notify_all();
    });
}

/// Register a model thread and start its OS carrier. Returns the model
/// tid, or `None` when called outside an execution.
pub(crate) fn spawn_thread(f: impl FnOnce() + Send + 'static) -> Option<usize> {
    with_model(|ctx, tid| {
        let new_tid = {
            let mut g = scheduled(ctx, tid, || "spawn".to_string())?;
            g.statuses.push(Status::Runnable);
            g.live += 1;
            g.statuses.len() - 1
        };
        let ctx2 = ctx.clone();
        let h = std::thread::spawn(move || run_model_thread(ctx2, new_tid, f));
        ctx.handles.lock().unwrap_or_else(|e| e.into_inner()).push(h);
        Some(new_tid)
    })
    .flatten()
}

/// Block until model thread `target` finishes.
pub(crate) fn join_thread(target: usize) {
    with_model(|ctx, tid| {
        let Some(mut g) = scheduled(ctx, tid, || format!("join T{target}")) else {
            return;
        };
        while g.statuses[target] != Status::Finished {
            g.statuses[tid] = Status::BlockedJoin(target);
            g.pick_next(true);
            loop {
                if g.aborting {
                    drop(g);
                    abort_point();
                    return;
                }
                if g.current == tid {
                    break;
                }
                ctx.cv.notify_all();
                g = ctx.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
    });
}

// ---- heap tracking ------------------------------------------------------

/// A `Box` entered raw-pointer life (via `Box::into_raw`).
pub(crate) fn heap_alloc(addr: usize) {
    with_model(|ctx, _| {
        let mut g = lock(ctx);
        if g.aborting {
            return;
        }
        g.allocs.insert(addr, 0);
    });
}

/// A raw pointer is about to be reconstituted and dropped. Aborts the
/// execution if the allocation is unknown (double free) or a reader
/// guard still references it (use-after-retire: freeing it would leave
/// the guard dangling). Returns false when the caller must SKIP the
/// real drop (the pointer is violation evidence, or teardown is
/// leaking deliberately).
pub(crate) fn heap_free(addr: usize) -> bool {
    let abort = match with_model(|ctx, tid| {
        let mut g = lock(ctx);
        if g.aborting {
            return true; // tearing down: leak rather than touch evidence
        }
        match g.allocs.get(&addr) {
            None => {
                g.record_violation(
                    "double-free",
                    format!("T{tid} frees {addr:#x}, which is not a live tracked allocation"),
                );
                true
            }
            Some(&retained) if retained > 0 => {
                g.record_violation(
                    "use-after-reclaim",
                    format!(
                        "T{tid} reclaims {addr:#x} while {retained} reader guard(s) still \
                         reference it — the epoch protocol exposed a freed value"
                    ),
                );
                true
            }
            Some(_) => {
                g.allocs.remove(&addr);
                false
            }
        }
    }) {
        Some(abort) => abort,
        None => return true, // not modeled: free normally
    };
    if abort {
        abort_point();
        return false;
    }
    true
}

/// A reader guard now references `addr`.
pub(crate) fn heap_retain(addr: usize) {
    let abort = with_model(|ctx, tid| {
        let mut g = lock(ctx);
        if g.aborting {
            return false;
        }
        match g.allocs.get_mut(&addr) {
            Some(n) => {
                *n += 1;
                false
            }
            None => {
                g.record_violation(
                    "use-after-reclaim",
                    format!(
                        "T{tid} creates a reader guard over {addr:#x}, which was already \
                         reclaimed — the guard would dereference freed memory"
                    ),
                );
                true
            }
        }
    })
    .unwrap_or(false);
    if abort {
        abort_point();
    }
}

/// A reader guard dropped its reference to `addr`.
pub(crate) fn heap_release(addr: usize) {
    with_model(|ctx, _| {
        let mut g = lock(ctx);
        if let Some(n) = g.allocs.get_mut(&addr) {
            *n = n.saturating_sub(1);
        }
        // Unknown address during teardown: the violation (if any) was
        // already recorded at free time.
    });
}

// ---- execution driver ---------------------------------------------------

fn run_model_thread(ctx: Arc<Ctx>, tid: usize, f: impl FnOnce()) {
    TL.with(|tl| *tl.borrow_mut() = Some((ctx.clone(), tid)));
    // Park until scheduled for the first time.
    {
        let mut g = lock(&ctx);
        while g.current != tid && !g.aborting {
            g = ctx.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.aborting {
            drop(g);
            finish_thread(&ctx, tid);
            TL.with(|tl| *tl.borrow_mut() = None);
            return;
        }
    }
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    if let Err(payload) = result {
        if payload.downcast_ref::<Abort>().is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let mut g = lock(&ctx);
            g.record_violation("panic", format!("T{tid} panicked: {msg}"));
            ctx.cv.notify_all();
        }
    }
    finish_thread(&ctx, tid);
    TL.with(|tl| *tl.borrow_mut() = None);
}

fn finish_thread(ctx: &Ctx, tid: usize) {
    let mut g = lock(ctx);
    g.statuses[tid] = Status::Finished;
    g.live -= 1;
    for s in g.statuses.iter_mut() {
        if *s == Status::BlockedJoin(tid) {
            *s = Status::Runnable;
        }
    }
    if !g.aborting && g.live > 0 {
        g.pick_next(true);
    }
    ctx.cv.notify_all();
}

/// One execution: replay `path`, record fresh choices past it. Returns
/// the violation (if any) and the full choice path taken.
fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    path: Vec<Choice>,
    b: &Builder,
) -> (Option<Violation>, Vec<Choice>) {
    let ctx = Arc::new(Ctx {
        m: StdMutex::new(Inner {
            statuses: vec![Status::Runnable],
            current: 0,
            live: 1,
            choices: path,
            cursor: 0,
            preemptions: 0,
            bound: b.preemption_bound,
            steps: 0,
            max_steps: b.max_steps,
            atomics: HashMap::new(),
            floors: HashMap::new(),
            mutex_owner: HashMap::new(),
            allocs: HashMap::new(),
            trace: Vec::new(),
            violation: None,
            aborting: false,
        }),
        cv: Condvar::new(),
        handles: StdMutex::new(Vec::new()),
    });
    let root = {
        let ctx = ctx.clone();
        std::thread::spawn(move || run_model_thread(ctx.clone(), 0, move || f()))
    };
    // Wait for the whole execution to finish (every model thread,
    // including ones spawned mid-run).
    {
        let mut g = lock(&ctx);
        while g.live > 0 {
            g = ctx.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.violation.is_none() && !g.allocs.is_empty() {
            let mut addrs: Vec<usize> = g.allocs.keys().copied().collect();
            addrs.sort_unstable();
            let shown: Vec<String> = addrs.iter().take(4).map(|a| format!("{a:#x}")).collect();
            g.record_violation(
                "leak",
                format!(
                    "{} tracked allocation(s) still live at execution end ({}, ..)",
                    addrs.len(),
                    shown.join(", ")
                ),
            );
        }
    }
    let _ = root.join();
    // Take the handles out before joining: every model thread has
    // already finished (live == 0), but joining while holding the
    // registry lock would deadlock against a late registration.
    let spawned = {
        let mut g = ctx.handles.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *g)
    };
    for h in spawned {
        let _ = h.join();
    }
    let mut g = lock(&ctx);
    (g.violation.take(), std::mem::take(&mut g.choices))
}

/// Advance the DFS path to the next unexplored branch. False when the
/// whole frontier is exhausted.
fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

fn explore(b: &Builder, f: Arc<dyn Fn() + Send + Sync>) -> Report {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut path: Vec<Choice> = Vec::new();
    let mut executions = 0u64;
    loop {
        executions += 1;
        let (violation, taken) = run_once(f.clone(), path, b);
        if violation.is_some() {
            return Report { executions, complete: false, violation };
        }
        path = taken;
        if !advance(&mut path) {
            return Report { executions, complete: true, violation: None };
        }
        if executions >= b.max_executions {
            return Report { executions, complete: false, violation: None };
        }
    }
}

/// True when `ord` permits reading values older than the newest write
/// (everything weaker than `SeqCst` loads get modeled stale reads; the
/// model treats `Acquire` like `SeqCst` for loads paired with modeled
/// release stores, which is conservative for bug finding on SC-heavy
/// protocols but exact for `Relaxed`).
pub(crate) fn stale_reads(ord: Ordering) -> bool {
    matches!(ord, Ordering::Relaxed)
}
