//! Raw-allocation tracking for code under test.
//!
//! Lock-free structures that own values through `Box::into_raw` /
//! `Box::from_raw` report their allocation lifecycle here; the runtime
//! turns protocol mistakes into reported violations instead of
//! undefined behaviour:
//!
//! * freeing an address that is not a live tracked allocation is a
//!   **double free**;
//! * freeing an address a reader guard still references is a
//!   **use-after-reclaim** (the epoch protocol let reclamation catch up
//!   with an active reader);
//! * creating a guard over an already-freed address is likewise a
//!   **use-after-reclaim**;
//! * allocations still live when the execution ends are a **leak**.
//!
//! Outside a model execution every call is a no-op.

use crate::runtime;

/// Record that `addr` (from `Box::into_raw`) entered raw-pointer life.
pub fn on_alloc(addr: usize) {
    runtime::heap_alloc(addr);
}

/// Record that `addr` is about to be freed via `Box::from_raw`. Returns
/// false when the caller must skip the real drop: the allocation is
/// evidence of a just-reported violation (or teardown is already in
/// progress) and freeing it would turn a *modeled* use-after-reclaim
/// into a real one.
#[must_use]
pub fn on_free(addr: usize) -> bool {
    runtime::heap_free(addr)
}

/// Record that a reader guard now references `addr`.
pub fn retain(addr: usize) {
    runtime::heap_retain(addr);
}

/// Record that a reader guard dropped its reference to `addr`.
pub fn release(addr: usize) {
    runtime::heap_release(addr);
}
