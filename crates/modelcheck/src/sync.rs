//! A modeled mutex with the `parking_lot` guard-returning API.
//!
//! Ownership is tracked by the model runtime (acquire and release are
//! scheduling points; contention blocks in *model* time, so the DFS
//! explores every acquisition order), while the data itself sits in a
//! real `std::sync::Mutex` — the baton discipline guarantees the real
//! lock is uncontended whenever the model grants ownership. Outside an
//! execution the model layer disappears and this is just a plain mutex.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::runtime;

/// A mutual-exclusion lock; see the module docs.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    cell: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    g: Option<StdMutexGuard<'a, T>>,
    addr: usize,
    modeled: bool,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { cell: StdMutex::new(value) }
    }

    /// Acquire the lock, blocking (in model time, inside an execution)
    /// until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let addr = &self.cell as *const StdMutex<T> as usize;
        let modeled = runtime::mutex_lock(addr);
        MutexGuard {
            g: Some(self.cell.lock().unwrap_or_else(|e| e.into_inner())),
            addr,
            modeled,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.cell.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard accessed after release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard accessed after release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model release: when the
        // runtime hands the next owner the baton, the real mutex must
        // already be free.
        drop(self.g.take());
        if self.modeled {
            runtime::mutex_unlock(self.addr);
        }
    }
}
