//! Modeled atomics, API-compatible with `std::sync::atomic` for the
//! subset the workspace's lock-free code uses.
//!
//! Each atomic keeps its real value in a `std` atomic (so free-running
//! code outside an execution behaves normally) and, inside a model
//! execution, additionally records its **modification order** with the
//! runtime. Every access is a scheduling point. `SeqCst` and `Acquire`
//! loads observe the newest entry; a `Relaxed` load is a *choice point*
//! that may observe any entry at or after the loading thread's
//! coherence floor — so `Relaxed` vs `SeqCst` visibility differences
//! are actually explored, not assumed away. Read-modify-write ops
//! always act on the newest entry, as the memory model requires.

pub use std::sync::atomic::Ordering;
use std::sync::atomic::{AtomicPtr as StdAtomicPtr, AtomicU64 as StdAtomicU64};

use crate::runtime;

/// The `SeqCst` std ordering used for the backing cell: the cell always
/// holds the newest value in modification order; staleness is modeled
/// at the runtime layer, not in the cell.
const CELL: Ordering = Ordering::SeqCst;

/// A modeled `u64` atomic.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    cell: StdAtomicU64,
}

impl AtomicU64 {
    /// A new atomic holding `v`.
    pub fn new(v: u64) -> AtomicU64 {
        AtomicU64 { cell: StdAtomicU64::new(v) }
    }

    fn addr(&self) -> usize {
        self as *const AtomicU64 as usize
    }

    /// Load; `Relaxed` may observe stale values inside a model run.
    pub fn load(&self, ord: Ordering) -> u64 {
        if runtime::stale_reads(ord) {
            if let Some(v) = runtime::atomic_op(
                self.addr(),
                self.cell.load(CELL),
                "load (Relaxed)",
                true,
                |latest| (latest, None),
            ) {
                return v;
            }
            return self.cell.load(ord);
        }
        runtime::atomic_op(self.addr(), self.cell.load(CELL), "load", false, |latest| {
            (latest, None)
        })
        .unwrap_or_else(|| self.cell.load(ord))
    }

    /// Store.
    pub fn store(&self, v: u64, _ord: Ordering) {
        runtime::atomic_op(self.addr(), self.cell.load(CELL), "store", false, |_latest| {
            (0, Some(v))
        });
        self.cell.store(v, CELL);
    }

    /// Fetch-add, returning the previous value.
    pub fn fetch_add(&self, n: u64, _ord: Ordering) -> u64 {
        match runtime::atomic_op(
            self.addr(),
            self.cell.load(CELL),
            "fetch_add",
            false,
            |latest| (latest, Some(latest.wrapping_add(n))),
        ) {
            Some(prev) => {
                self.cell.store(prev.wrapping_add(n), CELL);
                prev
            }
            None => self.cell.fetch_add(n, CELL),
        }
    }

    /// Fetch-max, returning the previous value.
    pub fn fetch_max(&self, n: u64, _ord: Ordering) -> u64 {
        match runtime::atomic_op(
            self.addr(),
            self.cell.load(CELL),
            "fetch_max",
            false,
            |latest| (latest, Some(latest.max(n))),
        ) {
            Some(prev) => {
                self.cell.store(prev.max(n), CELL);
                prev
            }
            None => self.cell.fetch_max(n, CELL),
        }
    }
}

/// A modeled pointer atomic.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    cell: StdAtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// A new atomic holding `p`.
    pub fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr { cell: StdAtomicPtr::new(p) }
    }

    fn addr(&self) -> usize {
        self as *const AtomicPtr<T> as usize
    }

    /// Load; `Relaxed` may observe stale pointers inside a model run.
    pub fn load(&self, ord: Ordering) -> *mut T {
        if runtime::stale_reads(ord) {
            if let Some(v) = runtime::atomic_op(
                self.addr(),
                self.cell.load(CELL) as usize as u64,
                "ptr load (Relaxed)",
                true,
                |latest| (latest, None),
            ) {
                return v as usize as *mut T;
            }
            return self.cell.load(ord);
        }
        runtime::atomic_op(
            self.addr(),
            self.cell.load(CELL) as usize as u64,
            "ptr load",
            false,
            |latest| (latest, None),
        )
        .map(|v| v as usize as *mut T)
        .unwrap_or_else(|| self.cell.load(ord))
    }

    /// Swap, returning the previous pointer.
    pub fn swap(&self, p: *mut T, _ord: Ordering) -> *mut T {
        match runtime::atomic_op(
            self.addr(),
            self.cell.load(CELL) as usize as u64,
            "ptr swap",
            false,
            |latest| (latest, Some(p as usize as u64)),
        ) {
            Some(prev) => {
                self.cell.store(p, CELL);
                prev as usize as *mut T
            }
            None => self.cell.swap(p, CELL),
        }
    }

    /// Exclusive non-modeled access. `&mut self` proves no other thread
    /// can observe the atomic, so this is not a scheduling point —
    /// teardown code (`Drop` with `&mut`) uses it to avoid flooding the
    /// trace with uncontended loads.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.cell.get_mut()
    }

    /// Compare-exchange on the newest value in modification order.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match runtime::atomic_op(
            self.addr(),
            self.cell.load(CELL) as usize as u64,
            "ptr compare_exchange",
            false,
            |latest| {
                if latest == current as usize as u64 {
                    (latest, Some(new as usize as u64))
                } else {
                    (latest, None)
                }
            },
        ) {
            Some(prev) => {
                if prev == current as usize as u64 {
                    self.cell.store(new, CELL);
                    Ok(current)
                } else {
                    Err(prev as usize as *mut T)
                }
            }
            None => self.cell.compare_exchange(current, new, CELL, CELL),
        }
    }
}
