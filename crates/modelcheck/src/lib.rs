//! `labflow-modelcheck` — a deterministic interleaving explorer for the
//! workspace's lock-free code, in the style of `loom`.
//!
//! Code under test swaps its `std::sync::atomic` / `std::sync::Mutex` /
//! `std::thread` imports for the modules here (the `labflow-mrv` crate
//! does this behind `cfg(labflow_model)` via its `sync` facade). Every
//! synchronization operation then becomes a *scheduling point* managed
//! by a cooperative scheduler: model threads are carried by OS threads
//! but exactly one runs at a time, and a stateless DFS replays recorded
//! schedules to enumerate every interleaving within a bounded number of
//! preemptive context switches.
//!
//! Beyond schedules, the model explores **weak-memory visibility**: each
//! atomic records its modification order, and a `Relaxed` load is a
//! choice point that may observe any write the loading thread has not
//! yet passed (its coherence floor). It also tracks raw allocations
//! ([`heap`]) so epoch-reclamation mistakes surface as reported
//! `use-after-reclaim` / `double-free` / `leak` violations — with the
//! full interleaving trace — instead of undefined behaviour.
//!
//! ```
//! use std::sync::Arc;
//! use labflow_modelcheck::{atomic::AtomicU64, atomic::Ordering, thread, Builder};
//!
//! let report = Builder::new().preemptions(2).check(|| {
//!     let a = Arc::new(AtomicU64::new(0));
//!     let a2 = a.clone();
//!     let t = thread::spawn(move || a2.fetch_add(1, Ordering::SeqCst));
//!     a.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(a.load(Ordering::SeqCst), 2);
//! });
//! report.assert_ok();
//! ```
//!
//! Scope: the model is sequentially consistent for `SeqCst`/`Acquire`/
//! `Release` accesses and exact for `Relaxed` load visibility. That is
//! conservative (it can miss reorderings a real weak machine performs
//! on non-`SeqCst` accesses) but sound for the protocols in this
//! workspace, which are `SeqCst` at every cross-thread edge and use
//! `Relaxed` only where staleness is claimed harmless — exactly the
//! claim the explorer checks.

mod runtime;

pub mod atomic;
pub mod heap;
pub mod sync;
pub mod thread;

pub use runtime::{Builder, Report, Violation};

/// Explore `f` with the default bounds and panic (with the violating
/// interleaving) if anything is wrong; returns the [`Report`] so the
/// caller can log how many interleavings were covered.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f).assert_ok()
}
