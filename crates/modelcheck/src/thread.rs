//! Model threads: cooperative threads carried by OS threads, scheduled
//! one at a time by the runtime's baton. Must be used inside a
//! [`crate::Builder::check`] closure.

use std::sync::{Arc, Mutex as StdMutex};

use crate::runtime;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

/// Spawn a model thread running `f`. Panics when called outside a model
/// execution — model scenarios must create all concurrency through this
/// function so the scheduler sees it.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot = result.clone();
    let tid = runtime::spawn_thread(move || {
        let v = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
    })
    .expect("modelcheck::thread::spawn used outside a model execution");
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Wait (in model time) for the thread to finish and take its
    /// result.
    pub fn join(self) -> T {
        runtime::join_thread(self.tid);
        match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => v,
            // The joined thread aborted before producing a value: this
            // execution is tearing down, so tear down too.
            None => {
                runtime::propagate_abort();
                unreachable!("joined thread produced no value yet execution is live")
            }
        }
    }
}
