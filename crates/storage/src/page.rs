//! Slotted-page layout shared by the page-based backends.
//!
//! A page payload is a byte array (in practice [`crate::PAGE_PAYLOAD`]
//! bytes — the physical page minus the page file's verification
//! header):
//!
//! ```text
//! +-----------+----------------------+ .... +------------------+
//! | header 4B | slot dir (4B/slot) ->| free |<- records (down) |
//! +-----------+----------------------+ .... +------------------+
//! header: slot_count u16 | free_end u16
//! slot:   offset u16 (0xFFFF = free) | len u16
//! ```
//!
//! Records grow downward from the end of the buffer; the slot directory
//! grows upward after the header. Deleting a record frees its slot for
//! reuse; the record bytes are reclaimed lazily by [`compact`]. All
//! decoding is bounds-checked: a malformed directory yields `None`s and
//! no-ops, never a panic — corrupt payloads are caught upstream by the
//! page file's checksums, and this layer must stay total even on bytes
//! that slipped past it.

use crate::ids::Slot;

const HEADER: usize = 4;
const SLOT_BYTES: usize = 4;
const FREE_SLOT: u16 = 0xFFFF;

/// Largest record payload a single page can hold.
pub const MAX_RECORD: usize = crate::PAGE_PAYLOAD - HEADER - SLOT_BYTES;

#[inline]
fn get_u16(buf: &[u8], at: usize) -> u16 {
    match buf.get(at..at.saturating_add(2)) {
        Some(&[a, b]) => u16::from_le_bytes([a, b]),
        _ => 0,
    }
}

#[inline]
fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    if let Some(dst) = buf.get_mut(at..at.saturating_add(2)) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

#[inline]
fn copy_into(buf: &mut [u8], at: usize, data: &[u8]) {
    if let Some(dst) = buf.get_mut(at..at.saturating_add(data.len())) {
        dst.copy_from_slice(data);
    }
}

/// Initialize an empty page in `buf`.
pub fn init(buf: &mut [u8]) {
    debug_assert!(buf.len() >= HEADER && buf.len() <= u16::MAX as usize);
    put_u16(buf, 0, 0); // slot_count
    put_u16(buf, 2, buf.len() as u16); // free_end
}

/// Number of slots in the directory (including freed ones).
pub fn slot_count(buf: &[u8]) -> u16 {
    get_u16(buf, 0)
}

fn free_end(buf: &[u8]) -> usize {
    get_u16(buf, 2) as usize
}

fn slot_entry(buf: &[u8], slot: u16) -> (u16, u16) {
    let at = HEADER + slot as usize * SLOT_BYTES;
    (get_u16(buf, at), get_u16(buf, at + 2))
}

fn set_slot_entry(buf: &mut [u8], slot: u16, offset: u16, len: u16) {
    let at = HEADER + slot as usize * SLOT_BYTES;
    put_u16(buf, at, offset);
    put_u16(buf, at + 2, len);
}

fn dir_end(buf: &[u8]) -> usize {
    HEADER + slot_count(buf) as usize * SLOT_BYTES
}

/// Contiguous free bytes available for one more record of unknown size
/// (conservatively assumes a new slot entry is needed).
pub fn free_space(buf: &[u8]) -> usize {
    let gap = free_end(buf).saturating_sub(dir_end(buf));
    gap.saturating_sub(SLOT_BYTES)
}

/// Total live payload bytes on the page.
pub fn live_bytes(buf: &[u8]) -> usize {
    let n = slot_count(buf);
    (0..n)
        .map(|s| {
            let (off, len) = slot_entry(buf, s);
            if off == FREE_SLOT {
                0
            } else {
                len as usize
            }
        })
        .sum()
}

/// Bytes that [`compact`] could reclaim (dead record bytes).
pub fn dead_bytes(buf: &[u8]) -> usize {
    let record_area = buf.len().saturating_sub(free_end(buf));
    record_area.saturating_sub(live_bytes(buf))
}

fn find_free_slot(buf: &[u8]) -> Option<u16> {
    let n = slot_count(buf);
    (0..n).find(|&s| slot_entry(buf, s).0 == FREE_SLOT)
}

/// Insert `data` into the page, returning the slot, or `None` if it does
/// not fit even after compaction.
pub fn insert(buf: &mut [u8], data: &[u8]) -> Option<Slot> {
    if data.len() > MAX_RECORD {
        return None;
    }
    let reuse = find_free_slot(buf);
    let slot_cost = if reuse.is_some() { 0 } else { SLOT_BYTES };
    let gap = free_end(buf).saturating_sub(dir_end(buf));
    if gap < data.len() + slot_cost {
        if dead_bytes(buf) + gap >= data.len() + slot_cost {
            compact(buf);
        } else {
            return None;
        }
    }
    let gap = free_end(buf).saturating_sub(dir_end(buf));
    if gap < data.len() + slot_cost {
        return None;
    }
    let new_end = free_end(buf) - data.len();
    copy_into(buf, new_end, data);
    put_u16(buf, 2, new_end as u16);
    let slot = match reuse {
        Some(s) => s,
        None => {
            let s = slot_count(buf);
            put_u16(buf, 0, s + 1);
            s
        }
    };
    set_slot_entry(buf, slot, new_end as u16, data.len() as u16);
    Some(Slot(slot))
}

/// Read the record in `slot`, if live.
pub fn read(buf: &[u8], slot: Slot) -> Option<&[u8]> {
    if slot.0 >= slot_count(buf) {
        return None;
    }
    let (off, len) = slot_entry(buf, slot.0);
    if off == FREE_SLOT {
        return None;
    }
    buf.get(off as usize..off as usize + len as usize)
}

/// Remove the record in `slot`. Returns `false` if the slot was not live.
pub fn remove(buf: &mut [u8], slot: Slot) -> bool {
    if slot.0 >= slot_count(buf) {
        return false;
    }
    let (off, _) = slot_entry(buf, slot.0);
    if off == FREE_SLOT {
        return false;
    }
    set_slot_entry(buf, slot.0, FREE_SLOT, 0);
    true
}

/// Update the record in `slot` in place if possible, otherwise relocate it
/// within the page (compacting if needed). Returns `false` if the page
/// cannot hold the new value; the old value is left intact in that case.
pub fn update(buf: &mut [u8], slot: Slot, data: &[u8]) -> bool {
    if slot.0 >= slot_count(buf) || data.len() > MAX_RECORD {
        return false;
    }
    let (off, len) = slot_entry(buf, slot.0);
    if off == FREE_SLOT {
        return false;
    }
    if data.len() <= len as usize {
        let off = off as usize;
        copy_into(buf, off, data);
        set_slot_entry(buf, slot.0, off as u16, data.len() as u16);
        return true;
    }
    // Relocate: the slot keeps its index, so callers' object table stays valid.
    let gap = free_end(buf).saturating_sub(dir_end(buf));
    let reclaimable = dead_bytes(buf) + len as usize;
    if gap + reclaimable < data.len() {
        return false;
    }
    set_slot_entry(buf, slot.0, FREE_SLOT, 0);
    if free_end(buf).saturating_sub(dir_end(buf)) < data.len() {
        compact(buf);
    }
    let new_end = free_end(buf) - data.len();
    copy_into(buf, new_end, data);
    put_u16(buf, 2, new_end as u16);
    set_slot_entry(buf, slot.0, new_end as u16, data.len() as u16);
    true
}

/// Rewrite all live records to the end of the page, squeezing out dead
/// bytes. Slot indices are preserved.
pub fn compact(buf: &mut [u8]) {
    let n = slot_count(buf);
    let mut live: Vec<(u16, Vec<u8>)> = Vec::with_capacity(n as usize);
    for s in 0..n {
        let (off, len) = slot_entry(buf, s);
        if off != FREE_SLOT {
            if let Some(rec) = buf.get(off as usize..(off + len) as usize) {
                live.push((s, rec.to_vec()));
            }
        }
    }
    let mut end = buf.len();
    for (s, data) in &live {
        end -= data.len();
        copy_into(buf, end, data);
        set_slot_entry(buf, *s, end as u16, data.len() as u16);
    }
    put_u16(buf, 2, end as u16);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; crate::PAGE_PAYLOAD];
        init(&mut buf);
        buf
    }

    #[test]
    fn insert_read_round_trip() {
        let mut p = fresh();
        let a = insert(&mut p, b"alpha").unwrap();
        let b = insert(&mut p, b"beta").unwrap();
        assert_ne!(a, b);
        assert_eq!(read(&p, a).unwrap(), b"alpha");
        assert_eq!(read(&p, b).unwrap(), b"beta");
    }

    #[test]
    fn empty_record_is_fine() {
        let mut p = fresh();
        let s = insert(&mut p, b"").unwrap();
        assert_eq!(read(&p, s).unwrap(), b"");
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut p = fresh();
        let data = vec![7u8; MAX_RECORD];
        let s = insert(&mut p, &data).unwrap();
        assert_eq!(read(&p, s).unwrap(), &data[..]);
        assert!(insert(&mut p, b"x").is_none());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = fresh();
        assert!(insert(&mut p, &vec![0u8; MAX_RECORD + 1]).is_none());
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut p = fresh();
        let a = insert(&mut p, b"one").unwrap();
        let _b = insert(&mut p, b"two").unwrap();
        assert!(remove(&mut p, a));
        assert!(!remove(&mut p, a), "double remove must fail");
        assert!(read(&p, a).is_none());
        let c = insert(&mut p, b"three").unwrap();
        assert_eq!(c, a, "freed slot index should be reused");
        assert_eq!(read(&p, c).unwrap(), b"three");
    }

    #[test]
    fn update_in_place_shrink_and_grow() {
        let mut p = fresh();
        let s = insert(&mut p, b"0123456789").unwrap();
        assert!(update(&mut p, s, b"abc"));
        assert_eq!(read(&p, s).unwrap(), b"abc");
        assert!(update(&mut p, s, b"a-longer-value-than-before"));
        assert_eq!(read(&p, s).unwrap(), b"a-longer-value-than-before");
    }

    #[test]
    fn update_too_large_leaves_old_value() {
        let mut p = fresh();
        let filler = insert(&mut p, &vec![1u8; MAX_RECORD - 64]).unwrap();
        let s = insert(&mut p, b"small").unwrap();
        assert!(!update(&mut p, s, &[2u8; 200]));
        assert_eq!(read(&p, s).unwrap(), b"small");
        assert_eq!(read(&p, filler).unwrap().len(), MAX_RECORD - 64);
    }

    #[test]
    fn compaction_reclaims_dead_bytes() {
        let mut p = fresh();
        let mut slots = Vec::new();
        for i in 0..8 {
            slots.push(insert(&mut p, &vec![i as u8; 400]).unwrap());
        }
        // Free every other record, then insert something that only fits
        // after compaction.
        for s in slots.iter().step_by(2) {
            assert!(remove(&mut p, *s));
        }
        assert!(dead_bytes(&p) >= 4 * 400);
        let big = insert(&mut p, &vec![9u8; 1200]).expect("fits after compaction");
        assert_eq!(read(&p, big).unwrap(), &vec![9u8; 1200][..]);
        // Survivors unharmed.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(read(&p, *s).unwrap().len(), 400);
        }
    }

    #[test]
    fn fill_page_until_full_then_free_space_is_small() {
        let mut p = fresh();
        let mut count = 0;
        while insert(&mut p, &[0u8; 100]).is_some() {
            count += 1;
        }
        assert!(count >= 35, "expected ~39 inserts of 104B, got {count}");
        assert!(free_space(&p) < 104);
        assert_eq!(live_bytes(&p), count * 100);
    }

    #[test]
    fn read_bad_slot_is_none() {
        let p = fresh();
        assert!(read(&p, Slot(0)).is_none());
        assert!(read(&p, Slot(999)).is_none());
    }

    #[test]
    fn update_relocates_within_page_and_preserves_others() {
        let mut p = fresh();
        let a = insert(&mut p, &vec![1u8; 1000]).unwrap();
        let b = insert(&mut p, &vec![2u8; 1000]).unwrap();
        let c = insert(&mut p, &vec![3u8; 1000]).unwrap();
        remove(&mut p, b);
        // Growing `a` beyond its slot forces relocation + compaction.
        assert!(update(&mut p, a, &vec![9u8; 1800]));
        assert_eq!(read(&p, a).unwrap(), &vec![9u8; 1800][..]);
        assert_eq!(read(&p, c).unwrap(), &vec![3u8; 1000][..]);
    }
}
