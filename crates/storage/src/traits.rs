//! The [`StorageManager`] trait: the narrow interface between LabBase and
//! the storage managers — the Rust analogue of the "persistent C++"
//! boundary in the paper, which made it possible to run virtually the
//! same LabBase implementation over ObjectStore and Texas.

use crate::error::Result;
use crate::ids::{ClusterHint, Oid, SegmentId, TxnId};
use crate::stats::StatsSnapshot;

/// Per-segment size information for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment id.
    pub seg: SegmentId,
    /// Pages owned by the segment.
    pub pages: usize,
    /// Bytes owned by the segment (pages × page size).
    pub bytes: u64,
}

/// The uniform storage-manager interface.
///
/// All object data is opaque bytes; LabBase performs its own encoding.
/// Reads outside transactions see committed state; mutation requires an
/// open transaction.
pub trait StorageManager: Send + Sync {
    /// Human-readable server-version name as used in the paper's tables
    /// ("OStore", "Texas", "Texas+TC", "OStore-mm", "Texas-mm").
    fn name(&self) -> &'static str;

    /// Begin a transaction. Single-user backends refuse a second
    /// concurrent transaction with
    /// [`StorageError::SingleUser`](crate::StorageError::SingleUser).
    fn begin(&self) -> Result<TxnId>;

    /// Commit a transaction, releasing its locks.
    fn commit(&self, txn: TxnId) -> Result<()>;

    /// Abort a transaction, rolling back its effects. Backends without an
    /// undo capability (Texas) return `Unsupported`.
    fn abort(&self, txn: TxnId) -> Result<()>;

    /// Allocate a new object in `seg` with clustering hint `hint`.
    fn allocate(&self, txn: TxnId, seg: SegmentId, hint: ClusterHint, data: &[u8])
        -> Result<Oid>;

    /// Read an object (committed state; no lock held afterwards).
    fn read(&self, oid: Oid) -> Result<Vec<u8>>;

    /// Read an object under a shared lock held by `txn` until commit.
    fn read_in(&self, txn: TxnId, oid: Oid) -> Result<Vec<u8>>;

    /// Overwrite an object.
    fn update(&self, txn: TxnId, oid: Oid, data: &[u8]) -> Result<()>;

    /// Delete an object.
    fn free(&self, txn: TxnId, oid: Oid) -> Result<()>;

    /// Whether the object exists (committed state).
    fn exists(&self, oid: Oid) -> bool;

    /// Flush all state to stable storage and truncate the log.
    fn checkpoint(&self) -> Result<()>;

    /// Point-in-time counters.
    fn stats(&self) -> StatsSnapshot;

    /// On-disk footprint in bytes; `None` for main-memory backends
    /// (rendered as "—" in the paper's tables).
    fn db_size_bytes(&self) -> Result<Option<u64>>;

    /// Number of live objects.
    fn object_count(&self) -> usize;

    /// Per-segment sizes (empty for backends without segments).
    fn segments(&self) -> Vec<SegmentInfo>;

    /// Whether data survives a restart.
    fn is_persistent(&self) -> bool;

    /// Whether concurrent transactions are supported.
    fn supports_concurrency(&self) -> bool;

    /// Flush and empty the cache so the next accesses are cold. No-op for
    /// main-memory backends. Used by the clustering ablation.
    fn drop_caches(&self) -> Result<()>;
}
