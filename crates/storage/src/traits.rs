//! The [`StorageManager`] trait: the narrow interface between LabBase and
//! the storage managers — the Rust analogue of the "persistent C++"
//! boundary in the paper, which made it possible to run virtually the
//! same LabBase implementation over ObjectStore and Texas.

use crate::error::{Result, StorageError};
use crate::ids::{ClusterHint, Oid, SegmentId, TxnId};
use crate::stats::StatsSnapshot;
use crate::wal::{WalChunk, WalRecord};

/// Per-segment size information for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment id.
    pub seg: SegmentId,
    /// Pages owned by the segment.
    pub pages: usize,
    /// Bytes owned by the segment (pages × page size).
    pub bytes: u64,
}

/// A stable read timestamp: everything committed at or before `lsn` is
/// visible, nothing after. Obtained from
/// [`StorageManager::begin_snapshot`]; the `token` identifies the
/// snapshot in the backend's registry so version GC can honour it as a
/// low-water mark until [`StorageManager::release_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Commit LSN this snapshot reads at (inclusive).
    pub lsn: u64,
    /// Registry handle; meaningless to callers, needed by `release`.
    pub token: u64,
}

/// The uniform storage-manager interface.
///
/// All object data is opaque bytes; LabBase performs its own encoding.
/// Reads outside transactions see committed state; mutation requires an
/// open transaction.
pub trait StorageManager: Send + Sync {
    /// Human-readable server-version name as used in the paper's tables
    /// ("OStore", "Texas", "Texas+TC", "OStore-mm", "Texas-mm").
    fn name(&self) -> &'static str;

    /// Begin a transaction. Single-user backends refuse a second
    /// concurrent transaction with
    /// [`StorageError::SingleUser`](crate::StorageError::SingleUser).
    fn begin(&self) -> Result<TxnId>;

    /// Commit a transaction, releasing its locks.
    fn commit(&self, txn: TxnId) -> Result<()>;

    /// Abort a transaction, rolling back its effects. Backends without an
    /// undo capability (Texas) return `Unsupported`.
    fn abort(&self, txn: TxnId) -> Result<()>;

    /// Allocate a new object in `seg` with clustering hint `hint`.
    fn allocate(&self, txn: TxnId, seg: SegmentId, hint: ClusterHint, data: &[u8])
        -> Result<Oid>;

    /// Read an object (committed state; no lock held afterwards).
    fn read(&self, oid: Oid) -> Result<Vec<u8>>;

    /// Read an object under a shared lock held by `txn` until commit.
    fn read_in(&self, txn: TxnId, oid: Oid) -> Result<Vec<u8>>;

    /// Acquire `txn`'s exclusive lock on `oid` without reading or
    /// writing it, blocking up to the backend's lock timeout. Callers
    /// use this to serialize on a hot shared object *before* taking any
    /// in-process latch that a later [`update`](Self::update) would
    /// otherwise hold across the lock wait (a cross-lock convoy: the
    /// latch holder blocks on the storage lock while the storage-lock
    /// holder blocks on the latch). Backends without
    /// transaction-duration locks treat it as a no-op; the eventual
    /// write still conflict-checks at its own layer.
    fn lock_exclusive(&self, _txn: TxnId, _oid: Oid) -> Result<()> {
        Ok(())
    }

    /// Overwrite an object.
    fn update(&self, txn: TxnId, oid: Oid, data: &[u8]) -> Result<()>;

    /// Delete an object.
    fn free(&self, txn: TxnId, oid: Oid) -> Result<()>;

    /// Whether the object exists (committed state).
    fn exists(&self, oid: Oid) -> bool;

    /// Open a stable snapshot of the committed state. Every
    /// [`read_at`](Self::read_at) against it sees exactly the
    /// transactions committed when it was opened — concurrent writers
    /// neither block it nor appear in it. The default (for backends
    /// without version chains) reads latest-committed: `lsn` is
    /// `u64::MAX` and release is a no-op.
    fn begin_snapshot(&self) -> Result<Snapshot> {
        Ok(Snapshot { lsn: u64::MAX, token: 0 })
    }

    /// Release a snapshot, allowing version GC to reclaim the versions
    /// it pinned. Dropping a snapshot without releasing it pins the GC
    /// low-water mark forever.
    fn release_snapshot(&self, _snap: Snapshot) {}

    /// Number of snapshots currently registered (opened and not yet
    /// released). Backends without a registry report 0. The network
    /// front end asserts this drains to zero on graceful shutdown.
    fn open_snapshots(&self) -> usize {
        0
    }

    /// Read an object as of `snap`: the newest version committed at or
    /// before the snapshot's LSN. `UnknownObject` if the object did not
    /// exist (or was already deleted) at that point.
    fn read_at(&self, _snap: &Snapshot, oid: Oid) -> Result<Vec<u8>> {
        self.read(oid)
    }

    /// Whether the object existed as of `snap`.
    fn exists_at(&self, _snap: &Snapshot, oid: Oid) -> bool {
        self.exists(oid)
    }

    /// Read an object as seen by `txn`: its own uncommitted write if it
    /// has one, else latest-committed. Unlike [`read_in`](Self::read_in)
    /// this acquires no lock — it is the read-your-own-writes path for
    /// internal traversals inside an open transaction.
    fn read_for(&self, _txn: TxnId, oid: Oid) -> Result<Vec<u8>> {
        self.read(oid)
    }

    /// Whether the object exists as seen by `txn` (own writes included).
    fn exists_for(&self, _txn: TxnId, oid: Oid) -> bool {
        self.exists(oid)
    }

    /// Flush all state to stable storage and truncate the log.
    fn checkpoint(&self) -> Result<()>;

    /// Point-in-time counters.
    fn stats(&self) -> StatsSnapshot;

    /// On-disk footprint in bytes; `None` for main-memory backends
    /// (rendered as "—" in the paper's tables).
    fn db_size_bytes(&self) -> Result<Option<u64>>;

    /// Number of live objects.
    fn object_count(&self) -> usize;

    /// Per-segment sizes (empty for backends without segments).
    fn segments(&self) -> Vec<SegmentInfo>;

    /// Whether data survives a restart.
    fn is_persistent(&self) -> bool;

    /// Whether concurrent transactions are supported.
    fn supports_concurrency(&self) -> bool;

    /// Flush and empty the cache so the next accesses are cold. No-op for
    /// main-memory backends. Used by the clustering ablation.
    fn drop_caches(&self) -> Result<()>;

    // ---- replication (WAL shipping) -----------------------------------
    //
    // A primary streams its WAL to follower stores that re-apply each
    // committed transaction; a follower can be promoted after primary
    // loss. Only WAL-backed backends participate — the defaults report
    // `Unsupported` so MemStore and the Texas profiles stay honest.

    /// The checkpoint epoch stamped in the store's sealed metadata.
    /// Shipped chunks are tagged with it; a promoted follower re-seals
    /// at a higher epoch ([`promote_epoch`](Self::promote_epoch)), so a
    /// deposed primary's chunks are refused by the epoch fence.
    /// Backends without durable metadata report 0.
    fn store_epoch(&self) -> u64 {
        0
    }

    /// The flushed byte offset of the write-ahead log: the point up to
    /// which [`wal_stream_from`](Self::wal_stream_from) can serve, and
    /// the durability horizon a follower acks once it has applied and
    /// forced everything below it.
    fn replication_lsn(&self) -> Result<u64> {
        Err(StorageError::Unsupported("replication_lsn: backend has no write-ahead log"))
    }

    /// Read a chunk of whole, checksum-verified WAL frames starting at
    /// byte `from`, for shipping to a replication follower. The chunk
    /// ends at the last whole frame within `max_bytes` (always at least
    /// one frame when any is available past `from`).
    fn wal_stream_from(&self, from: u64, max_bytes: usize) -> Result<WalChunk> {
        let _ = (from, max_bytes);
        Err(StorageError::Unsupported("wal_stream_from: backend has no write-ahead log"))
    }

    /// Apply one committed, shipped transaction's operations to this
    /// (follower) store, atomically and durably: after `Ok`, a snapshot
    /// reader sees all of the transaction, and a crash of the follower
    /// preserves it. The caller groups shipped records by transaction
    /// and calls this only for transactions whose commit frame arrived.
    fn replica_apply_commit(&self, recs: &[WalRecord]) -> Result<()> {
        let _ = recs;
        Err(StorageError::Unsupported("replica_apply_commit: backend has no write-ahead log"))
    }

    /// Promote this (follower) store: checkpoint it with its sealed
    /// epoch raised to at least `floor` — one above every epoch the
    /// deposed primary could have stamped — so stale chunks from the
    /// old epoch are refused from now on.
    fn promote_epoch(&self, floor: u64) -> Result<()> {
        let _ = floor;
        Err(StorageError::Unsupported("promote_epoch: backend has no durable epoch"))
    }
}
