//! FNV-1a checksums shared by the WAL, the page file, and the meta file.
//!
//! FNV-1a is not cryptographic — it exists to catch torn writes, bit
//! rot, and misdirected I/O, not adversaries. The 32-bit variant is
//! used everywhere a frame or page already carries enough context
//! (length, offset, page id) that a 1-in-4-billion miss rate per check
//! is acceptable.

/// 32-bit FNV-1a over one buffer.
pub fn fnv1a(data: &[u8]) -> u32 {
    fnv1a_multi(&[data])
}

/// 32-bit FNV-1a over the concatenation of several buffers, without
/// materialising the concatenation. Callers mix positional context
/// (offsets, page ids) into the hash by passing it as a leading slice.
pub fn fnv1a_multi(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for part in parts {
        for &b in *part {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_matches_concatenation() {
        let a = b"hello ";
        let b = b"world";
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert_eq!(fnv1a_multi(&[a, b]), fnv1a(&joined));
    }

    #[test]
    fn known_vector() {
        // FNV-1a("") is the offset basis; a one-byte change moves the hash.
        assert_eq!(fnv1a(b""), 0x811c_9dc5);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
