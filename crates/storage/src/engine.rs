//! The page-based storage engine and the three persistent
//! storage-manager personalities built from it: [`OStore`], [`Texas`],
//! and [`TexasTc`].
//!
//! One engine, three [`Profile`]s — mirroring the paper's methodology of
//! running "virtually the same LabBase implementation" over different
//! storage managers so that only the storage architecture varies.
//!
//! Every persisted byte flows through a [`Vfs`]: production stores use
//! [`RealVfs`] (plain `std::fs`), while the crash-recovery torture
//! harness drives the same engine over a seeded `SimVfs` and pulls the
//! plug at arbitrary points. See `DESIGN.md` ("Fault model") for the
//! recovery invariants this module maintains.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};
use std::time::Duration;

use crate::buffer::BufferPool;
use crate::error::{RecoveryError, Result, StorageError};
use crate::heap::{Heap, HeapContention, Placement};
use crate::ids::{ClusterHint, Oid, PageId, SegmentId, TxnId};
use crate::lock::{LockManager, LockMode};
use crate::lock_order;
use crate::meta;
use crate::pagefile::PageFile;
use crate::stats::{StatsSnapshot, StorageStats};
use crate::traits::{SegmentInfo, Snapshot, StorageManager};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{Wal, WalChunk, WalRecord};
use crate::{PAGE_PAYLOAD, PAGE_SIZE};

/// Tuning options shared by all backends.
#[derive(Debug, Clone)]
pub struct Options {
    /// Buffer-pool capacity in pages. The benchmark sizes this small
    /// relative to the database so that locality effects are visible,
    /// just as the paper's 64 MB machines were small relative to their
    /// databases.
    pub buffer_pages: usize,
    /// Deadlock-avoidance lock timeout (OStore only).
    pub lock_timeout: Duration,
    /// Whether `commit` forces the log to disk (OStore only). The
    /// benchmark leaves this off and relies on checkpoints, keeping the
    /// comparison about locality rather than fsync latency. The crash
    /// harness turns it on: with it, a commit that returns `Ok` is
    /// guaranteed to survive power loss.
    pub sync_commit: bool,
    /// WAL idle-flush delay (OStore only). Commits no longer sleep a
    /// batching window: the dedicated log-writer thread coalesces every
    /// commit that arrives while a force is in flight into the next
    /// batch, so batching is a property of the pipeline, not of a
    /// configured delay. This knob now only controls how long appended
    /// records from transactions that have *not* committed may sit in
    /// the in-memory buffer before the log-writer writes them out in
    /// the background; `None` leaves them buffered until the next
    /// force.
    pub group_commit_window: Option<Duration>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            buffer_pages: 2048, // 8 MiB at 4 KiB pages
            lock_timeout: Duration::from_millis(500),
            sync_commit: false,
            group_commit_window: None,
        }
    }
}

/// A storage-manager personality.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Table name ("OStore", "Texas", "Texas+TC").
    pub name: &'static str,
    /// Page placement policy.
    pub placement: Placement,
    /// Number of placement segments.
    pub segments: u8,
    /// Whether a write-ahead log provides transaction durability and undo.
    pub wal: bool,
    /// Whether only one transaction may be active at a time.
    pub single_user: bool,
    /// Simulated per-object header bytes (swizzle-table entry etc.).
    pub extra_header: usize,
    /// Object alignment in the heap.
    pub align: usize,
    /// Whether first-touch page faults are charged as swizzles.
    pub count_swizzles: bool,
}

impl Profile {
    /// ObjectStore v3.0-like: four placement segments, lock-based
    /// concurrency, WAL durability, compact records.
    pub fn ostore() -> Self {
        Profile {
            name: "OStore",
            placement: Placement::Segments,
            segments: 4,
            wal: true,
            single_user: false,
            extra_header: 0,
            align: 1,
            count_swizzles: false,
        }
    }

    /// Texas v0.3-like: one address-ordered heap, pointer swizzling at
    /// page-fault time, single-user, checkpoint-only durability, fat
    /// per-object overhead (the paper's Texas databases were ~48% larger).
    pub fn texas() -> Self {
        Profile {
            name: "Texas",
            placement: Placement::AddressOrder,
            segments: 1,
            wal: false,
            single_user: true,
            extra_header: 88,
            align: 16,
            count_swizzles: true,
        }
    }

    /// Texas plus client-implemented clustering ("Texas+TC").
    pub fn texas_tc() -> Self {
        Profile { name: "Texas+TC", placement: Placement::ClientChunks, ..Profile::texas() }
    }
}

#[derive(Default)]
struct TxnState {
    /// Oids this transaction wrote (alloc/update/free), in touch order.
    /// Commit flips their pending versions to committed at one LSN;
    /// abort discards them. Duplicates are fine — the heap's
    /// `commit_version`/`discard_txn` are no-ops once the pending
    /// version is resolved.
    touched: Vec<Oid>,
}

/// Active-transaction table plus the checkpoint quiesce flag, guarded by
/// one mutex so "no transactions active" can be awaited atomically.
#[derive(Default)]
struct ActiveState {
    txns: HashMap<u64, TxnState>,
    /// A checkpoint is draining active transactions; new `begin`s wait.
    quiescing: bool,
    /// Transactions mid-`commit`/`abort`: already removed from `txns`
    /// but their log record (and, for abort, the in-memory rollback) is
    /// still being applied. A checkpoint that snapshots inside that
    /// window would fold unresolved effects into the durable image and
    /// then truncate the before-images that could undo them, so the
    /// quiesce waits for this to reach zero as well.
    resolving: usize,
}

/// What recovery must do to erase a loser transaction's first touch of
/// an object (the touch whose before-image is the last committed state).
enum LoserUndo {
    /// The loser allocated the object: it must not exist.
    Remove,
    /// The loser updated or freed it: restore the before-image.
    Restore(Vec<u8>),
}

/// A persistent storage manager: the common engine behind [`OStore`],
/// [`Texas`], and [`TexasTc`].
pub struct Engine {
    profile: Profile,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    heap: Heap,
    pool: Arc<BufferPool>,
    file: Arc<PageFile>,
    wal: Option<Arc<Wal>>,
    locks: Option<LockManager>,
    stats: Arc<StorageStats>,
    active: StdMutex<ActiveState>,
    /// Signalled when the active-transaction table drains or a
    /// checkpoint finishes quiescing.
    active_changed: Condvar,
    next_txn: AtomicU64,
    /// Checkpoint epoch: stamped into the metadata header and the WAL's
    /// reset frame so recovery can tell whether the log on disk belongs
    /// to the metadata on disk (a crash can separate the two).
    epoch: AtomicU64,
    /// Set when a logged operation failed mid-apply: the in-memory state
    /// may disagree with what the log promises. A wounded engine refuses
    /// to checkpoint (which would persist the disagreement); reopening
    /// runs recovery from the log and heals it.
    wounded: AtomicBool,
    sync_commit: bool,
    /// Serialises commit visibility flips so each commit's versions
    /// appear atomically at one LSN (rank
    /// [`lock_order::ENGINE_COMMIT_VIS`]).
    vis: StdMutex<()>,
    /// Newest commit LSN whose versions are fully published. Snapshots
    /// read this (Acquire) and therefore see all-or-nothing of every
    /// transaction.
    last_visible: AtomicU64,
    /// Open snapshots: token → pinned LSN. The minimum pinned LSN is
    /// the version-GC low-water mark (rank
    /// [`lock_order::ENGINE_SNAPSHOTS`]).
    snapshots: StdMutex<HashMap<u64, u64>>,
    next_snap: AtomicU64,
}

impl Engine {
    fn paths(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
        (dir.join("data.pg"), dir.join("store.meta"), dir.join("wal.log"))
    }

    /// Create a fresh store at `dir` with the given profile, on the real
    /// filesystem.
    pub fn create(dir: &Path, profile: Profile, opts: Options) -> Result<Engine> {
        Self::create_with(RealVfs::arc(), dir, profile, opts)
    }

    /// Create a fresh store at `dir` on an arbitrary [`Vfs`].
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        profile: Profile,
        opts: Options,
    ) -> Result<Engine> {
        vfs.create_dir_all(dir)?;
        let (data_path, meta_path, wal_path) = Self::paths(dir);
        if vfs.exists(&meta_path) {
            return Err(StorageError::BadPath(format!(
                "store already exists at {}",
                dir.display()
            )));
        }
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::create(&vfs, &data_path, stats.clone())?);
        let pool = Arc::new(BufferPool::new(
            file.clone(),
            stats.clone(),
            opts.buffer_pages,
            profile.count_swizzles,
        ));
        let heap = Heap::new(
            pool.clone(),
            file.clone(),
            stats.clone(),
            profile.placement,
            profile.segments,
            profile.extra_header,
            profile.align,
        );
        let wal = if profile.wal {
            Some(Arc::new(Wal::create(&vfs, &wal_path, stats.clone(), opts.group_commit_window)?))
        } else {
            None
        };
        Self::wire_steal_guard(&pool, &wal);
        let locks = if profile.single_user {
            None
        } else {
            Some(LockManager::new(opts.lock_timeout))
        };
        let engine = Engine {
            profile,
            vfs,
            dir: dir.to_path_buf(),
            heap,
            pool,
            file,
            wal,
            locks,
            stats,
            active: StdMutex::new(ActiveState::default()),
            active_changed: Condvar::new(),
            next_txn: AtomicU64::new(1),
            epoch: AtomicU64::new(0),
            wounded: AtomicBool::new(false),
            sync_commit: opts.sync_commit,
            vis: StdMutex::new(()),
            last_visible: AtomicU64::new(0),
            snapshots: StdMutex::new(HashMap::new()),
            next_snap: AtomicU64::new(1),
        };
        // Establish a valid empty checkpoint so reopen works immediately.
        engine.checkpoint()?;
        Ok(engine)
    }

    /// Open an existing store on the real filesystem, running crash
    /// recovery if the profile has a write-ahead log. Backends without a
    /// log recover to their last checkpoint — the Texas durability
    /// contract.
    pub fn open(dir: &Path, profile: Profile, opts: Options) -> Result<Engine> {
        Self::open_with(RealVfs::arc(), dir, profile, opts)
    }

    /// Open an existing store on an arbitrary [`Vfs`], running crash
    /// recovery if the profile has a write-ahead log: redo every
    /// committed operation since the checkpoint, then undo the first
    /// touch of every object whose last toucher did not commit (a stolen
    /// dirty page may have carried uncommitted bytes to disk).
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        profile: Profile,
        opts: Options,
    ) -> Result<Engine> {
        let (data_path, meta_path, wal_path) = Self::paths(dir);
        if !vfs.exists(&meta_path) {
            return Err(StorageError::BadPath(format!("no store at {}", dir.display())));
        }
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::open(&vfs, &data_path, stats.clone())?);
        let pool = Arc::new(BufferPool::new(
            file.clone(),
            stats.clone(),
            opts.buffer_pages,
            profile.count_swizzles,
        ));
        let heap = Heap::new(
            pool.clone(),
            file.clone(),
            stats.clone(),
            profile.placement,
            profile.segments,
            profile.extra_header,
            profile.align,
        );
        let meta_state = meta::read_meta(&vfs, &meta_path, &heap)?.unwrap_or_default();
        let meta_epoch = meta_state.epoch;
        file.set_version_floors(meta_state.versions);
        file.set_quarantined(&meta_state.quarantined);
        // Startup verify pass: every page image is read and checked
        // against its header and LSN floor *before* any of it is
        // trusted. Damage is quarantined and demoted out of allocation
        // placement; WAL redo below rebuilds the affected objects at
        // fresh pages where the log has them, and everything else on a
        // quarantined page stays reachable only as a typed corruption
        // error — degraded, never silently wrong.
        Self::verify_pages(&file, &heap)?;

        let wal = if profile.wal {
            let replayed = Wal::replay(&vfs, &wal_path)?;
            StorageStats::bump(&stats.wal_bytes_truncated, replayed.bytes_truncated);
            if Self::log_matches_checkpoint(&replayed.records, meta_epoch)? {
                Self::recover(&heap, &replayed.records)?;
                StorageStats::bump(&stats.wal_frames_replayed, replayed.frames);
            }
            Some(Arc::new(Wal::open(&vfs, &wal_path, stats.clone(), opts.group_commit_window)?))
        } else {
            None
        };
        Self::wire_steal_guard(&pool, &wal);
        let locks = if profile.single_user {
            None
        } else {
            Some(LockManager::new(opts.lock_timeout))
        };
        let engine = Engine {
            profile,
            vfs,
            dir: dir.to_path_buf(),
            heap,
            pool,
            file,
            wal,
            locks,
            stats,
            active: StdMutex::new(ActiveState::default()),
            active_changed: Condvar::new(),
            next_txn: AtomicU64::new(1),
            epoch: AtomicU64::new(meta_epoch),
            wounded: AtomicBool::new(false),
            sync_commit: opts.sync_commit,
            vis: StdMutex::new(()),
            last_visible: AtomicU64::new(0),
            snapshots: StdMutex::new(HashMap::new()),
            next_snap: AtomicU64::new(1),
        };
        if engine.profile.wal {
            // Fold the recovered state into a fresh checkpoint; this also
            // truncates the log, making recovery's effects durable.
            engine.checkpoint()?;
        }
        Ok(engine)
    }

    /// Startup scrub: read and verify every page of the data file.
    /// Persistently damaged pages are quarantined (reads fail typed,
    /// a full overwrite heals) and demoted out of allocation placement
    /// so no new object lands on them. Transient read corruption is
    /// absorbed by the page file's re-read layer; real I/O errors
    /// propagate.
    fn verify_pages(file: &Arc<PageFile>, heap: &Heap) -> Result<Vec<PageId>> {
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        let mut bad = Vec::new();
        for raw in 0..file.page_count() {
            let pid = PageId(raw);
            match file.read_page(pid, &mut buf) {
                Ok(_) => {}
                Err(e) if e.is_corruption() => {
                    file.quarantine(pid);
                    bad.push(pid);
                }
                Err(e) => return Err(e),
            }
        }
        if !bad.is_empty() {
            heap.demote_pages(&bad);
        }
        Ok(bad)
    }

    /// Install the write-ahead steal guard: before the pool writes a
    /// dirty (possibly uncommitted) frame to the data file, the log —
    /// including the before-images that can undo that frame — must be
    /// durable.
    fn wire_steal_guard(pool: &Arc<BufferPool>, wal: &Option<Arc<Wal>>) {
        if let Some(wal) = wal {
            let wal = wal.clone();
            pool.set_steal_guard(Box::new(move || wal.force(true)));
        }
    }

    /// Decide whether the log on disk describes the checkpoint on disk.
    ///
    /// A crash can separate the metadata flip from the log truncation:
    /// if the metadata's epoch is already ahead of the log's reset
    /// frame, every logged operation is folded into the checkpoint and
    /// must be skipped (replaying would resurrect freed objects). A log
    /// *ahead* of the metadata, or one that does not begin with a reset
    /// frame, cannot be produced by any crash of this engine and is
    /// reported as corruption.
    fn log_matches_checkpoint(records: &[WalRecord], meta_epoch: u64) -> Result<bool> {
        let Some(first) = records.first() else {
            return Ok(false); // empty log: nothing to replay
        };
        let WalRecord::Reset(log_epoch) = first else {
            return Err(StorageError::Recovery(RecoveryError {
                offset: 0,
                frame: 0,
                detail: "log does not begin with a reset frame".into(),
            }));
        };
        if *log_epoch > meta_epoch {
            return Err(StorageError::Recovery(RecoveryError {
                offset: 0,
                frame: 0,
                detail: format!(
                    "log reset epoch {log_epoch} is ahead of checkpoint epoch {meta_epoch}"
                ),
            }));
        }
        Ok(*log_epoch == meta_epoch)
    }

    /// Apply a replayed log to a freshly checkpoint-loaded heap.
    ///
    /// Pass 1 (redo): re-apply every operation of every committed
    /// transaction, in log order, through the recovery-safe heap entry
    /// points (fresh slots; page images on disk may be any mix of
    /// vintages after a crash).
    ///
    /// Pass 2 (undo): stolen dirty pages can carry *uncommitted* bytes
    /// to disk, so for every object whose last logged toucher did not
    /// commit, restore that toucher's first before-image (under strict
    /// two-phase locking the first before-image is the last committed
    /// value). Aborted transactions are treated identically: their
    /// in-memory rollback was never logged, and re-deriving it from
    /// before-images is equivalent.
    ///
    /// Finally the oid allocator is raised past every oid in the log —
    /// even losers' — so a recovered store never recycles an oid the
    /// crashed run already handed out.
    fn recover(heap: &Heap, records: &[WalRecord]) -> Result<()> {
        let committed: HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit(t) => Some(*t),
                _ => None,
            })
            .collect();

        let mut last_touch: HashMap<u64, u64> = HashMap::new();
        let mut first_image: HashMap<(u64, u64), LoserUndo> = HashMap::new();
        let mut max_oid = None;

        for rec in records {
            let (oid, image) = match rec {
                WalRecord::Alloc { oid, seg, hint, data, .. } => {
                    if committed.contains(&rec.txn()) {
                        heap.recover_upsert(*oid, Some(*seg), *hint, data)?;
                    }
                    (*oid, LoserUndo::Remove)
                }
                WalRecord::Update { oid, data, old, .. } => {
                    if committed.contains(&rec.txn()) {
                        heap.recover_upsert(*oid, None, ClusterHint::NONE, data)?;
                    }
                    (*oid, LoserUndo::Restore(old.clone()))
                }
                WalRecord::Free { oid, old, .. } => {
                    if committed.contains(&rec.txn()) {
                        heap.recover_free(*oid);
                    }
                    (*oid, LoserUndo::Restore(old.clone()))
                }
                WalRecord::Begin(_)
                | WalRecord::Commit(_)
                | WalRecord::Abort(_)
                | WalRecord::Reset(_) => continue,
            };
            max_oid = max_oid.max(Some(oid.raw()));
            last_touch.insert(oid.raw(), rec.txn());
            if !committed.contains(&rec.txn()) {
                first_image.entry((rec.txn(), oid.raw())).or_insert(image);
            }
        }

        for ((txn, oid_raw), image) in first_image {
            // Only the *last* toucher's state can be on disk; if a later
            // (necessarily committed, already redone) transaction touched
            // the object, the loser's undo must not clobber it.
            if last_touch.get(&oid_raw) != Some(&txn) {
                continue;
            }
            let oid = Oid::from_raw(oid_raw);
            match image {
                LoserUndo::Remove => heap.recover_free(oid),
                LoserUndo::Restore(data) => {
                    heap.recover_upsert(oid, None, ClusterHint::NONE, &data)?
                }
            }
        }

        if let Some(max) = max_oid {
            heap.reserve_oid_floor(max + 1);
        }
        Ok(())
    }

    /// Directory the store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The profile this engine runs.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Buffer-pool capacity in pages (the knob the clustering ablation
    /// sweeps).
    pub fn buffer_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Pages currently resident in the buffer pool.
    pub fn resident_pages(&self) -> usize {
        self.pool.resident()
    }

    /// Total pages in the data file.
    pub fn data_pages(&self) -> u32 {
        self.file.page_count()
    }

    /// Objects currently holding locks (0 when idle; OStore only).
    pub fn locked_objects(&self) -> usize {
        self.locks.as_ref().map_or(0, |l| l.locked_objects())
    }

    /// Live oids in ascending order (diagnostics / scans).
    pub fn live_oids(&self) -> Vec<Oid> {
        self.heap.oids()
    }

    /// Live oids whose home page is quarantined, in ascending oid order
    /// (stable across shard iteration order, so scrub logs diff
    /// cleanly): still listed in the
    /// object table, but reads fail typed until the page is rebuilt.
    /// This is the "known casualties" list an operator (or the crash
    /// harness) checks after a recovery that quarantined pages.
    pub fn damaged_oids(&self) -> Vec<Oid> {
        let bad: Vec<PageId> = self.file.quarantined_pages().into_iter().map(PageId).collect();
        self.heap.oids_on_pages(&bad)
    }

    /// Contended-acquisition counts for the heap's metadata shards
    /// (global, per object-table shard, per segment): which shard a
    /// workload is hot on, independent of the aggregate wait totals in
    /// [`StorageStats`].
    pub fn heap_contention(&self) -> HeapContention {
        self.heap.contention()
    }

    /// Whether a logged operation failed mid-apply (see [`Engine::checkpoint`]).
    pub fn is_wounded(&self) -> bool {
        self.wounded.load(Ordering::Acquire)
    }

    fn wound(&self) {
        self.wounded.store(true, Ordering::Release);
    }

    fn active(&self) -> MutexGuard<'_, ActiveState> {
        self.active.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A `commit`/`abort` finished resolving its transaction; wake a
    /// quiescing checkpoint if the system is now fully drained.
    fn resolved(&self) {
        let mut active = self.active();
        active.resolving -= 1;
        if active.txns.is_empty() && active.resolving == 0 {
            self.active_changed.notify_all();
        }
    }

    fn require_txn(&self, txn: TxnId) -> Result<()> {
        if self.active().txns.contains_key(&txn.raw()) {
            Ok(())
        } else {
            Err(StorageError::UnknownTxn(txn))
        }
    }

    fn lock(&self, txn: TxnId, oid: Oid, mode: LockMode) -> Result<()> {
        if let Some(locks) = &self.locks {
            locks.acquire(txn, oid, mode)?;
        }
        Ok(())
    }

    fn log(&self, rec: WalRecord) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.append(&rec)?;
        }
        Ok(())
    }

    /// Commit-visibility flip lock (rank [`lock_order::ENGINE_COMMIT_VIS`]).
    fn vis_lock(&self) -> lock_order::Ranked<MutexGuard<'_, ()>> {
        lock_order::ranked(lock_order::ENGINE_COMMIT_VIS, || {
            self.vis.lock().unwrap_or_else(|e| e.into_inner())
        })
    }

    /// Open-snapshot registry lock (rank [`lock_order::ENGINE_SNAPSHOTS`]).
    fn snaps_lock(&self) -> lock_order::Ranked<MutexGuard<'_, HashMap<u64, u64>>> {
        lock_order::ranked(lock_order::ENGINE_SNAPSHOTS, || {
            self.snapshots.lock().unwrap_or_else(|e| e.into_inner())
        })
    }

    /// The version-GC low-water mark: the minimum LSN pinned by an open
    /// snapshot, or `u64::MAX` when none is open.
    fn snapshot_floor(&self) -> u64 {
        self.snaps_lock().values().copied().min().unwrap_or(u64::MAX)
    }

    /// Record that `txn` wrote `oid`, for the commit flip / abort discard.
    fn touch(&self, txn: TxnId, oid: Oid) {
        if let Some(state) = self.active().txns.get_mut(&txn.raw()) {
            state.touched.push(oid);
        }
    }

    /// `allocate` with the oid chosen by a shipped log record rather
    /// than the local allocator (see [`Heap::replica_alloc`]): the
    /// replication-apply path's one departure from the normal write
    /// pipeline. Lock, touch, and write-ahead logging are identical.
    fn replica_allocate(
        &self,
        txn: TxnId,
        oid: Oid,
        seg: SegmentId,
        hint: ClusterHint,
        data: &[u8],
    ) -> Result<()> {
        self.require_txn(txn)?;
        self.heap.replica_alloc(oid, seg, hint, data, txn.raw())?;
        self.lock(txn, oid, LockMode::Exclusive)?;
        self.touch(txn, oid);
        self.log(WalRecord::Alloc { txn: txn.raw(), oid, seg, hint, data: data.to_vec() })?;
        Ok(())
    }

    /// Checkpoint with an epoch floor: the sealed meta file's epoch
    /// advances to at least `floor` (normally it just increments). The
    /// promotion path uses this to fence a deposed primary — the
    /// promoted follower re-seals at an epoch above every epoch the old
    /// primary could have stamped, and its replication endpoints refuse
    /// chunks tagged with anything older.
    pub fn checkpoint_with_floor(&self, floor: u64) -> Result<()> {
        // A wounded engine's in-memory state may disagree with its log;
        // persisting it as a checkpoint would make the disagreement
        // durable and unrecoverable. Reopening the store heals it.
        if self.is_wounded() {
            return Err(StorageError::Wounded("a logged operation failed mid-apply"));
        }
        // Quiesce: block new transactions and drain the active ones so
        // the snapshot and the WAL truncation are transaction-consistent.
        // Callers must not hold an open transaction on this thread.
        {
            let mut active = self.active();
            while active.quiescing {
                active =
                    self.active_changed.wait(active).unwrap_or_else(|e| e.into_inner());
            }
            active.quiescing = true;
            while !active.txns.is_empty() || active.resolving > 0 {
                active =
                    self.active_changed.wait(active).unwrap_or_else(|e| e.into_inner());
            }
        }
        let result = (|| {
            // Version GC: the system is quiesced, so no pending flip
            // races the sweep; versions pinned by open snapshots are
            // protected by the low-water mark.
            self.heap.collect_garbage(self.snapshot_floor());
            self.pool.flush_all()?;
            self.file.sync()?;
            let next_epoch = (self.epoch.load(Ordering::Acquire) + 1).max(floor);
            let (_, meta_path, _) = Self::paths(&self.dir);
            // The meta flip records, alongside the heap, each page's LSN
            // as of the image just synced (so a later lost or misdirected
            // write is detectable as a stale page) and the quarantine
            // set. write_meta syncs the containing directory before
            // returning, so by the time the WAL is truncated the rename
            // is durable — no crash window can pair the old meta with the
            // truncated log.
            let state = meta::MetaState {
                epoch: next_epoch,
                quarantined: self.file.quarantined_pages(),
                versions: self.file.version_table(),
            };
            meta::write_meta(&self.vfs, &meta_path, &self.heap, &state)?;
            if let Some(wal) = &self.wal {
                wal.truncate(next_epoch)?;
            }
            self.epoch.store(next_epoch, Ordering::Release);
            StorageStats::bump(&self.stats.checkpoints, 1);
            Ok(())
        })();
        self.active().quiescing = false;
        self.active_changed.notify_all();
        result
    }
}

impl StorageManager for Engine {
    fn name(&self) -> &'static str {
        self.profile.name
    }

    fn begin(&self) -> Result<TxnId> {
        let mut active = self.active();
        // A checkpoint is draining the system: wait for it to finish so
        // the snapshot it writes contains no transaction mid-flight.
        while active.quiescing {
            active = self.active_changed.wait(active).unwrap_or_else(|e| e.into_inner());
        }
        if self.profile.single_user && !active.txns.is_empty() {
            return Err(StorageError::SingleUser);
        }
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        active.txns.insert(id, TxnState::default());
        drop(active);
        self.log(WalRecord::Begin(id))?;
        Ok(TxnId::from_raw(id))
    }

    fn commit(&self, txn: TxnId) -> Result<()> {
        let state = {
            let mut active = self.active();
            let state = active.txns.remove(&txn.raw()).ok_or(StorageError::UnknownTxn(txn))?;
            active.resolving += 1;
            state
        };
        // Durability before visibility: the commit record is appended
        // and group-force shared with concurrent committers (sync_commit
        // additionally makes the force durable, so an Ok means the
        // transaction survives power loss) *before* any of its versions
        // become visible. A reader can therefore never observe state
        // that crash recovery would undo.
        let forced = self.log(WalRecord::Commit(txn.raw())).and_then(|()| {
            if let Some(wal) = &self.wal {
                wal.group_commit(self.sync_commit)
            } else {
                Ok(())
            }
        });
        if forced.is_ok() {
            // Visibility flip: every version this transaction wrote
            // becomes committed at one fresh LSN, and only then is the
            // LSN published. A snapshot opened at any instant reads the
            // published LSN, so it sees all of this transaction's
            // versions or none of them — never a partial commit. The
            // floor passed to the trim may be stale the moment it is
            // read (begin_snapshot takes only the registry lock);
            // commit_version clamps it to lsn - 1 so a snapshot pinned
            // at the pre-flip LSN keeps its version.
            if !state.touched.is_empty() {
                let _vis = self.vis_lock();
                // analyzer: allow(ordering, "last_visible is only stored under vis_lock, which is held here — the lock orders the read-modify-write; Release on the store publishes to lock-free snapshot readers")
                let lsn = self.last_visible.load(Ordering::Relaxed) + 1;
                let floor = self.snapshot_floor();
                for &oid in &state.touched {
                    self.heap.commit_version(oid, txn.raw(), lsn, floor);
                }
                self.last_visible.store(lsn, Ordering::Release);
            }
        } else {
            // A failed force leaves the commit's durability unknown
            // (the record may or may not reach the platter; recovery
            // decides), but this process reports the commit failed — so
            // its versions, never yet published, are discarded like an
            // abort's rather than left visible-but-not-durable. Locks
            // are released either way: the engine is not stuck.
            for &oid in state.touched.iter().rev() {
                self.heap.discard_txn(oid, txn.raw());
            }
        }
        if let Some(locks) = &self.locks {
            locks.release_all(txn);
        }
        self.resolved();
        forced?;
        StorageStats::bump(&self.stats.commits, 1);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> Result<()> {
        if !self.profile.wal {
            return Err(StorageError::Unsupported(
                "abort: the Texas store has no undo capability",
            ));
        }
        let state = {
            let mut active = self.active();
            let state = active.txns.remove(&txn.raw()).ok_or(StorageError::UnknownTxn(txn))?;
            active.resolving += 1;
            state
        };
        // Rollback is just dropping the pending versions: they were
        // never visible to any other transaction or snapshot, and the
        // committed chain beneath them was never touched. This cannot
        // half-fail the way the old restore-in-place rollback could.
        for &oid in state.touched.iter().rev() {
            self.heap.discard_txn(oid, txn.raw());
        }
        let logged = self.log(WalRecord::Abort(txn.raw()));
        if let Some(locks) = &self.locks {
            locks.release_all(txn);
        }
        self.resolved();
        logged?;
        StorageStats::bump(&self.stats.aborts, 1);
        Ok(())
    }

    fn allocate(
        &self,
        txn: TxnId,
        seg: SegmentId,
        hint: ClusterHint,
        data: &[u8],
    ) -> Result<Oid> {
        self.require_txn(txn)?;
        let oid = self.heap.alloc(seg, hint, data, txn.raw())?;
        self.lock(txn, oid, LockMode::Exclusive)?;
        self.touch(txn, oid);
        self.log(WalRecord::Alloc { txn: txn.raw(), oid, seg, hint, data: data.to_vec() })?;
        Ok(oid)
    }

    fn read(&self, oid: Oid) -> Result<Vec<u8>> {
        self.heap.read(oid)
    }

    fn read_in(&self, txn: TxnId, oid: Oid) -> Result<Vec<u8>> {
        self.require_txn(txn)?;
        self.lock(txn, oid, LockMode::Shared)?;
        self.heap.read_for(oid, txn.raw())
    }

    fn lock_exclusive(&self, txn: TxnId, oid: Oid) -> Result<()> {
        self.require_txn(txn)?;
        self.lock(txn, oid, LockMode::Exclusive)
    }

    fn update(&self, txn: TxnId, oid: Oid, data: &[u8]) -> Result<()> {
        self.require_txn(txn)?;
        self.lock(txn, oid, LockMode::Exclusive)?;
        if self.profile.wal {
            // Write-ahead: the record (with its before-image) enters the
            // log buffer before the heap mutates, so a steal of the
            // mutated page can never outrun its undo information.
            // Recovery keys loser undo off the *first* logged image per
            // (txn, oid), which `read_for` makes the last committed
            // value on the first touch; later touches log this
            // transaction's own pending value, which recovery ignores.
            let old = self.heap.read_for(oid, txn.raw())?;
            self.log(WalRecord::Update { txn: txn.raw(), oid, data: data.to_vec(), old })?;
            if let Err(e) = self.heap.update(oid, data, txn.raw()) {
                self.wound();
                return Err(e);
            }
        } else {
            self.heap.update(oid, data, txn.raw())?;
        }
        self.touch(txn, oid);
        Ok(())
    }

    fn free(&self, txn: TxnId, oid: Oid) -> Result<()> {
        self.require_txn(txn)?;
        self.lock(txn, oid, LockMode::Exclusive)?;
        if self.profile.wal {
            // The logged before-image serves recovery; an in-memory
            // abort just discards the pending tombstone, leaving the
            // committed chain (and the object's placement) untouched.
            let old = self.heap.read_for(oid, txn.raw())?;
            self.log(WalRecord::Free { txn: txn.raw(), oid, old })?;
            if let Err(e) = self.heap.free(oid, txn.raw()) {
                self.wound();
                return Err(e);
            }
        } else {
            self.heap.free(oid, txn.raw())?;
        }
        self.touch(txn, oid);
        Ok(())
    }

    fn exists(&self, oid: Oid) -> bool {
        self.heap.exists(oid)
    }

    fn begin_snapshot(&self) -> Result<Snapshot> {
        // Registration and the LSN read happen under one lock, so any
        // trim that samples the registry after us sees this snapshot.
        // A trim that sampled the registry *before* us cannot hurt
        // either: checkpoint GC always keeps the newest committed
        // version of a chain — exactly what a read at the current
        // `last_visible` resolves — and a concurrently flipping commit
        // trims with its floor clamped to the pre-flip LSN
        // (`Heap::commit_version`), so the head this snapshot can pin
        // survives that trim too.
        let mut snaps = self.snaps_lock();
        let lsn = self.last_visible.load(Ordering::Acquire);
        let token = self.next_snap.fetch_add(1, Ordering::Relaxed);
        snaps.insert(token, lsn);
        StorageStats::bump(&self.stats.snapshots_opened, 1);
        Ok(Snapshot { lsn, token })
    }

    fn release_snapshot(&self, snap: Snapshot) {
        self.snaps_lock().remove(&snap.token);
    }

    fn open_snapshots(&self) -> usize {
        self.snaps_lock().len()
    }

    fn read_at(&self, snap: &Snapshot, oid: Oid) -> Result<Vec<u8>> {
        self.heap.read_at(oid, snap.lsn)
    }

    fn exists_at(&self, snap: &Snapshot, oid: Oid) -> bool {
        self.heap.exists_at(oid, snap.lsn)
    }

    fn read_for(&self, txn: TxnId, oid: Oid) -> Result<Vec<u8>> {
        self.heap.read_for(oid, txn.raw())
    }

    fn exists_for(&self, txn: TxnId, oid: Oid) -> bool {
        self.heap.exists_for(oid, txn.raw())
    }

    fn checkpoint(&self) -> Result<()> {
        self.checkpoint_with_floor(0)
    }

    fn store_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn replication_lsn(&self) -> Result<u64> {
        match &self.wal {
            Some(wal) => Ok(wal.flushed_lsn()),
            None => {
                Err(StorageError::Unsupported("replication_lsn: profile has no write-ahead log"))
            }
        }
    }

    fn wal_stream_from(&self, from: u64, max_bytes: usize) -> Result<WalChunk> {
        match &self.wal {
            Some(wal) => wal.stream_from(from, max_bytes),
            None => {
                Err(StorageError::Unsupported("wal_stream_from: profile has no write-ahead log"))
            }
        }
    }

    fn replica_apply_commit(&self, recs: &[WalRecord]) -> Result<()> {
        // The shipped records run through the engine's normal
        // transactional path — a local `begin`, the same
        // lock/log/touch pipeline as a primary-side writer, then
        // `commit` — so the follower inherits every invariant the
        // primary enforces: write-ahead logging into the follower's
        // *own* WAL (a follower is independently crash-safe),
        // durability-before-visibility on the commit force, and the
        // one-LSN MVCC flip (a snapshot reader on the follower sees
        // all of a shipped transaction or none of it). The caller
        // groups records by transaction and ships only transactions
        // whose commit frame arrived; marker records are skipped here.
        let txn = self.begin()?;
        let applied = (|| -> Result<()> {
            for rec in recs {
                match rec {
                    WalRecord::Alloc { oid, seg, hint, data, .. } => {
                        self.replica_allocate(txn, *oid, *seg, *hint, data)?;
                    }
                    WalRecord::Update { oid, data, .. } => {
                        self.update(txn, *oid, data)?;
                    }
                    WalRecord::Free { oid, .. } => {
                        self.free(txn, *oid)?;
                    }
                    WalRecord::Begin(_)
                    | WalRecord::Commit(_)
                    | WalRecord::Abort(_)
                    | WalRecord::Reset(_) => {}
                }
            }
            Ok(())
        })();
        match applied {
            Ok(()) => self.commit(txn),
            Err(e) => {
                let _ = self.abort(txn);
                Err(e)
            }
        }
    }

    fn promote_epoch(&self, floor: u64) -> Result<()> {
        self.checkpoint_with_floor(floor)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn db_size_bytes(&self) -> Result<Option<u64>> {
        let (_, meta_path, _) = Self::paths(&self.dir);
        let mut total = self.file.len_bytes()?;
        if let Some(meta_len) = self.vfs.size(&meta_path)? {
            total += meta_len;
        }
        if let Some(wal) = &self.wal {
            total += wal.len_bytes()?;
        }
        Ok(Some(total))
    }

    fn object_count(&self) -> usize {
        self.heap.object_count()
    }

    fn segments(&self) -> Vec<SegmentInfo> {
        self.heap
            .segment_pages()
            .into_iter()
            .enumerate()
            .map(|(i, pages)| SegmentInfo {
                seg: SegmentId(i as u8),
                pages,
                bytes: (pages * PAGE_SIZE) as u64,
            })
            .collect()
    }

    fn is_persistent(&self) -> bool {
        true
    }

    fn supports_concurrency(&self) -> bool {
        !self.profile.single_user
    }

    fn drop_caches(&self) -> Result<()> {
        self.pool.clear()
    }
}

/// Constructor namespace for the ObjectStore-like backend.
pub struct OStore;

impl OStore {
    /// Create a fresh OStore-profile store at `dir`.
    pub fn create(dir: &Path, opts: Options) -> Result<Engine> {
        Engine::create(dir, Profile::ostore(), opts)
    }

    /// Open an existing OStore-profile store, running crash recovery.
    pub fn open(dir: &Path, opts: Options) -> Result<Engine> {
        Engine::open(dir, Profile::ostore(), opts)
    }

    /// Create a fresh OStore-profile store on an arbitrary [`Vfs`].
    pub fn create_with(vfs: Arc<dyn Vfs>, dir: &Path, opts: Options) -> Result<Engine> {
        Engine::create_with(vfs, dir, Profile::ostore(), opts)
    }

    /// Open an OStore-profile store on an arbitrary [`Vfs`], running
    /// crash recovery.
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: &Path, opts: Options) -> Result<Engine> {
        Engine::open_with(vfs, dir, Profile::ostore(), opts)
    }
}

/// Constructor namespace for the Texas-like backend.
pub struct Texas;

impl Texas {
    /// Create a fresh Texas-profile store at `dir`.
    pub fn create(dir: &Path, opts: Options) -> Result<Engine> {
        Engine::create(dir, Profile::texas(), opts)
    }

    /// Open an existing Texas-profile store (recovers to last checkpoint).
    pub fn open(dir: &Path, opts: Options) -> Result<Engine> {
        Engine::open(dir, Profile::texas(), opts)
    }

    /// Create a fresh Texas-profile store on an arbitrary [`Vfs`].
    pub fn create_with(vfs: Arc<dyn Vfs>, dir: &Path, opts: Options) -> Result<Engine> {
        Engine::create_with(vfs, dir, Profile::texas(), opts)
    }

    /// Open a Texas-profile store on an arbitrary [`Vfs`] (recovers to
    /// last checkpoint).
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: &Path, opts: Options) -> Result<Engine> {
        Engine::open_with(vfs, dir, Profile::texas(), opts)
    }
}

/// Constructor namespace for the Texas-with-client-clustering backend.
pub struct TexasTc;

impl TexasTc {
    /// Create a fresh Texas+TC-profile store at `dir`.
    pub fn create(dir: &Path, opts: Options) -> Result<Engine> {
        Engine::create(dir, Profile::texas_tc(), opts)
    }

    /// Open an existing Texas+TC-profile store.
    pub fn open(dir: &Path, opts: Options) -> Result<Engine> {
        Engine::open(dir, Profile::texas_tc(), opts)
    }

    /// Create a fresh Texas+TC-profile store on an arbitrary [`Vfs`].
    pub fn create_with(vfs: Arc<dyn Vfs>, dir: &Path, opts: Options) -> Result<Engine> {
        Engine::create_with(vfs, dir, Profile::texas_tc(), opts)
    }

    /// Open a Texas+TC-profile store on an arbitrary [`Vfs`].
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: &Path, opts: Options) -> Result<Engine> {
        Engine::open_with(vfs, dir, Profile::texas_tc(), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SimVfs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lfs-eng-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now().elapsed().map(|d| d.as_nanos()).unwrap_or(0)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn ostore_basic_txn_cycle() {
        let dir = tmpdir("ost-basic");
        let store = OStore::create(&dir, Options::default()).unwrap();
        assert_eq!(store.name(), "OStore");
        assert!(store.supports_concurrency());
        let t = store.begin().unwrap();
        let a = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"alpha").unwrap();
        let b = store.allocate(t, SegmentId(3), ClusterHint::NONE, b"beta").unwrap();
        store.update(t, a, b"alpha2").unwrap();
        store.commit(t).unwrap();
        assert_eq!(store.read(a).unwrap(), b"alpha2");
        assert_eq!(store.read(b).unwrap(), b"beta");
        assert_eq!(store.object_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ostore_abort_rolls_back() {
        let dir = tmpdir("ost-abort");
        let store = OStore::create(&dir, Options::default()).unwrap();
        let t0 = store.begin().unwrap();
        let keep = store.allocate(t0, SegmentId(0), ClusterHint::NONE, b"keep").unwrap();
        store.commit(t0).unwrap();

        let t = store.begin().unwrap();
        let temp = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"temp").unwrap();
        store.update(t, keep, b"mutated").unwrap();
        store.free(t, keep).unwrap();
        store.abort(t).unwrap();

        assert!(!store.exists(temp), "aborted alloc must vanish");
        assert_eq!(store.read(keep).unwrap(), b"keep", "aborted update+free must roll back");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lock_exclusive_serializes_without_touching_the_object() {
        let dir = tmpdir("ost-lockx");
        let opts = Options { lock_timeout: Duration::from_millis(50), ..Options::default() };
        let store = OStore::create(&dir, opts).unwrap();
        let t0 = store.begin().unwrap();
        let oid = store.allocate(t0, SegmentId(0), ClusterHint::NONE, b"hot").unwrap();
        store.commit(t0).unwrap();

        // Holder takes the lock without writing; a rival's update must
        // time out, and committed reads stay lock-free.
        let holder = store.begin().unwrap();
        store.lock_exclusive(holder, oid).unwrap();
        store.lock_exclusive(holder, oid).unwrap(); // re-entrant
        assert_eq!(store.read(oid).unwrap(), b"hot");
        let rival = store.begin().unwrap();
        assert!(matches!(
            store.update(rival, oid, b"blocked"),
            Err(StorageError::LockTimeout(o)) if o == oid
        ));
        store.abort(rival).unwrap();

        // Abort releases the lock even though nothing was written, and
        // the object is untouched.
        store.abort(holder).unwrap();
        let t = store.begin().unwrap();
        store.update(t, oid, b"after").unwrap();
        store.commit(t).unwrap();
        assert_eq!(store.read(oid).unwrap(), b"after");

        // Dead transactions cannot lock.
        assert!(matches!(store.lock_exclusive(t, oid), Err(StorageError::UnknownTxn(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ostore_crash_recovery_replays_committed_only() {
        let dir = tmpdir("ost-crash");
        let committed_oid;
        let uncommitted_oid;
        {
            let store = OStore::create(&dir, Options::default()).unwrap();
            let t1 = store.begin().unwrap();
            committed_oid =
                store.allocate(t1, SegmentId(1), ClusterHint::NONE, b"durable").unwrap();
            store.commit(t1).unwrap();
            let t2 = store.begin().unwrap();
            uncommitted_oid =
                store.allocate(t2, SegmentId(1), ClusterHint::NONE, b"lost").unwrap();
            // No commit, no checkpoint: simulate a crash by dropping.
        }
        let store = OStore::open(&dir, Options::default()).unwrap();
        assert_eq!(store.read(committed_oid).unwrap(), b"durable");
        assert!(!store.exists(uncommitted_oid));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ostore_recovery_undoes_stolen_uncommitted_updates() {
        // A tiny pool forces dirty-page steals, so the data file holds
        // uncommitted bytes when the "crash" happens; only the logged
        // before-images can roll them back.
        let vfs: Arc<dyn Vfs> = Arc::new(SimVfs::new(7));
        let dir = PathBuf::from("/sim/steal");
        let opts = Options { buffer_pages: 2, sync_commit: true, ..Options::default() };
        let committed;
        {
            let store = OStore::create_with(vfs.clone(), &dir, opts.clone()).unwrap();
            let t = store.begin().unwrap();
            committed = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"stable").unwrap();
            store.commit(t).unwrap();
            let t2 = store.begin().unwrap();
            store.update(t2, committed, b"DIRTY!").unwrap();
            // Churn enough pages that the dirty page is stolen to disk.
            for i in 0..200u32 {
                store
                    .allocate(t2, SegmentId(0), ClusterHint::NONE, &[(i % 251) as u8; 64])
                    .unwrap();
            }
            // Crash with t2 uncommitted.
        }
        let store = OStore::open_with(vfs, &dir, opts).unwrap();
        assert_eq!(store.read(committed).unwrap(), b"stable");
    }

    #[test]
    fn texas_recovers_to_checkpoint_only() {
        let dir = tmpdir("tex-ckpt");
        let before;
        let after;
        {
            let store = Texas::create(&dir, Options::default()).unwrap();
            let t = store.begin().unwrap();
            before = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"checkpointed").unwrap();
            store.commit(t).unwrap();
            store.checkpoint().unwrap();
            let t = store.begin().unwrap();
            after = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"post-ckpt").unwrap();
            store.commit(t).unwrap();
            // Crash without checkpoint.
        }
        let store = Texas::open(&dir, Options::default()).unwrap();
        assert_eq!(store.read(before).unwrap(), b"checkpointed");
        assert!(!store.exists(after), "Texas loses post-checkpoint work by contract");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn texas_is_single_user_and_cannot_abort() {
        let dir = tmpdir("tex-single");
        let store = Texas::create(&dir, Options::default()).unwrap();
        assert!(!store.supports_concurrency());
        let t1 = store.begin().unwrap();
        assert!(matches!(store.begin(), Err(StorageError::SingleUser)));
        assert!(matches!(store.abort(t1), Err(StorageError::Unsupported(_))));
        store.commit(t1).unwrap();
        let t2 = store.begin().unwrap();
        store.commit(t2).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn texas_databases_are_fatter_than_ostore() {
        let dir_o = tmpdir("size-o");
        let dir_t = tmpdir("size-t");
        let o = OStore::create(&dir_o, Options::default()).unwrap();
        let x = Texas::create(&dir_t, Options::default()).unwrap();
        for store in [&o, &x] {
            let t = store.begin().unwrap();
            for i in 0..2000u32 {
                store
                    .allocate(t, SegmentId(0), ClusterHint::NONE, &[(i % 251) as u8; 100])
                    .unwrap();
            }
            store.commit(t).unwrap();
            store.checkpoint().unwrap();
        }
        let so = o.db_size_bytes().unwrap().unwrap();
        let st = x.db_size_bytes().unwrap().unwrap();
        let ratio = st as f64 / so as f64;
        assert!(
            ratio > 1.2 && ratio < 2.0,
            "expected Texas ~1.5x OStore size (paper: 24.6MB vs 16.6MB), got {ratio:.2}"
        );
        std::fs::remove_dir_all(&dir_o).ok();
        std::fs::remove_dir_all(&dir_t).ok();
    }

    #[test]
    fn reopen_after_checkpoint_round_trips_everything() {
        for profile in [Profile::ostore(), Profile::texas(), Profile::texas_tc()] {
            let dir = tmpdir(&format!("reopen-{}", profile.name.replace('+', "p")));
            let mut oids = Vec::new();
            {
                let store = Engine::create(&dir, profile.clone(), Options::default()).unwrap();
                let t = store.begin().unwrap();
                for i in 0..100u32 {
                    let seg = SegmentId((i % store.profile().segments as u32) as u8);
                    oids.push(
                        store
                            .allocate(t, seg, ClusterHint(1 + (i % 7) as u64), &i.to_le_bytes())
                            .unwrap(),
                    );
                }
                store.commit(t).unwrap();
                store.checkpoint().unwrap();
            }
            let store = Engine::open(&dir, profile, Options::default()).unwrap();
            for (i, &oid) in oids.iter().enumerate() {
                assert_eq!(store.read(oid).unwrap(), (i as u32).to_le_bytes());
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn create_twice_fails_open_missing_fails() {
        let dir = tmpdir("dupes");
        let _s = OStore::create(&dir, Options::default()).unwrap();
        assert!(matches!(
            OStore::create(&dir, Options::default()),
            Err(StorageError::BadPath(_))
        ));
        let missing = tmpdir("missing");
        assert!(matches!(OStore::open(&missing, Options::default()), Err(StorageError::BadPath(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn operations_require_live_txn() {
        let dir = tmpdir("livetxn");
        let store = OStore::create(&dir, Options::default()).unwrap();
        let t = store.begin().unwrap();
        let oid = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"x").unwrap();
        store.commit(t).unwrap();
        // t is gone now.
        assert!(matches!(
            store.allocate(t, SegmentId(0), ClusterHint::NONE, b"y"),
            Err(StorageError::UnknownTxn(_))
        ));
        assert!(matches!(store.update(t, oid, b"z"), Err(StorageError::UnknownTxn(_))));
        assert!(matches!(store.commit(t), Err(StorageError::UnknownTxn(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_readers_on_ostore() {
        let dir = tmpdir("conc");
        let store = Arc::new(OStore::create(&dir, Options::default()).unwrap());
        let t = store.begin().unwrap();
        let mut oids = Vec::new();
        for i in 0..200u32 {
            oids.push(store.allocate(t, SegmentId(0), ClusterHint::NONE, &i.to_le_bytes()).unwrap());
        }
        store.commit(t).unwrap();
        let oids = Arc::new(oids);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = store.clone();
            let oids = oids.clone();
            handles.push(std::thread::spawn(move || {
                let t = store.begin().unwrap();
                let mut sum = 0u64;
                for &oid in oids.iter() {
                    let v = store.read_in(t, oid).unwrap();
                    sum += u32::from_le_bytes(v.try_into().unwrap()) as u64;
                }
                store.commit(t).unwrap();
                sum
            }));
        }
        let expected: u64 = (0..200u64).sum();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn whole_store_runs_on_sim_vfs_and_survives_power_loss() {
        let sim = SimVfs::new(99);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let dir = PathBuf::from("/sim/store");
        let opts = Options { sync_commit: true, ..Options::default() };
        let store = OStore::create_with(vfs, &dir, opts.clone()).unwrap();
        let t = store.begin().unwrap();
        let oid = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"survives").unwrap();
        store.commit(t).unwrap();
        // Pull the plug: everything unsynced is gone; the synced commit
        // must be reconstructible from the durable image alone.
        let after = sim.clone_durable();
        after.power_loss();
        let vfs2: Arc<dyn Vfs> = Arc::new(after);
        let store2 = OStore::open_with(vfs2, &dir, opts).unwrap();
        assert_eq!(store2.read(oid).unwrap(), b"survives");
    }
}
