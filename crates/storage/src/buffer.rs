//! A fixed-capacity buffer pool with clock eviction and fault accounting.
//!
//! Every page access in the page-based backends goes through this pool.
//! A miss that must read the backing file bumps [`StorageStats::faults`]
//! — the benchmark's simulated `majflt` — and, for Texas-style backends,
//! [`StorageStats::swizzles`] (a pointer-swizzling pass is charged each
//! time a non-resident page enters the resident set).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, MutexGuard};

use crate::error::Result;
use crate::ids::PageId;
use crate::lock_order::{self, Ranked};
use crate::pagefile::PageFile;
use crate::stats::StorageStats;
use crate::PAGE_PAYLOAD;

struct Frame {
    page: Option<PageId>,
    data: Box<[u8]>,
    dirty: bool,
    refbit: bool,
}

struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<u32, usize>,
    hand: usize,
}

/// Hook run once before a *steal* — the eviction write of a dirty frame.
/// The WAL-backed engine installs a log force here: the write-ahead rule
/// requires every record describing a page's effects to be durable before
/// that page may overwrite the data file, or a crash could leave stolen
/// uncommitted bytes with no undo image to roll them back.
type StealGuard = Box<dyn Fn() -> Result<()> + Send + Sync>;

/// The buffer pool. Page contents are only accessible through the
/// closure-based [`BufferPool::with_page`] / [`BufferPool::with_page_mut`],
/// which run under the pool lock — frames can therefore never be evicted
/// while in use, with no pin bookkeeping.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    file: Arc<PageFile>,
    stats: Arc<StorageStats>,
    count_swizzles: bool,
    steal_guard: OnceLock<StealGuard>,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `file`.
    ///
    /// `count_swizzles` enables the Texas-style swizzle counter.
    pub fn new(
        file: Arc<PageFile>,
        stats: Arc<StorageStats>,
        capacity: usize,
        count_swizzles: bool,
    ) -> Self {
        let capacity = capacity.max(2);
        let frames = (0..capacity)
            .map(|_| Frame {
                page: None,
                // Frames hold page *payloads*; the page file owns the
                // physical verification header.
                data: vec![0u8; PAGE_PAYLOAD].into_boxed_slice(),
                dirty: false,
                refbit: false,
            })
            .collect();
        BufferPool {
            inner: Mutex::new(PoolInner { frames, map: HashMap::new(), hand: 0 }),
            file,
            stats,
            count_swizzles,
            steal_guard: OnceLock::new(),
        }
    }

    /// Install the steal guard (at most once, at engine construction).
    pub fn set_steal_guard(&self, guard: StealGuard) {
        let _ = self.steal_guard.set(guard);
    }

    /// Lock the frame table with rank tracking. The guard is held across
    /// page-file reads and writes (a higher rank), never vice versa.
    fn pool_lock(&self) -> Ranked<MutexGuard<'_, PoolInner>> {
        lock_order::ranked(lock_order::BUFFER_POOL, || self.inner.lock())
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.pool_lock().frames.len()
    }

    fn locate(&self, inner: &mut PoolInner, pid: PageId, load: bool) -> Result<usize> {
        if let Some(&idx) = inner.map.get(&pid.0) {
            StorageStats::bump(&self.stats.hits, 1);
            inner.frames[idx].refbit = true;
            return Ok(idx);
        }
        StorageStats::bump(&self.stats.faults, 1);
        if self.count_swizzles {
            StorageStats::bump(&self.stats.swizzles, 1);
        }
        let idx = self.victim(inner)?;
        if load {
            self.file.read_page(pid, &mut inner.frames[idx].data)?;
        } else {
            inner.frames[idx].data.fill(0);
        }
        inner.frames[idx].page = Some(pid);
        inner.frames[idx].dirty = false;
        inner.frames[idx].refbit = true;
        inner.map.insert(pid.0, idx);
        Ok(idx)
    }

    /// Clock sweep: pick a victim frame, writing it back if dirty.
    ///
    /// Clean frames are preferred: a first sweep considers only frames
    /// that need no write-back, so steals (and the log force they entail
    /// under the write-ahead rule) happen only when every unreferenced
    /// frame is dirty.
    fn victim(&self, inner: &mut PoolInner) -> Result<usize> {
        let n = inner.frames.len();
        // First, any empty frame.
        if let Some(idx) = inner.frames.iter().position(|f| f.page.is_none()) {
            return Ok(idx);
        }
        // Clean-preferring clock: at most two full sweeps; dirty frames
        // are passed over (their refbits untouched).
        for _ in 0..2 * n {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            if inner.frames[idx].dirty {
                continue;
            }
            if inner.frames[idx].refbit {
                inner.frames[idx].refbit = false;
                continue;
            }
            if let Some(old) = inner.frames[idx].page {
                inner.map.remove(&old.0);
                inner.frames[idx].page = None;
            }
            return Ok(idx);
        }
        // Every unreferenced frame is dirty: steal one. Force the log
        // first so the stolen page's undo images are durable before its
        // bytes can reach the data file.
        if let Some(guard) = self.steal_guard.get() {
            guard()?;
        }
        for _ in 0..2 * n {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            if inner.frames[idx].refbit {
                inner.frames[idx].refbit = false;
                continue;
            }
            if let Some(old) = inner.frames[idx].page {
                if inner.frames[idx].dirty {
                    self.file.write_page(old, &inner.frames[idx].data)?;
                    inner.frames[idx].dirty = false;
                }
                inner.map.remove(&old.0);
                inner.frames[idx].page = None;
            }
            return Ok(idx);
        }
        // Nothing stays pinned outside the pool lock, so two sweeps always
        // find a victim; surface a typed error rather than panicking if
        // that invariant is ever broken.
        Err(crate::error::StorageError::Corrupt(
            "clock sweep found no victim in an unpinned pool".into(),
        ))
    }

    /// Run `f` with read access to page `pid`, faulting it in if needed.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut inner = self.pool_lock();
        let idx = self.locate(&mut inner, pid, true)?;
        Ok(f(&inner.frames[idx].data))
    }

    /// Run `f` with write access to page `pid`, marking it dirty.
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut inner = self.pool_lock();
        let idx = self.locate(&mut inner, pid, true)?;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data))
    }

    /// Materialize a freshly allocated page without reading the file
    /// (it is logically all-zero), run `f` on it, and mark it dirty.
    pub fn with_new_page<R>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut inner = self.pool_lock();
        let idx = self.locate(&mut inner, pid, false)?;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data))
    }

    /// Write every dirty frame back to the file (checkpoint support).
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.pool_lock();
        for frame in inner.frames.iter_mut() {
            if let (Some(pid), true) = (frame.page, frame.dirty) {
                self.file.write_page(pid, &frame.data)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Flush everything and drop all frames — makes the next accesses
    /// cold. Used by the clustering ablation to measure cold-cache reads.
    pub fn clear(&self) -> Result<()> {
        self.flush_all()?;
        let mut inner = self.pool_lock();
        inner.map.clear();
        for frame in inner.frames.iter_mut() {
            frame.page = None;
            frame.refbit = false;
        }
        Ok(())
    }

    /// How many distinct pages are currently resident.
    pub fn resident(&self) -> usize {
        self.pool_lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page;

    fn setup(name: &str, cap: usize) -> (Arc<PageFile>, Arc<StorageStats>, BufferPool) {
        let dir = std::env::temp_dir().join(format!("lfs-bp-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        let stats = Arc::new(StorageStats::default());
        let vfs = crate::vfs::RealVfs::arc();
        let file = Arc::new(PageFile::create(&vfs, &dir.join("data.pg"), stats.clone()).unwrap());
        let pool = BufferPool::new(file.clone(), stats.clone(), cap, false);
        (file, stats, pool)
    }

    #[test]
    fn hit_after_miss() {
        let (file, stats, pool) = setup("hits", 4);
        let pid = file.allocate_page();
        pool.with_new_page(pid, page::init).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.faults, 1); // only the with_new_page materialization
        assert_eq!(s.hits, 2);
        assert_eq!(s.page_reads, 0, "new page must not read the file");
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (file, stats, pool) = setup("evict", 2);
        let pids: Vec<_> = (0..5).map(|_| file.allocate_page()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            pool.with_new_page(pid, |buf| {
                page::init(buf);
                page::insert(buf, &[i as u8; 16]).unwrap();
            })
            .unwrap();
        }
        assert!(pool.resident() <= 2);
        // Re-read everything; evicted pages must come back intact.
        for (i, &pid) in pids.iter().enumerate() {
            let val = pool
                .with_page(pid, |buf| page::read(buf, crate::ids::Slot(0)).unwrap().to_vec())
                .unwrap();
            assert_eq!(val, vec![i as u8; 16]);
        }
        let s = stats.snapshot();
        assert!(s.page_writes >= 3, "dirty evictions must hit the file");
        assert!(s.faults >= 5 + 3, "cap-2 pool re-reading 5 pages must fault");
    }

    #[test]
    fn flush_all_then_file_has_data() {
        let (file, _stats, pool) = setup("flush", 8);
        let pid = file.allocate_page();
        pool.with_new_page(pid, |buf| {
            page::init(buf);
            page::insert(buf, b"persisted").unwrap();
        })
        .unwrap();
        pool.flush_all().unwrap();
        let mut raw = vec![0u8; PAGE_PAYLOAD];
        file.read_page(pid, &mut raw).unwrap();
        assert_eq!(page::read(&raw, crate::ids::Slot(0)).unwrap(), b"persisted");
    }

    #[test]
    fn clear_makes_next_access_cold() {
        let (file, stats, pool) = setup("clear", 8);
        let pid = file.allocate_page();
        pool.with_new_page(pid, page::init).unwrap();
        pool.clear().unwrap();
        assert_eq!(pool.resident(), 0);
        let before = stats.snapshot();
        pool.with_page(pid, |_| ()).unwrap();
        let after = stats.snapshot();
        assert_eq!(after.delta(&before).faults, 1);
    }

    #[test]
    fn swizzle_accounting_only_when_enabled() {
        let dir = std::env::temp_dir().join(format!("lfs-bp-{}-swz", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stats = Arc::new(StorageStats::default());
        let vfs = crate::vfs::RealVfs::arc();
        let file = Arc::new(PageFile::create(&vfs, &dir.join("d.pg"), stats.clone()).unwrap());
        let pool = BufferPool::new(file.clone(), stats.clone(), 2, true);
        let pid = file.allocate_page();
        pool.with_new_page(pid, page::init).unwrap();
        assert_eq!(stats.snapshot().swizzles, 1);
    }
}
