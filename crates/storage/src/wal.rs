//! Write-ahead log for the ObjectStore-like backend.
//!
//! Logical (operation-level) logging: each record describes one object
//! operation inside a transaction. Recovery replays the committed suffix
//! since the last checkpoint; the log is truncated at each checkpoint.
//!
//! Records are framed as `[len u32][fnv1a-32 u32][body]`; replay stops at
//! the first torn or corrupt frame, so a crash mid-append loses at most
//! the uncommitted tail.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};

use crate::error::{Result, StorageError};
use crate::ids::{ClusterHint, Oid, SegmentId};
use crate::lock_order::{self, Ranked};
use crate::stats::StorageStats;

/// One logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction began.
    Begin(u64),
    /// An object was allocated.
    Alloc {
        /// Owning transaction.
        txn: u64,
        /// The oid assigned.
        oid: Oid,
        /// Placement segment.
        seg: SegmentId,
        /// Clustering hint (replayed so recovered placement matches).
        hint: ClusterHint,
        /// Object payload.
        data: Vec<u8>,
    },
    /// An object was overwritten.
    Update {
        /// Owning transaction.
        txn: u64,
        /// The object updated.
        oid: Oid,
        /// New payload.
        data: Vec<u8>,
    },
    /// An object was freed.
    Free {
        /// Owning transaction.
        txn: u64,
        /// The object freed.
        oid: Oid,
    },
    /// The transaction committed.
    Commit(u64),
    /// The transaction aborted (its records must not be replayed).
    Abort(u64),
}

impl WalRecord {
    /// Transaction id the record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            WalRecord::Begin(t) | WalRecord::Commit(t) | WalRecord::Abort(t) => *t,
            WalRecord::Alloc { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Free { txn, .. } => *txn,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Begin(t) => {
                out.push(1);
                out.extend_from_slice(&t.to_le_bytes());
            }
            WalRecord::Alloc { txn, oid, seg, hint, data } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
                out.push(seg.0);
                out.extend_from_slice(&hint.0.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            WalRecord::Update { txn, oid, data } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            WalRecord::Free { txn, oid } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
            }
            WalRecord::Commit(t) => {
                out.push(5);
                out.extend_from_slice(&t.to_le_bytes());
            }
            WalRecord::Abort(t) => {
                out.push(6);
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
    }

    fn decode(body: &[u8]) -> Result<WalRecord> {
        let corrupt = || StorageError::Corrupt("short WAL record body".into());
        let tag = *body.first().ok_or_else(corrupt)?;
        let rest = &body[1..];
        let u64_at = |at: usize| -> Result<u64> {
            rest.get(at..at + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or_else(corrupt)
        };
        let u32_at = |at: usize| -> Result<u32> {
            rest.get(at..at + 4)
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(corrupt)
        };
        match tag {
            1 => Ok(WalRecord::Begin(u64_at(0)?)),
            2 => {
                let txn = u64_at(0)?;
                let oid = Oid::from_raw(u64_at(8)?);
                let seg = SegmentId(*rest.get(16).ok_or_else(corrupt)?);
                let hint = ClusterHint(u64_at(17)?);
                let len = u32_at(25)? as usize;
                let data = rest.get(29..29 + len).ok_or_else(corrupt)?.to_vec();
                Ok(WalRecord::Alloc { txn, oid, seg, hint, data })
            }
            3 => {
                let txn = u64_at(0)?;
                let oid = Oid::from_raw(u64_at(8)?);
                let len = u32_at(16)? as usize;
                let data = rest.get(20..20 + len).ok_or_else(corrupt)?.to_vec();
                Ok(WalRecord::Update { txn, oid, data })
            }
            4 => Ok(WalRecord::Free { txn: u64_at(0)?, oid: Oid::from_raw(u64_at(8)?) }),
            5 => Ok(WalRecord::Commit(u64_at(0)?)),
            6 => Ok(WalRecord::Abort(u64_at(0)?)),
            t => Err(StorageError::Corrupt(format!("unknown WAL tag {t}"))),
        }
    }
}

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Ticket bookkeeping for group commit. Committers take a ticket on
/// arrival; one of them becomes the *leader*, optionally waits out the
/// batching window, then forces the log once on behalf of every ticket
/// issued so far. Followers block on the condvar until their ticket is
/// covered.
#[derive(Default)]
struct GroupState {
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Tickets below this value have had their records forced.
    forced_ticket: u64,
    /// A leader is currently flushing on everyone's behalf.
    leader_active: bool,
}

/// The write-ahead log file: append-only and write-buffered. Records
/// accumulate in a [`BufWriter`]; committing transactions call
/// [`Wal::group_commit`], which batches concurrent commits into a single
/// log force (flush to the OS, plus `fdatasync` when durability is
/// requested) — the usual group-commit trade of a little latency for far
/// fewer syncs.
pub struct Wal {
    writer: Mutex<BufWriter<File>>,
    written: AtomicU64,
    stats: Arc<StorageStats>,
    group: StdMutex<GroupState>,
    group_wakeup: Condvar,
    /// How long a leader lingers before forcing, letting more commits
    /// join the batch. `None` forces immediately (batching still happens
    /// opportunistically while a force is in flight).
    window: Option<Duration>,
}

impl Wal {
    /// Lock the append buffer with rank tracking. Held across the flush
    /// and fdatasync of a force — the writer mutex is what serializes
    /// log forces — and never while acquiring any other lock.
    fn writer_lock(&self) -> Ranked<MutexGuard<'_, BufWriter<File>>> {
        lock_order::ranked(lock_order::WAL_WRITER, || self.writer.lock())
    }

    /// Create a fresh (empty) log at `path`.
    pub fn create(path: &Path, stats: Arc<StorageStats>, window: Option<Duration>) -> Result<Self> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        // `truncate` is incompatible with append mode; empty it manually.
        file.set_len(0)?;
        Ok(Wal {
            writer: Mutex::new(BufWriter::with_capacity(64 * 1024, file)),
            written: AtomicU64::new(0),
            stats,
            group: StdMutex::new(GroupState::default()),
            group_wakeup: Condvar::new(),
            window,
        })
    }

    /// Open an existing log for appending (after replay).
    pub fn open(path: &Path, stats: Arc<StorageStats>, window: Option<Duration>) -> Result<Self> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            writer: Mutex::new(BufWriter::with_capacity(64 * 1024, file)),
            written: AtomicU64::new(len),
            stats,
            group: StdMutex::new(GroupState::default()),
            group_wakeup: Condvar::new(),
            window,
        })
    }

    /// Append a record to the log (buffered).
    pub fn append(&self, rec: &WalRecord) -> Result<()> {
        let mut body = Vec::with_capacity(64);
        rec.encode(&mut body);
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.writer_lock().write_all(&frame)?;
        self.written.fetch_add(frame.len() as u64, Ordering::Relaxed);
        StorageStats::bump(&self.stats.wal_bytes, frame.len() as u64);
        Ok(())
    }

    /// Group commit: ensure every record appended by the caller (up to
    /// and including its commit record) has been forced to the log.
    ///
    /// The caller must have finished appending before calling. Concurrent
    /// committers share one physical force: the first to arrive becomes
    /// the leader, lingers for the configured window so stragglers can
    /// join, then flushes once for the whole batch. `durable` adds an
    /// `fdatasync`; otherwise the force stops at the OS page cache (the
    /// benchmark's default, matching checkpoint-based durability).
    pub fn group_commit(&self, durable: bool) -> Result<()> {
        // Explicit rank token: the guard is consumed and re-produced by
        // the condvar wait, so it cannot carry the rank itself. Both are
        // released before the leader sleeps or forces.
        let rank = lock_order::acquire(lock_order::WAL_GROUP);
        let mut g = self.group.lock().unwrap_or_else(|e| e.into_inner());
        let my_ticket = g.next_ticket;
        g.next_ticket += 1;
        loop {
            if g.forced_ticket > my_ticket {
                return Ok(());
            }
            if !g.leader_active {
                g.leader_active = true;
                drop(g);
                drop(rank);
                if let Some(window) = self.window {
                    if !window.is_zero() {
                        std::thread::sleep(window);
                    }
                }
                // Every ticket issued by now belongs to a committer whose
                // records are already in the buffer, so one force covers
                // them all.
                let batch_end = {
                    let _rank = lock_order::acquire(lock_order::WAL_GROUP);
                    self.group.lock().unwrap_or_else(|e| e.into_inner()).next_ticket
                };
                let result = self.force(durable);
                {
                    let _rank = lock_order::acquire(lock_order::WAL_GROUP);
                    let mut g = self.group.lock().unwrap_or_else(|e| e.into_inner());
                    g.leader_active = false;
                    if result.is_ok() {
                        g.forced_ticket = g.forced_ticket.max(batch_end);
                    }
                }
                self.group_wakeup.notify_all();
                return result;
            }
            g = self.group_wakeup.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn force(&self, durable: bool) -> Result<()> {
        let mut w = self.writer_lock();
        w.flush()?;
        if durable {
            w.get_ref().sync_data()?;
        }
        StorageStats::bump(&self.stats.wal_syncs, 1);
        Ok(())
    }

    /// Read every intact record from the start of the log. Stops silently
    /// at the first torn/corrupt frame (crash tail).
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let le_u32 = |at: usize| -> Option<u32> {
            data.get(at..at + 4).and_then(|s| s.try_into().ok()).map(u32::from_le_bytes)
        };
        let mut out = Vec::new();
        let mut at = 0usize;
        while at + 8 <= data.len() {
            let (Some(len), Some(crc)) = (le_u32(at), le_u32(at + 4)) else {
                break; // torn tail
            };
            let len = len as usize;
            if at + 8 + len > data.len() {
                break; // torn tail
            }
            let body = &data[at + 8..at + 8 + len];
            if fnv1a(body) != crc {
                break; // corrupt tail
            }
            match WalRecord::decode(body) {
                Ok(rec) => out.push(rec),
                Err(_) => break,
            }
            at += 8 + len;
        }
        Ok(out)
    }

    /// Discard the log contents (after a checkpoint made them redundant).
    pub fn truncate(&self) -> Result<()> {
        let mut w = self.writer_lock();
        w.flush()?;
        let file = w.get_ref();
        file.set_len(0)?;
        // analyzer: allow(blocking, "truncation syncs the guarded log file itself; the writer mutex is what serializes it")
        file.sync_data()?;
        self.written.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Bytes appended so far (including any still buffered).
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(self.written.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lfs-wal-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin(1),
            WalRecord::Alloc {
                txn: 1,
                oid: Oid::from_raw(10),
                seg: SegmentId(2),
                hint: ClusterHint(99),
                data: b"payload".to_vec(),
            },
            WalRecord::Update { txn: 1, oid: Oid::from_raw(10), data: b"updated".to_vec() },
            WalRecord::Free { txn: 1, oid: Oid::from_raw(4) },
            WalRecord::Commit(1),
            WalRecord::Begin(2),
            WalRecord::Abort(2),
        ]
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("rt");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&path, stats.clone(), None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.group_commit(true).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, sample_records());
        assert!(stats.snapshot().wal_bytes > 0);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = tmp("missing").join("never-created.log");
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&path, stats, None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        // Chop a few bytes off the end: last frame is torn.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), sample_records().len() - 1);
    }

    #[test]
    fn corrupt_byte_stops_replay_at_that_frame() {
        let path = tmp("corrupt");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&path, stats, None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the second frame's body.
        let first_len = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        let second_body_start = 8 + first_len + 8;
        data[second_body_start + 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1, "only the first intact frame survives");
    }

    #[test]
    fn truncate_empties_log() {
        let path = tmp("trunc");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&path, stats, None).unwrap();
        wal.append(&WalRecord::Begin(5)).unwrap();
        assert!(wal.len_bytes().unwrap() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes().unwrap(), 0);
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        // With a batching window, many concurrent committers should share
        // far fewer physical forces than there are commits.
        let path = tmp("group");
        let stats = Arc::new(StorageStats::default());
        let wal =
            Arc::new(Wal::create(&path, stats.clone(), Some(Duration::from_millis(2))).unwrap());
        const THREADS: u64 = 8;
        const COMMITS_PER_THREAD: u64 = 10;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..COMMITS_PER_THREAD {
                    let txn = t * 1000 + i;
                    wal.append(&WalRecord::Begin(txn)).unwrap();
                    wal.append(&WalRecord::Commit(txn)).unwrap();
                    wal.group_commit(false).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let syncs = stats.snapshot().wal_syncs;
        assert!(syncs >= 1, "at least one force must happen");
        assert!(
            syncs < THREADS * COMMITS_PER_THREAD,
            "group commit should batch: {syncs} forces for {} commits",
            THREADS * COMMITS_PER_THREAD
        );
        // Every commit record must be on disk after group_commit returned.
        let committed =
            Wal::replay(&path).unwrap().iter().filter(|r| matches!(r, WalRecord::Commit(_))).count();
        assert_eq!(committed as u64, THREADS * COMMITS_PER_THREAD);
    }

    #[test]
    fn txn_accessor() {
        for rec in sample_records() {
            assert!(rec.txn() == 1 || rec.txn() == 2);
        }
    }
}
