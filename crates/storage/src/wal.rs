//! Write-ahead log for the ObjectStore-like backend.
//!
//! Logical (operation-level) logging: each record describes one object
//! operation inside a transaction. Recovery replays the committed suffix
//! since the last checkpoint; the log is truncated at each checkpoint.
//!
//! Records are framed as `[len u32][fnv1a-32 u32][body]`; replay stops at
//! the first torn or corrupt frame, so a crash mid-append loses at most
//! the uncommitted tail.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::ids::{ClusterHint, Oid, SegmentId};
use crate::stats::StorageStats;

/// One logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction began.
    Begin(u64),
    /// An object was allocated.
    Alloc {
        /// Owning transaction.
        txn: u64,
        /// The oid assigned.
        oid: Oid,
        /// Placement segment.
        seg: SegmentId,
        /// Clustering hint (replayed so recovered placement matches).
        hint: ClusterHint,
        /// Object payload.
        data: Vec<u8>,
    },
    /// An object was overwritten.
    Update {
        /// Owning transaction.
        txn: u64,
        /// The object updated.
        oid: Oid,
        /// New payload.
        data: Vec<u8>,
    },
    /// An object was freed.
    Free {
        /// Owning transaction.
        txn: u64,
        /// The object freed.
        oid: Oid,
    },
    /// The transaction committed.
    Commit(u64),
    /// The transaction aborted (its records must not be replayed).
    Abort(u64),
}

impl WalRecord {
    /// Transaction id the record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            WalRecord::Begin(t) | WalRecord::Commit(t) | WalRecord::Abort(t) => *t,
            WalRecord::Alloc { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Free { txn, .. } => *txn,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Begin(t) => {
                out.push(1);
                out.extend_from_slice(&t.to_le_bytes());
            }
            WalRecord::Alloc { txn, oid, seg, hint, data } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
                out.push(seg.0);
                out.extend_from_slice(&hint.0.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            WalRecord::Update { txn, oid, data } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            WalRecord::Free { txn, oid } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
            }
            WalRecord::Commit(t) => {
                out.push(5);
                out.extend_from_slice(&t.to_le_bytes());
            }
            WalRecord::Abort(t) => {
                out.push(6);
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
    }

    fn decode(body: &[u8]) -> Result<WalRecord> {
        let corrupt = || StorageError::Corrupt("short WAL record body".into());
        let tag = *body.first().ok_or_else(corrupt)?;
        let rest = &body[1..];
        let u64_at = |at: usize| -> Result<u64> {
            rest.get(at..at + 8)
                .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(corrupt)
        };
        let u32_at = |at: usize| -> Result<u32> {
            rest.get(at..at + 4)
                .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(corrupt)
        };
        match tag {
            1 => Ok(WalRecord::Begin(u64_at(0)?)),
            2 => {
                let txn = u64_at(0)?;
                let oid = Oid::from_raw(u64_at(8)?);
                let seg = SegmentId(*rest.get(16).ok_or_else(corrupt)?);
                let hint = ClusterHint(u64_at(17)?);
                let len = u32_at(25)? as usize;
                let data = rest.get(29..29 + len).ok_or_else(corrupt)?.to_vec();
                Ok(WalRecord::Alloc { txn, oid, seg, hint, data })
            }
            3 => {
                let txn = u64_at(0)?;
                let oid = Oid::from_raw(u64_at(8)?);
                let len = u32_at(16)? as usize;
                let data = rest.get(20..20 + len).ok_or_else(corrupt)?.to_vec();
                Ok(WalRecord::Update { txn, oid, data })
            }
            4 => Ok(WalRecord::Free { txn: u64_at(0)?, oid: Oid::from_raw(u64_at(8)?) }),
            5 => Ok(WalRecord::Commit(u64_at(0)?)),
            6 => Ok(WalRecord::Abort(u64_at(0)?)),
            t => Err(StorageError::Corrupt(format!("unknown WAL tag {t}"))),
        }
    }
}

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The write-ahead log file: append-only and write-buffered. Records
/// accumulate in a [`BufWriter`]; [`Wal::flush`] (called at commit)
/// pushes them to the OS, and [`Wal::sync`] forces them to stable
/// storage — the usual group-commit trade.
pub struct Wal {
    writer: Mutex<BufWriter<File>>,
    written: AtomicU64,
    stats: Arc<StorageStats>,
}

impl Wal {
    /// Create a fresh (empty) log at `path`.
    pub fn create(path: &Path, stats: Arc<StorageStats>) -> Result<Self> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        // `truncate` is incompatible with append mode; empty it manually.
        file.set_len(0)?;
        Ok(Wal {
            writer: Mutex::new(BufWriter::with_capacity(64 * 1024, file)),
            written: AtomicU64::new(0),
            stats,
        })
    }

    /// Open an existing log for appending (after replay).
    pub fn open(path: &Path, stats: Arc<StorageStats>) -> Result<Self> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            writer: Mutex::new(BufWriter::with_capacity(64 * 1024, file)),
            written: AtomicU64::new(len),
            stats,
        })
    }

    /// Append a record to the log (buffered).
    pub fn append(&self, rec: &WalRecord) -> Result<()> {
        let mut body = Vec::with_capacity(64);
        rec.encode(&mut body);
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.writer.lock().write_all(&frame)?;
        self.written.fetch_add(frame.len() as u64, Ordering::Relaxed);
        StorageStats::bump(&self.stats.wal_bytes, frame.len() as u64);
        Ok(())
    }

    /// Push buffered records to the OS (commit point).
    pub fn flush(&self) -> Result<()> {
        self.writer.lock().flush()?;
        Ok(())
    }

    /// Force the log to stable storage.
    pub fn sync(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        w.get_ref().sync_data()?;
        Ok(())
    }

    /// Read every intact record from the start of the log. Stops silently
    /// at the first torn/corrupt frame (crash tail).
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut out = Vec::new();
        let mut at = 0usize;
        while at + 8 <= data.len() {
            let len = u32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[at + 4..at + 8].try_into().unwrap());
            if at + 8 + len > data.len() {
                break; // torn tail
            }
            let body = &data[at + 8..at + 8 + len];
            if fnv1a(body) != crc {
                break; // corrupt tail
            }
            match WalRecord::decode(body) {
                Ok(rec) => out.push(rec),
                Err(_) => break,
            }
            at += 8 + len;
        }
        Ok(out)
    }

    /// Discard the log contents (after a checkpoint made them redundant).
    pub fn truncate(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        let file = w.get_ref();
        file.set_len(0)?;
        file.sync_data()?;
        self.written.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Bytes appended so far (including any still buffered).
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(self.written.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lfs-wal-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin(1),
            WalRecord::Alloc {
                txn: 1,
                oid: Oid::from_raw(10),
                seg: SegmentId(2),
                hint: ClusterHint(99),
                data: b"payload".to_vec(),
            },
            WalRecord::Update { txn: 1, oid: Oid::from_raw(10), data: b"updated".to_vec() },
            WalRecord::Free { txn: 1, oid: Oid::from_raw(4) },
            WalRecord::Commit(1),
            WalRecord::Begin(2),
            WalRecord::Abort(2),
        ]
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("rt");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&path, stats.clone()).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, sample_records());
        assert!(stats.snapshot().wal_bytes > 0);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = tmp("missing").join("never-created.log");
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&path, stats).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        // Chop a few bytes off the end: last frame is torn.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), sample_records().len() - 1);
    }

    #[test]
    fn corrupt_byte_stops_replay_at_that_frame() {
        let path = tmp("corrupt");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&path, stats).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the second frame's body.
        let first_len = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        let second_body_start = 8 + first_len + 8;
        data[second_body_start + 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1, "only the first intact frame survives");
    }

    #[test]
    fn truncate_empties_log() {
        let path = tmp("trunc");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&path, stats).unwrap();
        wal.append(&WalRecord::Begin(5)).unwrap();
        assert!(wal.len_bytes().unwrap() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes().unwrap(), 0);
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn txn_accessor() {
        for rec in sample_records() {
            assert!(rec.txn() == 1 || rec.txn() == 2);
        }
    }
}
