//! Write-ahead log for the ObjectStore-like backend.
//!
//! Logical (operation-level) logging: each record describes one object
//! operation inside a transaction. Recovery replays the committed suffix
//! since the last checkpoint; the log is truncated at each checkpoint and
//! restarted with a [`WalRecord::Reset`] frame carrying the checkpoint
//! epoch, so replay can tell a stale pre-checkpoint log (crash between
//! the metadata flip and the log truncation) from a current one.
//!
//! Records are framed as `[len u32][crc u32][body]`, where the crc is
//! `fnv1a(frame offset ‖ body)` — *position-aware*, so a perfectly valid
//! frame that a misdirected write landed at the wrong offset fails its
//! checksum instead of replaying someone else's history. A torn frame at
//! end-of-log is the expected signature of a crash mid-append and is
//! silently truncated (the loss is reported via [`WalReplay`]); a *complete*
//! frame that fails its checksum or does not decode is interior corruption
//! and surfaces as [`StorageError::Recovery`] — replay must not silently
//! drop committed work.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, MutexGuard};

use crate::checksum::fnv1a_multi;
use crate::error::{RecoveryError, Result, StorageError};
use crate::ids::{ClusterHint, Oid, SegmentId};
use crate::lock_order::{self, Ranked};
use crate::retry::with_retries;
use crate::stats::StorageStats;
use crate::vfs::{OpenMode, Vfs, VfsFile};
use crate::waits;

/// One logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction began.
    Begin(u64),
    /// An object was allocated.
    Alloc {
        /// Owning transaction.
        txn: u64,
        /// The oid assigned.
        oid: Oid,
        /// Placement segment.
        seg: SegmentId,
        /// Clustering hint (replayed so recovered placement matches).
        hint: ClusterHint,
        /// Object payload.
        data: Vec<u8>,
    },
    /// An object was overwritten.
    Update {
        /// Owning transaction.
        txn: u64,
        /// The object updated.
        oid: Oid,
        /// New payload.
        data: Vec<u8>,
        /// Payload before the update — the undo image recovery restores
        /// if this transaction turns out to be a loser. Required because
        /// the buffer pool steals (evicts dirty pages of uncommitted
        /// transactions to the data file).
        old: Vec<u8>,
    },
    /// An object was freed.
    Free {
        /// Owning transaction.
        txn: u64,
        /// The object freed.
        oid: Oid,
        /// Payload before the free (undo image; see [`WalRecord::Update`]).
        old: Vec<u8>,
    },
    /// The transaction committed.
    Commit(u64),
    /// The transaction aborted (its records must not be replayed).
    Abort(u64),
    /// The log was truncated by a checkpoint with this epoch. Always the
    /// first frame of a post-checkpoint log; lets replay detect a stale
    /// log left behind when a crash lands between the metadata flip and
    /// the log truncation.
    Reset(u64),
}

impl WalRecord {
    /// Transaction id the record belongs to (0 for [`WalRecord::Reset`],
    /// which belongs to no transaction).
    pub fn txn(&self) -> u64 {
        match self {
            WalRecord::Begin(t) | WalRecord::Commit(t) | WalRecord::Abort(t) => *t,
            WalRecord::Alloc { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Free { txn, .. } => *txn,
            WalRecord::Reset(_) => 0,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Begin(t) => {
                out.push(1);
                out.extend_from_slice(&t.to_le_bytes());
            }
            WalRecord::Alloc { txn, oid, seg, hint, data } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
                out.push(seg.0);
                out.extend_from_slice(&hint.0.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            WalRecord::Update { txn, oid, data, old } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
                out.extend_from_slice(&(old.len() as u32).to_le_bytes());
                out.extend_from_slice(old);
            }
            WalRecord::Free { txn, oid, old } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&oid.raw().to_le_bytes());
                out.extend_from_slice(&(old.len() as u32).to_le_bytes());
                out.extend_from_slice(old);
            }
            WalRecord::Commit(t) => {
                out.push(5);
                out.extend_from_slice(&t.to_le_bytes());
            }
            WalRecord::Abort(t) => {
                out.push(6);
                out.extend_from_slice(&t.to_le_bytes());
            }
            WalRecord::Reset(epoch) => {
                out.push(7);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
        }
    }

    fn decode(body: &[u8]) -> Result<WalRecord> {
        let corrupt = || StorageError::Corrupt("short WAL record body".into());
        let tag = *body.first().ok_or_else(corrupt)?;
        let rest = body.get(1..).ok_or_else(corrupt)?;
        let u64_at = |at: usize| -> Result<u64> {
            rest.get(at..at + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or_else(corrupt)
        };
        let u32_at = |at: usize| -> Result<u32> {
            rest.get(at..at + 4)
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(corrupt)
        };
        match tag {
            1 => Ok(WalRecord::Begin(u64_at(0)?)),
            2 => {
                let txn = u64_at(0)?;
                let oid = Oid::from_raw(u64_at(8)?);
                let seg = SegmentId(*rest.get(16).ok_or_else(corrupt)?);
                let hint = ClusterHint(u64_at(17)?);
                let len = u32_at(25)? as usize;
                let data = rest.get(29..29 + len).ok_or_else(corrupt)?.to_vec();
                Ok(WalRecord::Alloc { txn, oid, seg, hint, data })
            }
            3 => {
                let txn = u64_at(0)?;
                let oid = Oid::from_raw(u64_at(8)?);
                let len = u32_at(16)? as usize;
                let data = rest.get(20..20 + len).ok_or_else(corrupt)?.to_vec();
                let old_len = u32_at(20 + len)? as usize;
                let old = rest.get(24 + len..24 + len + old_len).ok_or_else(corrupt)?.to_vec();
                Ok(WalRecord::Update { txn, oid, data, old })
            }
            4 => {
                let txn = u64_at(0)?;
                let oid = Oid::from_raw(u64_at(8)?);
                let old_len = u32_at(16)? as usize;
                let old = rest.get(20..20 + old_len).ok_or_else(corrupt)?.to_vec();
                Ok(WalRecord::Free { txn, oid, old })
            }
            5 => Ok(WalRecord::Commit(u64_at(0)?)),
            6 => Ok(WalRecord::Abort(u64_at(0)?)),
            7 => Ok(WalRecord::Reset(u64_at(0)?)),
            t => Err(StorageError::Corrupt(format!("unknown WAL tag {t}"))),
        }
    }
}

fn encode_body(rec: &WalRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    rec.encode(&mut body);
    body
}

/// Frame checksum, bound to the frame's byte offset in the log: the
/// same body at a different position has a different crc, so replay
/// rejects misdirected log writes instead of accepting them as history.
fn frame_crc(offset: u64, body: &[u8]) -> u32 {
    fnv1a_multi(&[&offset.to_le_bytes(), body])
}

/// Assemble the on-disk frame for a body that will be written at
/// `offset`.
fn frame_at(offset: u64, body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&frame_crc(offset, body).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// How far past an apparent tear replay searches for a later intact
/// frame before trusting the tear. Bounds the rescue scan's cost; any
/// realistic frame (bodies are object-sized) starts well inside it.
const TEAR_SCAN_WINDOW: usize = 4 << 20;

/// Look for a complete frame whose position-bound checksum verifies at
/// some offset after `cut`. A genuine crash tear is always the *last*
/// thing in a log, so an intact frame behind the cut proves the "tear"
/// is really interior damage wearing a tear's clothes — e.g. a rotted
/// length field that makes a mid-log frame claim to run past EOF.
fn intact_frame_after(data: &[u8], cut: usize) -> Option<u64> {
    let end = data.len().min(cut.saturating_add(TEAR_SCAN_WINDOW));
    for at in cut + 1..end {
        let Some(rest) = data.get(at..) else { break };
        let Some((len_bytes, rest)) = rest.split_first_chunk::<4>() else { break };
        let Some((crc_bytes, rest)) = rest.split_first_chunk::<4>() else { break };
        let len = u32::from_le_bytes(*len_bytes) as usize;
        // Zero-length bodies never occur (every record has at least a
        // tag byte), and skipping them avoids trusting a checksum that
        // covers nothing but the offset.
        if len == 0 {
            continue;
        }
        let Some(body) = rest.get(..len) else { continue };
        if frame_crc(at as u64, body) == u32::from_le_bytes(*crc_bytes) {
            return Some(at as u64);
        }
    }
    None
}

/// A contiguous run of whole, checksum-verified WAL frames read from
/// the flushed portion of the log, ready to ship to a replication
/// follower. `bytes` holds the frames exactly as they sit on disk, so
/// the follower re-verifies each position-bound checksum against the
/// absolute offsets `[start, end)` — a torn, rotted, or reordered
/// chunk fails verification instead of replaying as history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalChunk {
    /// Absolute byte offset of the first frame in this chunk.
    pub start: u64,
    /// Offset one past the last byte: the next stream request point.
    pub end: u64,
    /// The raw frame bytes, as written (and checksummed) on disk.
    pub bytes: Vec<u8>,
}

impl WalChunk {
    /// True when the stream had nothing new past `start`.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Decode a shipped chunk's frames, verifying each position-bound
/// checksum against its absolute log offset (`start` + position in
/// `bytes`). Unlike [`Wal::replay`], *nothing* is forgiven: a shipped
/// chunk is a complete artifact, so a truncated final frame is damage
/// (a network-level tear), not an expected crash tail. Returns each
/// record with the absolute offset of the frame that carried it.
pub fn decode_shipped(start: u64, bytes: &[u8]) -> Result<Vec<(u64, WalRecord)>> {
    let mut out = Vec::new();
    let mut at = 0usize;
    let mut frames = 0u64;
    let fail = |at: usize, frames: u64, detail: String| {
        StorageError::Recovery(RecoveryError { offset: start + at as u64, frame: frames, detail })
    };
    while at < bytes.len() {
        let header = bytes
            .get(at..)
            .and_then(|r| r.split_first_chunk::<4>())
            .and_then(|(len, r)| r.split_first_chunk::<4>().map(|(crc, rest)| (len, crc, rest)));
        let Some((len_bytes, crc_bytes, rest)) = header else {
            return Err(fail(at, frames, "shipped frame header torn at chunk end".into()));
        };
        let len = u32::from_le_bytes(*len_bytes) as usize;
        let crc = u32::from_le_bytes(*crc_bytes);
        let Some(body) = rest.get(..len) else {
            return Err(fail(at, frames, format!("shipped frame body torn: {len} bytes claimed")));
        };
        if frame_crc(start + at as u64, body) != crc {
            return Err(fail(
                at,
                frames,
                "shipped frame failed its position-bound checksum (damaged or reordered)".into(),
            ));
        }
        let rec = WalRecord::decode(body)
            .map_err(|e| fail(at, frames, format!("undecodable shipped record: {e}")))?;
        out.push((start + at as u64, rec));
        frames += 1;
        at += 8 + len;
    }
    Ok(out)
}

/// Everything replay learned from the log.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// The intact records, in append order (including any leading
    /// [`WalRecord::Reset`]).
    pub records: Vec<WalRecord>,
    /// Number of intact frames decoded.
    pub frames: u64,
    /// Bytes of torn tail discarded (0 after a clean shutdown).
    pub bytes_truncated: u64,
}

/// The append side of the log: the file handle plus an in-memory tail of
/// frames not yet written out. Unflushed frames belong to transactions
/// whose commit has not been forced, so losing them on a crash is exactly
/// the contract.
struct WalWriter {
    file: Box<dyn VfsFile>,
    /// Offset where the next flush writes (bytes already in the file).
    flushed: u64,
    /// Encoded record *bodies* awaiting the next flush. Frames are
    /// assembled at flush time, once each body's file offset is known —
    /// the frame crc covers that offset (see [`frame_crc`]), and a
    /// truncation can reset `flushed` while bodies are still queued.
    buf: Vec<Vec<u8>>,
    /// Shared counters (for the transient-retry stat).
    stats: Arc<StorageStats>,
    /// A truncation failed partway: the log head (empty file + reset
    /// frame for this epoch) must be re-established before any frame may
    /// be written. Without this, a transient I/O error during
    /// [`Wal::truncate`] would let later flushes append either to the
    /// stale pre-checkpoint log (recovery skips it as stale — silently
    /// dropping acknowledged commits) or at offset zero with no reset
    /// frame (recovery rejects the log as corrupt).
    pending_reset: Option<u64>,
}

impl WalWriter {
    /// Re-establish the log head if a truncation is still pending. The
    /// write ordering (set_len, then the reset frame, then any frames
    /// behind it) is what keeps every possible crash image well-formed;
    /// durability is the caller's business.
    fn repair_head(&mut self) -> Result<()> {
        if let Some(epoch) = self.pending_reset {
            let stats = self.stats.clone();
            with_retries(
                || self.file.set_len(0),
                || StorageStats::bump(&stats.io_retries, 1),
            )?;
            self.flushed = 0;
            let frame = frame_at(0, &encode_body(&WalRecord::Reset(epoch)));
            with_retries(
                || self.file.write_at(0, &frame),
                || StorageStats::bump(&stats.io_retries, 1),
            )?;
            self.flushed = frame.len() as u64;
            self.pending_reset = None;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.repair_head()?;
        if !self.buf.is_empty() {
            // Assemble the batch now that each body's offset is final.
            let mut batch = Vec::new();
            let mut offset = self.flushed;
            for body in &self.buf {
                let frame = frame_at(offset, body);
                offset += frame.len() as u64;
                batch.extend_from_slice(&frame);
            }
            let stats = self.stats.clone();
            with_retries(
                || self.file.write_at(self.flushed, &batch),
                || StorageStats::bump(&stats.io_retries, 1),
            )?;
            self.flushed += batch.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }
}

/// A force failure published by the log-writer thread. Every ticket
/// below `through` not already covered by a successful force observes
/// the same shared error — one typed failure per batch, instead of each
/// covered committer re-forcing a possibly-dead disk in turn.
struct FailedRange {
    /// One past the last ticket the failed batch would have covered.
    through: u64,
    /// The force error, shared by every covered waiter.
    error: Arc<StorageError>,
}

/// The log-writer's request queue. Committers take a ticket (after
/// their records are in the append buffer), record whether they need a
/// sync, and park on the `done` condvar until the matching watermark
/// passes their ticket; the dedicated writer thread claims the queue in
/// batches and forces once per batch — at the strongest durability any
/// member requested, never a downgrade.
#[derive(Default)]
struct LogQueue {
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Tickets below this bound have been claimed by the writer,
    /// successfully or not. The writer only forces again when work
    /// arrives beyond this point, so a failed batch costs one
    /// bounded-retry force, not one more per covered committer.
    claimed_ticket: u64,
    /// Tickets below this bound have had their records written out to
    /// the log file (durable up to the OS page cache).
    flushed_ticket: u64,
    /// Tickets below this bound have had their records synced.
    synced_ticket: u64,
    /// Durability requests enqueued since the writer's last claim; the
    /// batch syncs iff this is nonzero.
    pending_syncs: u64,
    /// The last failed write-out, if no flush has succeeded since. A
    /// later successful flush covers the same tickets (the buffer
    /// retains unflushed bodies across failures) and clears this.
    flush_failure: Option<FailedRange>,
    /// The last failed sync, if no sync has succeeded since. Write-out
    /// succeeded for these tickets, so only durable waiters fail.
    sync_failure: Option<FailedRange>,
    /// Set when the writer thread exits — orderly shutdown or panic —
    /// so waiters fail typed instead of parking forever.
    writer_down: Option<&'static str>,
    /// Tells the writer thread to drain its queue and exit.
    shutdown: bool,
}

/// What the log-writer found when it drained its queue.
enum Claim {
    /// Tickets below `end` need a force; `sync` iff any member asked.
    Batch {
        /// One past the last ticket covered by this batch.
        end: u64,
        /// Whether any member requested durability.
        sync: bool,
    },
    /// Idle past the configured window with appended-but-unflushed
    /// records: write them out in the background, best-effort.
    IdleFlush,
    /// Shut down (the queue is fully drained).
    Exit,
}

/// State shared between [`Wal`] handles and the log-writer thread.
struct WalShared {
    writer: Mutex<WalWriter>,
    queue: StdMutex<LogQueue>,
    /// Wakes the log-writer: new tickets, sync requests, or shutdown.
    work: Condvar,
    /// Wakes committers: a watermark advanced or a failure published.
    done: Condvar,
    stats: Arc<StorageStats>,
    /// Idle-flush delay: once the queue has been quiet this long,
    /// records appended without a commit (aborts, in-flight
    /// transactions) are written out in the background. `None` leaves
    /// them buffered until the next force.
    window: Option<Duration>,
    /// Bodies appended but not yet written out. Advisory — it only
    /// gates the idle-flush wakeup; the writer mutex owns the truth.
    buffered: AtomicU64,
    /// Test hook: make the writer thread panic at its next claim, to
    /// prove committers get a typed error instead of a hang.
    #[cfg(test)]
    panic_next_claim: std::sync::atomic::AtomicBool,
}

/// Armed by the log-writer for its whole life: on drop — orderly exit
/// or unwind — publishes `writer_down` and wakes every waiter, so a
/// dead writer surfaces as [`StorageError::WalWriterDown`], never a
/// hang.
struct WriterFailsafe<'a>(&'a WalShared);

impl Drop for WriterFailsafe<'_> {
    fn drop(&mut self) {
        let why = if std::thread::panicking() {
            "log-writer thread panicked"
        } else {
            "log shut down"
        };
        {
            let _rank = lock_order::acquire(lock_order::WAL_QUEUE);
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.writer_down = Some(why);
        }
        self.0.done.notify_all();
    }
}

impl WalShared {
    /// Lock the append buffer with rank tracking. Held across the
    /// write-out and sync of a force — the writer mutex is what
    /// serializes log forces — and never while acquiring any lock other
    /// than the simulated disk's.
    fn writer_lock(&self) -> Ranked<MutexGuard<'_, WalWriter>> {
        lock_order::ranked(lock_order::WAL_WRITER, || self.writer.lock())
    }

    /// The log-writer thread: claim a batch of tickets, force once for
    /// all of them, publish the outcome, repeat. Write-out and sync are
    /// published separately, so non-durable committers wake as soon as
    /// their records are in the file while the sync is still in flight
    /// — and the next batch accumulates behind the in-flight force
    /// instead of behind a sleeping leader.
    fn writer_loop(&self) {
        let failsafe = WriterFailsafe(self);
        loop {
            match self.claim() {
                Claim::Exit => break,
                Claim::IdleFlush => self.flush_idle(),
                Claim::Batch { end, sync } => {
                    let flushed = self.flush_batch();
                    let flush_ok = flushed.is_ok();
                    self.publish_flush(end, flushed);
                    if sync && flush_ok {
                        let synced = self.sync_batch();
                        self.publish_sync(end, synced);
                    }
                }
            }
        }
        drop(failsafe);
    }

    /// Wait for work and claim all of it. The rank token is explicit
    /// because the condvar wait consumes and re-produces the guard;
    /// both are released before any I/O.
    fn claim(&self) -> Claim {
        #[cfg(test)]
        if self.panic_next_claim.load(Ordering::Relaxed) {
            // analyzer: allow(panic, "test hook: simulated log-writer death")
            panic!("injected log-writer panic");
        }
        let _rank = lock_order::acquire(lock_order::WAL_QUEUE);
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if q.next_ticket > q.claimed_ticket || q.pending_syncs > 0 {
                let claim = Claim::Batch { end: q.next_ticket, sync: q.pending_syncs > 0 };
                q.claimed_ticket = q.next_ticket;
                q.pending_syncs = 0;
                return claim;
            }
            if q.shutdown {
                return Claim::Exit;
            }
            match self.window {
                Some(window) if !window.is_zero() && self.buffered.load(Ordering::Relaxed) > 0 => {
                    let (guard, timeout) =
                        self.work.wait_timeout(q, window).unwrap_or_else(|e| e.into_inner());
                    q = guard;
                    if timeout.timed_out()
                        && q.next_ticket == q.claimed_ticket
                        && q.pending_syncs == 0
                        && !q.shutdown
                    {
                        return Claim::IdleFlush;
                    }
                }
                _ => q = self.work.wait(q).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    /// Publish a write-out outcome and wake the covered waiters.
    fn publish_flush(&self, end: u64, result: Result<()>) {
        {
            let _rank = lock_order::acquire(lock_order::WAL_QUEUE);
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            match result {
                Ok(()) => {
                    q.flushed_ticket = q.flushed_ticket.max(end);
                    q.flush_failure = None;
                }
                Err(e) => {
                    q.flush_failure = Some(FailedRange { through: end, error: Arc::new(e) });
                }
            }
        }
        self.done.notify_all();
    }

    /// Publish a sync outcome and wake the covered durable waiters.
    fn publish_sync(&self, end: u64, result: Result<()>) {
        {
            let _rank = lock_order::acquire(lock_order::WAL_QUEUE);
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            match result {
                Ok(()) => {
                    q.synced_ticket = q.synced_ticket.max(end);
                    q.sync_failure = None;
                }
                Err(e) => {
                    q.sync_failure = Some(FailedRange { through: end, error: Arc::new(e) });
                }
            }
        }
        self.done.notify_all();
    }

    /// Enqueue a durability request and block until the log-writer has
    /// covered it (or failed trying). `durable` waits for a sync;
    /// otherwise write-out suffices — and a non-durable waiter whose
    /// batch flushed wakes while the sync is still in flight.
    fn wait_covered(&self, durable: bool) -> Result<()> {
        let _rank = lock_order::acquire(lock_order::WAL_QUEUE);
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = q.next_ticket;
        q.next_ticket += 1;
        if durable {
            q.pending_syncs += 1;
        }
        self.work.notify_one();
        loop {
            let covered = if durable { q.synced_ticket } else { q.flushed_ticket };
            if covered > ticket {
                return Ok(());
            }
            // Success is checked first: a batch that failed but whose
            // bytes a later force carried out (the buffer keeps
            // unflushed bodies across failures) counts as covered.
            if let Some(f) = &q.flush_failure {
                if ticket < f.through {
                    return Err(StorageError::ForceFailed(f.error.clone()));
                }
            }
            if durable {
                if let Some(f) = &q.sync_failure {
                    if ticket < f.through {
                        return Err(StorageError::ForceFailed(f.error.clone()));
                    }
                }
            }
            if let Some(why) = q.writer_down {
                return Err(StorageError::WalWriterDown(why));
            }
            q = self.done.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Write the buffered bodies out to the file (one batch), charging
    /// the time to the force profile rather than any committer's wait.
    fn flush_batch(&self) -> Result<()> {
        let started = Instant::now();
        let result = {
            let mut w = self.writer_lock();
            w.flush().map(|()| self.buffered.store(0, Ordering::Relaxed))
        };
        self.note_force(started);
        if result.is_ok() {
            StorageStats::bump(&self.stats.wal_syncs, 1);
        }
        result
    }

    /// Sync the file. Runs after (and apart from) the batch's
    /// write-out; everything flushed so far becomes durable.
    fn sync_batch(&self) -> Result<()> {
        let started = Instant::now();
        let result = {
            let mut w = self.writer_lock();
            let stats = self.stats.clone();
            with_retries(|| w.file.sync(), || StorageStats::bump(&stats.io_retries, 1))
        };
        self.note_force(started);
        result
    }

    /// Attribute time spent inside a physical force: to the calling
    /// thread's profile (meaningful for steal-guard forces on client
    /// threads) and to the store-wide counter (the log-writer's work).
    fn note_force(&self, started: Instant) {
        let nanos = started.elapsed().as_nanos() as u64;
        waits::add_commit_force(nanos);
        StorageStats::bump(&self.stats.wal_force_nanos, nanos);
    }

    /// Synchronous force on the calling thread (steal guard, tests):
    /// write out, and sync when `durable`. Queue watermarks are not
    /// advanced — committers wait for the writer's own batches.
    fn force(&self, durable: bool) -> Result<()> {
        self.flush_batch()?;
        if durable {
            self.sync_batch()?;
        }
        Ok(())
    }

    /// Best-effort background write-out of appended records once the
    /// queue has idled past the window. Not a force: no batch counted,
    /// and an error stays in the writer — it resurfaces, with retries,
    /// at the next real force.
    fn flush_idle(&self) {
        let mut w = self.writer_lock();
        if w.flush().is_ok() {
            self.buffered.store(0, Ordering::Relaxed);
        }
    }
}

/// The write-ahead log file: append-only and write-buffered, forced by
/// a dedicated log-writer thread. Records accumulate in an in-memory
/// buffer; committing transactions call [`Wal::group_commit`], which
/// enqueues a durability request and parks until the writer covers it.
/// The writer coalesces every request that arrives while a force is in
/// flight into the next batch — so one physical write-out (plus one
/// sync, when any member wants durability) serves many commits, and no
/// committer ever burns its own thread on the window or the fsync.
pub struct Wal {
    shared: Arc<WalShared>,
    written: AtomicU64,
    /// The dedicated log-writer thread; joined on drop.
    writer_thread: Option<JoinHandle<()>>,
}

impl Wal {
    fn writer_lock(&self) -> Ranked<MutexGuard<'_, WalWriter>> {
        self.shared.writer_lock()
    }

    /// Create a fresh (empty) log at `path`.
    pub fn create(
        vfs: &Arc<dyn Vfs>,
        path: &Path,
        stats: Arc<StorageStats>,
        window: Option<Duration>,
    ) -> Result<Self> {
        let file = vfs.open(path, OpenMode::Create)?;
        Self::start(file, 0, stats, window)
    }

    /// Open an existing log for appending (after replay). Creates an
    /// empty log if none exists, matching the pre-VFS behavior.
    pub fn open(
        vfs: &Arc<dyn Vfs>,
        path: &Path,
        stats: Arc<StorageStats>,
        window: Option<Duration>,
    ) -> Result<Self> {
        let mode = if vfs.exists(path) { OpenMode::Open } else { OpenMode::Create };
        let mut file = vfs.open(path, mode)?;
        let len = file.len()?;
        Self::start(file, len, stats, window)
    }

    /// Wrap an opened log file and spawn its log-writer thread.
    fn start(
        file: Box<dyn VfsFile>,
        flushed: u64,
        stats: Arc<StorageStats>,
        window: Option<Duration>,
    ) -> Result<Self> {
        let shared = Arc::new(WalShared {
            writer: Mutex::new(WalWriter {
                file,
                flushed,
                buf: Vec::new(),
                stats: stats.clone(),
                pending_reset: None,
            }),
            queue: StdMutex::new(LogQueue::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            stats,
            window,
            buffered: AtomicU64::new(0),
            #[cfg(test)]
            panic_next_claim: std::sync::atomic::AtomicBool::new(false),
        });
        let writer_shared = shared.clone();
        let writer_thread = std::thread::Builder::new()
            .name("labflow-wal".into())
            .spawn(move || writer_shared.writer_loop())
            .map_err(StorageError::Io)?;
        Ok(Wal { shared, written: AtomicU64::new(flushed), writer_thread: Some(writer_thread) })
    }

    /// Append a record to the log (buffered).
    pub fn append(&self, rec: &WalRecord) -> Result<()> {
        let body = encode_body(rec);
        let frame_len = (body.len() + 8) as u64;
        self.writer_lock().buf.push(body);
        self.shared.buffered.fetch_add(1, Ordering::Relaxed);
        self.written.fetch_add(frame_len, Ordering::Relaxed);
        StorageStats::bump(&self.shared.stats.wal_bytes, frame_len);
        if self.shared.window.is_some() {
            // Arm the idle flush: the writer wakes, finds no tickets,
            // and writes the record out once the window passes quiet.
            self.shared.work.notify_one();
        }
        Ok(())
    }

    /// Group commit: ensure every record appended by the caller (up to
    /// and including its commit record) has been forced to the log.
    ///
    /// The caller must have finished appending before calling. The call
    /// enqueues a durability request for the dedicated log-writer and
    /// parks; the writer coalesces every request that arrived since its
    /// last claim into one physical force. `durable` requires a sync —
    /// and the batch syncs if *any* member requires it, so a durable
    /// commit is never downgraded by its batch-mates. Without `durable`
    /// the caller wakes as soon as its records are written out to the
    /// OS page cache (the benchmark's default, matching
    /// checkpoint-based durability) — possibly while the same batch's
    /// sync is still in flight.
    ///
    /// Time spent parked here is charged to the calling thread's
    /// commit-wait counter; the physical force is charged to whichever
    /// thread performs it (see [`crate::WaitSnapshot`]).
    pub fn group_commit(&self, durable: bool) -> Result<()> {
        let started = Instant::now();
        let result = self.shared.wait_covered(durable);
        waits::add_commit_wait(started.elapsed().as_nanos() as u64);
        result
    }

    /// Write out and sync the log unconditionally when `durable`, on
    /// the calling thread. Crate visibility: the buffer pool's steal
    /// guard forces the log before a dirty page may be written to the
    /// data file (the write-ahead rule — without it a stolen page could
    /// carry effects whose undo images are not yet durable).
    pub(crate) fn force(&self, durable: bool) -> Result<()> {
        self.shared.force(durable)
    }

    /// Read every intact record from the start of the log.
    ///
    /// A torn frame at end-of-log (incomplete header or body) is the
    /// crash-tail case: replay stops there and reports the discarded
    /// bytes. A *complete* frame that fails its checksum or does not
    /// decode means the durable interior of the log is damaged, which
    /// recovery must not paper over: [`StorageError::Recovery`].
    pub fn replay(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<WalReplay> {
        let Some(data) = vfs.read_all(path)? else {
            return Ok(WalReplay::default());
        };
        let le_u32 = |at: usize| -> Option<u32> {
            data.get(at..at + 4).and_then(|s| s.try_into().ok()).map(u32::from_le_bytes)
        };
        let mut out = WalReplay::default();
        let mut at = 0usize;
        // A frame that does not fit in the remaining bytes is only
        // trustworthy as a crash tear if nothing intact follows it; a
        // verified frame behind the cut means the interior is damaged
        // (a rotted length field can disguise mid-log rot as a tail).
        let tear = |at: usize, frames: u64| -> Result<u64> {
            if let Some(next) = intact_frame_after(&data, at) {
                return Err(StorageError::Recovery(RecoveryError {
                    offset: at as u64,
                    frame: frames,
                    detail: format!(
                        "frame runs past end-of-log but an intact frame follows at byte \
                         {next} (interior damage, not a crash tail)"
                    ),
                }));
            }
            Ok((data.len() - at) as u64)
        };
        while at < data.len() {
            let (Some(len), Some(crc)) = (le_u32(at), le_u32(at + 4)) else {
                out.bytes_truncated = tear(at, out.frames)?;
                break; // torn header at EOF
            };
            let len = len as usize;
            let Some(body) = data.get(at + 8..at + 8 + len) else {
                out.bytes_truncated = tear(at, out.frames)?;
                break; // torn body at EOF
            };
            if frame_crc(at as u64, body) != crc {
                return Err(StorageError::Recovery(RecoveryError {
                    offset: at as u64,
                    frame: out.frames,
                    detail: "checksum mismatch on a complete frame (damaged or misdirected)"
                        .into(),
                }));
            }
            match WalRecord::decode(body) {
                Ok(rec) => out.records.push(rec),
                Err(e) => {
                    return Err(StorageError::Recovery(RecoveryError {
                        offset: at as u64,
                        frame: out.frames,
                        detail: format!("undecodable record: {e}"),
                    }));
                }
            }
            out.frames += 1;
            at += 8 + len;
        }
        Ok(out)
    }

    /// Discard the log contents (after a checkpoint made them redundant)
    /// and restart it with a durable [`WalRecord::Reset`] frame carrying
    /// the checkpoint `epoch`. Any buffered-but-unflushed frames are
    /// dropped: the checkpoint that triggered this truncation has already
    /// persisted their effects.
    pub fn truncate(&self, epoch: u64) -> Result<()> {
        let mut w = self.writer_lock();
        w.buf.clear();
        self.shared.buffered.store(0, Ordering::Relaxed);
        // Mark the truncation before attempting it: if any step fails,
        // the next flush retries the whole head rewrite before it may
        // append a frame (see [`WalWriter::pending_reset`]).
        w.pending_reset = Some(epoch);
        w.repair_head()?;
        let stats = self.shared.stats.clone();
        with_retries(|| w.file.sync(), || StorageStats::bump(&stats.io_retries, 1))?;
        self.written.store(w.flushed, Ordering::Relaxed);
        Ok(())
    }

    /// Bytes appended so far (including any still buffered).
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(self.written.load(Ordering::Relaxed))
    }

    /// The flushed tail of the log: every byte below this offset is a
    /// whole frame in the file, servable by [`Wal::stream_from`].
    /// (Buffered-but-unflushed records belong to commits not yet
    /// forced; they are not yet history and are never shipped.)
    pub fn flushed_lsn(&self) -> u64 {
        self.writer_lock().flushed
    }

    /// Read a chunk of whole frames starting at byte `from`, for
    /// shipping to a replication follower.
    ///
    /// Runs under the writer lock, after re-establishing the log head
    /// if a truncation is pending — a stream reader therefore sees
    /// either the pre-truncation tail or the fully repaired head,
    /// never the limbo between them. Frames are returned exactly as
    /// they sit on disk; the chunk ends at the last whole frame within
    /// `max_bytes` (always at least one frame when any is available).
    ///
    /// Typed failures: [`StorageError::WalRewound`] when `from` is past
    /// the flushed tail (the log restarted at a checkpoint — the
    /// follower must re-seed), and [`StorageError::Recovery`] when the
    /// durable bytes at `from` do not verify as frames (interior
    /// damage, or a resume offset that is not a frame boundary).
    pub fn stream_from(&self, from: u64, max_bytes: usize) -> Result<WalChunk> {
        let mut w = self.writer_lock();
        w.repair_head()?;
        let flushed = w.flushed;
        if from > flushed {
            return Err(StorageError::WalRewound { requested: from, tail: flushed });
        }
        if from == flushed {
            return Ok(WalChunk { start: from, end: from, bytes: Vec::new() });
        }
        let avail = flushed - from;
        let mut window = avail.min(max_bytes.max(16) as u64) as usize;
        let stats = self.shared.stats.clone();
        loop {
            let mut buf = vec![0u8; window];
            with_retries(
                || w.file.read_at(from, &mut buf),
                || StorageStats::bump(&stats.io_retries, 1),
            )?;
            // Trim to whole frames, verifying each checksum against its
            // absolute offset as we go.
            let mut at = 0usize;
            let mut frames = 0u64;
            while at < buf.len() {
                let header = buf.get(at..).and_then(|r| r.split_first_chunk::<4>()).and_then(
                    |(len, r)| r.split_first_chunk::<4>().map(|(crc, rest)| (len, crc, rest)),
                );
                let Some((len_bytes, crc_bytes, rest)) = header else { break };
                let len = u32::from_le_bytes(*len_bytes) as usize;
                let frame_end = at.saturating_add(8).saturating_add(len);
                if frame_end as u64 > avail {
                    // The frame claims to run past the flushed tail;
                    // the writer only flushes whole frames, so this is
                    // durable damage, not an artifact of the window.
                    return Err(StorageError::Recovery(RecoveryError {
                        offset: from + at as u64,
                        frame: frames,
                        detail: "streamed frame runs past the flushed tail".into(),
                    }));
                }
                let Some(body) = rest.get(..len) else {
                    // Whole frame exists but the window cut it; widen to
                    // cover at least this frame and re-read. Only the
                    // first frame can force this (later cuts just end
                    // the chunk early).
                    if at == 0 {
                        window = frame_end;
                        break;
                    }
                    break;
                };
                if frame_crc(from + at as u64, body) != u32::from_le_bytes(*crc_bytes) {
                    return Err(StorageError::Recovery(RecoveryError {
                        offset: from + at as u64,
                        frame: frames,
                        detail: "streamed frame failed its position-bound checksum".into(),
                    }));
                }
                frames += 1;
                at = frame_end;
            }
            if at == 0 {
                // First frame did not fit the window: go around with the
                // widened window. A window that failed to grow means the
                // durable tail holds less than one whole frame, which
                // the writer's whole-frame flushes make impossible —
                // report it rather than spin.
                if window <= buf.len() {
                    return Err(StorageError::Recovery(RecoveryError {
                        offset: from,
                        frame: 0,
                        detail: "flushed tail holds no whole frame".into(),
                    }));
                }
                continue;
            }
            buf.truncate(at);
            return Ok(WalChunk { start: from, end: from + at as u64, bytes: buf });
        }
    }
}

impl Drop for Wal {
    /// Orderly shutdown: tell the log-writer to drain and exit, then
    /// join it. Any committer still parked when the writer goes down is
    /// woken with [`StorageError::WalWriterDown`] by the failsafe.
    fn drop(&mut self) {
        {
            let _rank = lock_order::acquire(lock_order::WAL_QUEUE);
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.writer_thread.take() {
            // A panicked writer already published its death via the
            // failsafe; nothing further to surface here.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lfs-wal-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin(1),
            WalRecord::Alloc {
                txn: 1,
                oid: Oid::from_raw(10),
                seg: SegmentId(2),
                hint: ClusterHint(99),
                data: b"payload".to_vec(),
            },
            WalRecord::Update {
                txn: 1,
                oid: Oid::from_raw(10),
                data: b"updated".to_vec(),
                old: b"payload".to_vec(),
            },
            WalRecord::Free { txn: 1, oid: Oid::from_raw(4), old: b"gone".to_vec() },
            WalRecord::Commit(1),
            WalRecord::Begin(2),
            WalRecord::Abort(2),
        ]
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("rt");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats.clone(), None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.group_commit(true).unwrap();
        let replayed = Wal::replay(&vfs, &path).unwrap();
        assert_eq!(replayed.records, sample_records());
        assert_eq!(replayed.frames, sample_records().len() as u64);
        assert_eq!(replayed.bytes_truncated, 0);
        assert!(stats.snapshot().wal_bytes > 0);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = tmp("missing").join("never-created.log");
        let vfs = RealVfs::arc();
        let replayed = Wal::replay(&vfs, &path).unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.bytes_truncated, 0);
    }

    #[test]
    fn torn_tail_is_dropped_and_counted() {
        let path = tmp("torn");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.group_commit(true).unwrap();
        drop(wal);
        // Chop a few bytes off the end: last frame is torn.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        let replayed = Wal::replay(&vfs, &path).unwrap();
        assert_eq!(replayed.records.len(), sample_records().len() - 1);
        assert!(replayed.bytes_truncated > 0, "the torn frame's bytes are accounted");
    }

    #[test]
    fn interior_corruption_is_a_typed_error() {
        let path = tmp("corrupt");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.group_commit(true).unwrap();
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the second frame's body.
        let first_len = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        let second_body_start = 8 + first_len + 8;
        data[second_body_start + 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        match Wal::replay(&vfs, &path) {
            Err(StorageError::Recovery(e)) => {
                assert_eq!(e.frame, 1, "the second frame is the damaged one");
                assert_eq!(e.offset, (8 + first_len) as u64);
            }
            other => panic!("expected a Recovery error, got {other:?}"),
        }
    }

    #[test]
    fn misdirected_frame_fails_its_position_bound_checksum() {
        // Two frames of identical length, swapped on disk: every byte is
        // a valid frame image, but each now sits at the wrong offset. A
        // position-blind crc would replay them happily (silently
        // reordering history); the offset-bound crc must reject the log.
        let path = tmp("swap");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        wal.append(&WalRecord::Begin(1)).unwrap();
        wal.append(&WalRecord::Commit(1)).unwrap();
        wal.group_commit(true).unwrap();
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        let flen = 8 + 9; // header + (tag byte ‖ txn u64): same for both
        assert_eq!(data.len(), 2 * flen);
        let (a, b) = data.split_at_mut(flen);
        a.swap_with_slice(b);
        std::fs::write(&path, &data).unwrap();
        match Wal::replay(&vfs, &path) {
            Err(StorageError::Recovery(e)) => assert_eq!(e.frame, 0),
            other => panic!("expected a Recovery error, got {other:?}"),
        }
    }

    #[test]
    fn rotted_length_field_is_not_mistaken_for_a_crash_tail() {
        // Blow up an interior frame's length field so the frame claims
        // to run past EOF. Naive replay would treat everything from that
        // frame on as a torn tail and silently drop the committed frames
        // behind it; the tear-rescue scan finds those intact frames and
        // turns the "tail" into a typed recovery error.
        let path = tmp("rotlen");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.group_commit(true).unwrap();
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        data[0] = 0xFF; // first frame's len: 17 -> huge
        data[1] = 0xFF;
        std::fs::write(&path, &data).unwrap();
        match Wal::replay(&vfs, &path) {
            Err(StorageError::Recovery(e)) => {
                assert_eq!(e.offset, 0);
                assert!(e.detail.contains("intact frame follows"), "got detail {:?}", e.detail);
            }
            other => panic!("expected a Recovery error, got {other:?}"),
        }
    }

    #[test]
    fn truncate_restarts_log_with_reset_epoch() {
        let path = tmp("trunc");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        wal.append(&WalRecord::Begin(5)).unwrap();
        assert!(wal.len_bytes().unwrap() > 0);
        wal.truncate(3).unwrap();
        let replayed = Wal::replay(&vfs, &path).unwrap();
        assert_eq!(replayed.records, vec![WalRecord::Reset(3)]);
        // Appends after a truncation land after the reset frame.
        wal.append(&WalRecord::Begin(6)).unwrap();
        wal.group_commit(true).unwrap();
        let replayed = Wal::replay(&vfs, &path).unwrap();
        assert_eq!(replayed.records, vec![WalRecord::Reset(3), WalRecord::Begin(6)]);
    }

    #[test]
    fn failed_truncation_is_repaired_before_the_next_flush() {
        // A transient I/O error mid-truncate must not let later flushes
        // append to the stale pre-checkpoint log (recovery would skip
        // those frames as stale) or write frames with no leading reset
        // frame (recovery would reject the log). The writer repairs the
        // log head before the next flush instead.
        use crate::vfs::{FaultPlan, SimVfs};
        let sim = SimVfs::new(1);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let path = PathBuf::from("/sim/wal.log");
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        wal.append(&WalRecord::Begin(5)).unwrap();
        wal.group_commit(true).unwrap();

        // Fail every file operation a truncation performs, one run per
        // op (set_len, frame write, sync), and check the repair each way.
        // Each step is retried up to `retry::ATTEMPTS` times, so the
        // fault must persist across all of them to make the step fail.
        for failing_op in 0..3 {
            let base = sim.op_count() + failing_op;
            let fail_ops: Vec<u64> = (0..crate::retry::ATTEMPTS as u64).map(|i| base + i).collect();
            sim.set_plan(FaultPlan { fail_ops, ..FaultPlan::default() });
            let result = wal.truncate(9);
            sim.set_plan(FaultPlan::default());
            if result.is_ok() {
                // The fault landed after the last fallible step; the
                // truncation stands. (Does not happen with the current
                // three-op truncate, but keep the loop robust.)
                continue;
            }
            wal.append(&WalRecord::Begin(6)).unwrap();
            wal.group_commit(true).unwrap();
            let replayed = Wal::replay(&vfs, &path).unwrap();
            assert_eq!(
                replayed.records,
                vec![WalRecord::Reset(9), WalRecord::Begin(6)],
                "after a truncate failure at relative op {failing_op}, the next flush \
                 must re-establish the reset head before appending"
            );
        }
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        // With a batching window, many concurrent committers should share
        // far fewer physical forces than there are commits.
        let path = tmp("group");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Arc::new(
            Wal::create(&vfs, &path, stats.clone(), Some(Duration::from_millis(2))).unwrap(),
        );
        const THREADS: u64 = 8;
        const COMMITS_PER_THREAD: u64 = 10;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..COMMITS_PER_THREAD {
                    let txn = t * 1000 + i;
                    wal.append(&WalRecord::Begin(txn)).unwrap();
                    wal.append(&WalRecord::Commit(txn)).unwrap();
                    wal.group_commit(false).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let syncs = stats.snapshot().wal_syncs;
        assert!(syncs >= 1, "at least one force must happen");
        assert!(
            syncs < THREADS * COMMITS_PER_THREAD,
            "group commit should batch: {syncs} forces for {} commits",
            THREADS * COMMITS_PER_THREAD
        );
        // Every commit record must be on disk after group_commit returned.
        let committed = Wal::replay(&vfs, &path)
            .unwrap()
            .records
            .iter()
            .filter(|r| matches!(r, WalRecord::Commit(_)))
            .count();
        assert_eq!(committed as u64, THREADS * COMMITS_PER_THREAD);
    }

    #[test]
    fn group_commit_charges_commit_wait() {
        let path = tmp("waits");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        let before = crate::waits::snapshot();
        wal.append(&WalRecord::Begin(1)).unwrap();
        wal.group_commit(true).unwrap();
        let d = crate::waits::snapshot().delta(&before);
        assert!(d.commit_wait_nanos > 0, "a durable force takes measurable time");
        // The physical force ran on the log-writer thread, not here:
        // this thread only queued.
        assert_eq!(d.commit_force_nanos, 0, "committers no longer force on their own thread");
    }

    #[test]
    fn steal_guard_force_charges_the_forcing_thread() {
        let path = tmp("force-attr");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        wal.append(&WalRecord::Begin(1)).unwrap();
        let before = crate::waits::snapshot();
        wal.force(true).unwrap();
        let d = crate::waits::snapshot().delta(&before);
        assert!(d.commit_force_nanos > 0, "a synchronous force is charged to its caller");
    }

    #[test]
    fn mixed_durability_batch_syncs_before_durable_caller_returns() {
        // Regression: a durable=true committer whose batch also holds
        // durable=false members must not be downgraded — its commit
        // record must be in the *durable* image (not just the OS cache)
        // by the time its group_commit returns. Non-durable committers
        // hammer the queue so the durable caller's ticket lands in a
        // shared batch with high probability.
        use crate::vfs::SimVfs;
        let sim = SimVfs::new(7);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let path = PathBuf::from("/sim/wal.log");
        let stats = Arc::new(StorageStats::default());
        let wal = Arc::new(Wal::create(&vfs, &path, stats, None).unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut noisy = Vec::new();
        for t in 0..3u64 {
            let wal = wal.clone();
            let stop = stop.clone();
            noisy.push(std::thread::spawn(move || {
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    let txn = 1_000 * (t + 1) + i;
                    wal.append(&WalRecord::Begin(txn)).unwrap();
                    wal.append(&WalRecord::Commit(txn)).unwrap();
                    wal.group_commit(false).unwrap();
                    i += 1;
                }
            }));
        }
        for round in 0..20u64 {
            wal.append(&WalRecord::Begin(round)).unwrap();
            wal.append(&WalRecord::Commit(round)).unwrap();
            wal.group_commit(true).unwrap();
            // Only synced bytes survive in the durable image; the
            // durable caller's commit must already be there.
            let durable: Arc<dyn Vfs> = Arc::new(sim.clone_durable());
            let replayed = Wal::replay(&durable, &path).unwrap();
            assert!(
                replayed.records.contains(&WalRecord::Commit(round)),
                "durable group_commit returned before its batch was synced (round {round})"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for h in noisy {
            h.join().unwrap();
        }
    }

    #[test]
    fn failed_force_propagates_one_typed_error_to_the_whole_batch() {
        // Regression: when the force for a batch fails, every covered
        // committer must get the same typed error instead of each
        // self-promoting and re-forcing a dead disk in turn.
        use crate::vfs::{FaultPlan, SimVfs};
        let sim = SimVfs::new(3);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let path = PathBuf::from("/sim/wal.log");
        let stats = Arc::new(StorageStats::default());
        let wal = Arc::new(Wal::create(&vfs, &path, stats.clone(), None).unwrap());
        // Kill the disk: every operation from here on fails, well past
        // any retry budget.
        let base = sim.op_count();
        sim.set_plan(FaultPlan { fail_ops: (base..base + 100_000).collect(), ..Default::default() });
        let mut committers = Vec::new();
        for t in 0..4u64 {
            let wal = wal.clone();
            committers.push(std::thread::spawn(move || {
                wal.append(&WalRecord::Begin(t)).unwrap();
                wal.append(&WalRecord::Commit(t)).unwrap();
                wal.group_commit(true)
            }));
        }
        for h in committers {
            match h.join().unwrap() {
                Err(StorageError::ForceFailed(inner)) => {
                    assert!(matches!(*inner, StorageError::Io(_)), "cause is the disk error");
                }
                other => panic!("expected ForceFailed for every covered committer, got {other:?}"),
            }
        }
        sim.set_plan(FaultPlan::default());
    }

    #[test]
    fn crash_mid_async_force_recovers_committed_exactly() {
        // Plug-pull while the log-writer holds an in-flight batch:
        // every commit whose group_commit(true) returned Ok before the
        // crash must replay from the durable image; torn in-flight
        // writes may lose commits that never acknowledged, never ones
        // that did.
        use crate::vfs::{FaultPlan, SimVfs};
        for seed in 0..8u64 {
            let sim = SimVfs::new(seed);
            let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
            let path = PathBuf::from("/sim/wal.log");
            let stats = Arc::new(StorageStats::default());
            let wal = Arc::new(Wal::create(&vfs, &path, stats, None).unwrap());
            // Let a little clean history build, then pull the plug a
            // few operations into the concurrent run.
            sim.set_plan(FaultPlan {
                crash_at_op: Some(sim.op_count() + 4 + seed),
                ..Default::default()
            });
            let acked = Arc::new(StdMutex::new(Vec::new()));
            let mut committers = Vec::new();
            for t in 0..4u64 {
                let wal = wal.clone();
                let acked = acked.clone();
                committers.push(std::thread::spawn(move || {
                    for i in 0..5u64 {
                        let txn = 100 * (t + 1) + i;
                        if wal.append(&WalRecord::Begin(txn)).is_err() {
                            return;
                        }
                        if wal.append(&WalRecord::Commit(txn)).is_err() {
                            return;
                        }
                        if wal.group_commit(true).is_ok() {
                            acked.lock().unwrap().push(txn);
                        }
                    }
                }));
            }
            for h in committers {
                h.join().unwrap();
            }
            sim.power_loss();
            let durable: Arc<dyn Vfs> = Arc::new(sim.clone_durable());
            let replayed = Wal::replay(&durable, &path).unwrap();
            let on_disk: Vec<u64> = replayed
                .records
                .iter()
                .filter_map(|r| match r {
                    WalRecord::Commit(t) => Some(*t),
                    _ => None,
                })
                .collect();
            for txn in acked.lock().unwrap().iter() {
                assert!(
                    on_disk.contains(txn),
                    "seed {seed}: commit {txn} acknowledged durable before the crash \
                     but missing after recovery"
                );
            }
        }
    }

    #[test]
    fn writer_thread_death_is_a_typed_error_not_a_hang() {
        let path = tmp("writer-panic");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        wal.shared.panic_next_claim.store(true, Ordering::Relaxed);
        // The writer dies at its next claim. Depending on where it was
        // parked when the flag landed, the first commit may still be
        // served by an already-started claim; the one after it must
        // observe the death. Neither may hang.
        wal.append(&WalRecord::Begin(1)).unwrap();
        let first = wal.group_commit(true);
        wal.append(&WalRecord::Begin(2)).unwrap();
        let second = wal.group_commit(true);
        let died = [&first, &second]
            .iter()
            .any(|r| matches!(r, Err(StorageError::WalWriterDown(_))));
        assert!(died, "a dead log-writer must surface as WalWriterDown: {first:?} / {second:?}");
        // Dropping the Wal joins the panicked thread without hanging.
        drop(wal);
    }

    #[test]
    fn txn_accessor() {
        for rec in sample_records() {
            assert!(rec.txn() == 1 || rec.txn() == 2);
        }
        assert_eq!(WalRecord::Reset(9).txn(), 0);
    }

    #[test]
    fn stream_round_trips_through_decode_shipped() {
        let path = tmp("stream-rt");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.group_commit(true).unwrap();
        let chunk = wal.stream_from(0, 1 << 20).unwrap();
        assert_eq!(chunk.start, 0);
        assert_eq!(chunk.end, wal.flushed_lsn());
        let recs: Vec<WalRecord> =
            decode_shipped(0, &chunk.bytes).unwrap().into_iter().map(|(_, r)| r).collect();
        assert_eq!(recs, sample_records());
        // Resuming at the end yields an empty chunk, not an error.
        let tail = wal.stream_from(chunk.end, 1 << 20).unwrap();
        assert!(tail.is_empty());
        assert_eq!(tail.end, chunk.end);
    }

    #[test]
    fn stream_respects_max_bytes_but_always_ships_a_whole_frame() {
        let path = tmp("stream-max");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        let big = WalRecord::Update {
            txn: 1,
            oid: Oid::from_raw(7),
            data: vec![0xAB; 4096],
            old: vec![0xCD; 4096],
        };
        wal.append(&WalRecord::Begin(1)).unwrap();
        wal.append(&big).unwrap();
        wal.append(&WalRecord::Commit(1)).unwrap();
        wal.group_commit(true).unwrap();
        // A tiny budget still ships the first frame whole.
        let first = wal.stream_from(0, 4).unwrap();
        let recs = decode_shipped(first.start, &first.bytes).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs.first(), Some((0, WalRecord::Begin(1)))));
        // The big frame ships whole even though it alone exceeds the cap.
        let second = wal.stream_from(first.end, 64).unwrap();
        let recs = decode_shipped(second.start, &second.bytes).unwrap();
        assert_eq!(recs.len(), 1, "one whole frame, not a torn prefix");
        assert!(matches!(recs.first(), Some((_, WalRecord::Update { .. }))));
        // A roomy budget drains the rest.
        let third = wal.stream_from(second.end, 1 << 20).unwrap();
        assert_eq!(third.end, wal.flushed_lsn());
        let recs = decode_shipped(third.start, &third.bytes).unwrap();
        assert!(matches!(recs.first(), Some((_, WalRecord::Commit(1)))));
    }

    #[test]
    fn stream_past_truncated_tail_is_a_typed_rewind() {
        let path = tmp("stream-rewind");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.group_commit(true).unwrap();
        let tail = wal.flushed_lsn();
        wal.truncate(2).unwrap();
        match wal.stream_from(tail, 1 << 20) {
            Err(StorageError::WalRewound { requested, tail: now }) => {
                assert_eq!(requested, tail);
                assert!(now < tail, "the restarted log is shorter than the old tail");
            }
            other => panic!("expected WalRewound, got {other:?}"),
        }
    }

    #[test]
    fn stream_off_frame_boundary_is_typed_corruption() {
        let path = tmp("stream-offset");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.group_commit(true).unwrap();
        // One byte into the log: the "frame" there fails its
        // position-bound checksum (or claims to overrun the tail).
        match wal.stream_from(1, 1 << 20) {
            Err(StorageError::Recovery(_)) => {}
            other => panic!("expected a Recovery error, got {other:?}"),
        }
    }

    #[test]
    fn shipped_chunk_damage_is_detected() {
        let path = tmp("shipped-damage");
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let wal = Wal::create(&vfs, &path, stats, None).unwrap();
        wal.append(&WalRecord::Begin(1)).unwrap();
        wal.append(&WalRecord::Commit(1)).unwrap();
        wal.group_commit(true).unwrap();
        let chunk = wal.stream_from(0, 1 << 20).unwrap();

        // Bit rot inside a frame body.
        let mut rotted = chunk.bytes.clone();
        if let Some(b) = rotted.get_mut(10) {
            *b ^= 0x40;
        }
        assert!(matches!(decode_shipped(0, &rotted), Err(StorageError::Recovery(_))));

        // A torn (truncated) chunk: the network tore the last frame.
        let torn = chunk.bytes.get(..chunk.bytes.len() - 3).unwrap().to_vec();
        assert!(matches!(decode_shipped(0, &torn), Err(StorageError::Recovery(_))));

        // Reordered delivery: the right bytes applied at the wrong base
        // offset fail every position-bound checksum.
        assert!(matches!(decode_shipped(64, &chunk.bytes), Err(StorageError::Recovery(_))));

        // And the untouched chunk still verifies.
        assert_eq!(decode_shipped(0, &chunk.bytes).unwrap().len(), 2);
    }
}
